"""Tests for the approximate randomization test."""

import random

import pytest

from repro.evaluation.significance import approximate_randomization_test


class TestApproximateRandomization:
    def test_clearly_different_systems_significant(self):
        rng = random.Random(1)
        a = [0.8 + rng.uniform(-0.02, 0.02) for _ in range(20)]
        b = [0.2 + rng.uniform(-0.02, 0.02) for _ in range(20)]
        result = approximate_randomization_test(a, b, num_shuffles=2000)
        assert result.significant(0.05)
        assert result.p_value < 0.01

    def test_identical_systems_not_significant(self):
        scores = [0.5, 0.6, 0.4, 0.55]
        result = approximate_randomization_test(
            scores, list(scores), num_shuffles=2000
        )
        assert not result.significant(0.05)
        assert result.p_value > 0.5

    def test_noise_level_difference_not_significant(self):
        rng = random.Random(2)
        a = [0.5 + rng.uniform(-0.1, 0.1) for _ in range(10)]
        b = [0.5 + rng.uniform(-0.1, 0.1) for _ in range(10)]
        result = approximate_randomization_test(a, b, num_shuffles=2000)
        assert not result.significant(0.01)

    def test_deterministic_for_seed(self):
        a = [0.6, 0.7, 0.5]
        b = [0.4, 0.5, 0.6]
        r1 = approximate_randomization_test(a, b, num_shuffles=500, seed=7)
        r2 = approximate_randomization_test(a, b, num_shuffles=500, seed=7)
        assert r1.p_value == r2.p_value

    def test_p_value_in_unit_interval(self):
        result = approximate_randomization_test(
            [0.1, 0.9], [0.3, 0.5], num_shuffles=100
        )
        assert 0.0 < result.p_value <= 1.0

    def test_observed_difference_recorded(self):
        result = approximate_randomization_test(
            [1.0, 1.0], [0.0, 0.0], num_shuffles=100
        )
        assert result.observed_difference == pytest.approx(1.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            approximate_randomization_test([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            approximate_randomization_test([], [])

    def test_bad_shuffles_rejected(self):
        with pytest.raises(ValueError):
            approximate_randomization_test([1.0], [0.5], num_shuffles=0)
