"""Tests for explicit date selection (Section 2.2)."""

import datetime

import pytest

from repro.core.date_selection import (
    DateReferenceGraph,
    DateSelector,
    EdgeWeight,
    uniformity,
)
from repro.tlsdata.types import DatedSentence
from tests.conftest import d


class TestEdgeWeightEnum:
    def test_parse_string(self):
        assert EdgeWeight.parse("w3") is EdgeWeight.W3
        assert EdgeWeight.parse("W1") is EdgeWeight.W1

    def test_parse_enum_passthrough(self):
        assert EdgeWeight.parse(EdgeWeight.W2) is EdgeWeight.W2

    def test_parse_invalid(self):
        with pytest.raises(ValueError):
            EdgeWeight.parse("W9")


class TestUniformity:
    def test_fewer_than_two_dates(self):
        assert uniformity([]) == 0.0
        assert uniformity([d("2020-01-01")]) == 0.0

    def test_evenly_spaced_is_zero(self):
        dates = [d("2020-01-01"), d("2020-01-08"), d("2020-01-15")]
        assert uniformity(dates) == 0.0

    def test_unevenly_spaced_positive(self):
        dates = [d("2020-01-01"), d("2020-01-02"), d("2020-02-01")]
        assert uniformity(dates) > 0.0

    def test_order_invariant(self):
        dates = [d("2020-01-10"), d("2020-01-01"), d("2020-02-01")]
        assert uniformity(dates) == uniformity(sorted(dates))


class TestDateReferenceGraph:
    def test_paper_example_weights(self):
        """The W1/W2/W3 example from Section 2.2 (Trump summit)."""
        pub = d("2018-06-01")
        target = d("2018-06-12")
        pool = [
            DatedSentence(target, "Trump says summit will take place on June 12.",
                          pub, "a", is_reference=True),
            DatedSentence(target, "The summit will take place on June 12.",
                          pub, "a", is_reference=True),
        ]
        graph = DateReferenceGraph(pool)
        w1 = graph.to_graph(EdgeWeight.W1)
        w2 = graph.to_graph(EdgeWeight.W2)
        w3 = graph.to_graph(EdgeWeight.W3)
        assert w1.weight(pub, target) == 2.0
        assert w2.weight(pub, target) == 11.0
        assert w3.weight(pub, target) == 22.0

    def test_w4_uses_query_bm25(self, handmade_dated_sentences):
        graph = DateReferenceGraph(
            handmade_dated_sentences, query=("ceasefire",)
        )
        w4 = graph.to_graph(EdgeWeight.W4)
        # References mentioning "ceasefire" produce positive-weight edges.
        assert w4.weight(d("2020-03-05"), d("2020-03-01")) > 0
        assert w4.weight(d("2020-03-09"), d("2020-03-01")) > 0

    def test_w4_without_query_drops_edges(self, handmade_dated_sentences):
        graph = DateReferenceGraph(handmade_dated_sentences)
        w4 = graph.to_graph(EdgeWeight.W4)
        assert w4.number_of_edges() == 0
        # But all dates are still nodes.
        assert w4.number_of_nodes() == 3

    def test_candidate_dates_sorted(self, handmade_dated_sentences):
        graph = DateReferenceGraph(handmade_dated_sentences)
        assert graph.candidate_dates == [
            d("2020-03-01"), d("2020-03-05"), d("2020-03-09"),
        ]

    def test_num_references(self, handmade_dated_sentences):
        graph = DateReferenceGraph(handmade_dated_sentences)
        # (03-05 -> 03-01), (03-09 -> 03-01), (03-09 -> 03-05)
        assert graph.num_references() == 3


class TestDateSelector:
    def test_most_referenced_date_selected(self, handmade_dated_sentences):
        selector = DateSelector(recency_adjustment=False)
        selected = selector.select(handmade_dated_sentences, num_dates=1)
        assert selected == [d("2020-03-01")]

    def test_selection_chronological(self, handmade_dated_sentences):
        selector = DateSelector(recency_adjustment=False)
        selected = selector.select(handmade_dated_sentences, num_dates=3)
        assert selected == sorted(selected)

    def test_num_dates_validation(self, handmade_dated_sentences):
        with pytest.raises(ValueError):
            DateSelector().select(handmade_dated_sentences, num_dates=0)

    def test_empty_pool(self):
        assert DateSelector().select([], num_dates=3) == []

    def test_alpha_grid_validation(self):
        with pytest.raises(ValueError):
            DateSelector(alpha_grid=[0.5, 1.5])

    def test_select_with_scores(self, handmade_dated_sentences):
        selector = DateSelector(recency_adjustment=False)
        scores = selector.select_with_scores(handmade_dated_sentences)
        assert scores[d("2020-03-01")] == max(scores.values())
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_recency_personalization_monotone(self):
        dates = [d("2020-01-01"), d("2020-01-15"), d("2020-02-01")]
        weights = DateSelector.recency_personalization(dates, alpha=0.9)
        assert (
            weights[d("2020-02-01")]
            > weights[d("2020-01-15")]
            > weights[d("2020-01-01")]
        )

    def test_recency_personalization_max_is_one(self):
        dates = [d("2020-01-01"), d("2020-06-01")]
        weights = DateSelector.recency_personalization(dates, alpha=0.5)
        assert max(weights.values()) == pytest.approx(1.0)

    def test_recency_personalization_no_overflow_long_window(self):
        dates = [d("2015-01-01"), d("2020-01-01")]
        weights = DateSelector.recency_personalization(dates, alpha=0.5)
        assert all(0.0 <= w <= 1.0 for w in weights.values())

    def test_recency_improves_uniformity_on_skewed_graph(self):
        """A graph where all references point to the earliest date."""
        pub_dates = [d("2020-01-01"), d("2020-02-01"), d("2020-03-01"),
                     d("2020-04-01"), d("2020-05-01")]
        target = d("2020-01-01")
        pool = []
        for pub in pub_dates:
            pool.append(DatedSentence(pub, "news today.", pub, "a"))
            if pub != target:
                for _ in range(3):
                    pool.append(DatedSentence(
                        target, "recalling January events.", pub, "a",
                        is_reference=True,
                    ))
        plain = DateSelector(recency_adjustment=False).select(pool, 3)
        adjusted = DateSelector(recency_adjustment=True).select(pool, 3)
        assert uniformity(adjusted) <= uniformity(plain)

    def test_tiny_instance_recall(self, tiny_pool, tiny_instance):
        """Graph selection must beat chance on the synthetic instance."""
        selector = DateSelector()
        selected = selector.select(
            tiny_pool, num_dates=tiny_instance.target_num_dates
        )
        hits = len(set(selected) & set(tiny_instance.reference.dates))
        assert hits >= len(tiny_instance.reference.dates) * 0.3
