"""Tests for the core data types."""

import datetime

import pytest

from repro.tlsdata.types import (
    Article,
    Corpus,
    DatedSentence,
    Dataset,
    Timeline,
    TimelineInstance,
)
from tests.conftest import d


class TestDatedSentence:
    def test_reference_gap_days(self):
        sentence = DatedSentence(
            date=d("2020-03-01"),
            text="x",
            publication_date=d("2020-03-05"),
        )
        assert sentence.reference_gap_days == 4

    def test_gap_is_absolute(self):
        sentence = DatedSentence(
            date=d("2020-03-10"),
            text="x",
            publication_date=d("2020-03-05"),
        )
        assert sentence.reference_gap_days == 5


class TestArticle:
    def test_split_uses_provided_sentences(self):
        article = Article(
            "a1", d("2020-01-01"), sentences=["One.", "Two."]
        )
        assert article.split_sentences() == ["One.", "Two."]

    def test_split_tokenizes_text_with_title(self):
        article = Article(
            "a1",
            d("2020-01-01"),
            title="Big headline",
            text="First sentence. Second sentence.",
        )
        result = article.split_sentences()
        assert result[0] == "Big headline"
        assert len(result) == 3


class TestCorpus:
    def test_window_inferred_from_articles(self):
        corpus = Corpus(
            topic="t",
            articles=[
                Article("a", d("2020-01-05")),
                Article("b", d("2020-02-10")),
            ],
        )
        assert corpus.window == (d("2020-01-05"), d("2020-02-10"))

    def test_window_explicit(self):
        corpus = Corpus(
            topic="t", start=d("2020-01-01"), end=d("2020-12-31")
        )
        assert corpus.window == (d("2020-01-01"), d("2020-12-31"))

    def test_window_empty_raises(self):
        with pytest.raises(ValueError):
            Corpus(topic="t").window

    def test_dated_sentences_include_pub_and_mentions(self, small_corpus):
        pairs = small_corpus.dated_sentences()
        pub_pairs = [p for p in pairs if not p.is_reference]
        ref_pairs = [p for p in pairs if p.is_reference]
        assert pub_pairs and ref_pairs
        # "yesterday" in article a1 (published 03-02) resolves to 03-01.
        assert any(p.date == d("2020-03-01") for p in ref_pairs)
        # "March 1, 2020" in a2 also resolves there.
        a2_refs = [p for p in ref_pairs if p.article_id == "a2"]
        assert any(p.date == d("2020-03-01") for p in a2_refs)

    def test_dated_sentences_without_pub_date(self, small_corpus):
        pairs = small_corpus.dated_sentences(
            include_publication_date=False
        )
        assert all(p.is_reference for p in pairs)


class TestTimeline:
    def test_entries_sorted_and_empty_dropped(self):
        timeline = Timeline(
            {
                d("2020-02-01"): ["b"],
                d("2020-01-01"): ["a"],
                d("2020-03-01"): [],
            }
        )
        assert timeline.dates == [d("2020-01-01"), d("2020-02-01")]

    def test_add_keeps_sorted(self):
        timeline = Timeline()
        timeline.add(d("2020-02-01"), "b")
        timeline.add(d("2020-01-01"), "a")
        assert timeline.dates == [d("2020-01-01"), d("2020-02-01")]

    def test_summary_copy_semantics(self):
        timeline = Timeline({d("2020-01-01"): ["a"]})
        timeline.summary(d("2020-01-01")).append("hack")
        assert timeline.summary(d("2020-01-01")) == ["a"]

    def test_missing_summary_empty(self):
        assert Timeline().summary(d("2020-01-01")) == []

    def test_counts(self):
        timeline = Timeline(
            {d("2020-01-01"): ["a", "b"], d("2020-01-02"): ["c"]}
        )
        assert len(timeline) == 2
        assert timeline.num_sentences() == 3
        assert timeline.average_sentences_per_date() == pytest.approx(1.5)

    def test_empty_average(self):
        assert Timeline().average_sentences_per_date() == 0.0

    def test_all_sentences_chronological(self):
        timeline = Timeline(
            {d("2020-01-02"): ["late"], d("2020-01-01"): ["early"]}
        )
        assert timeline.all_sentences() == ["early", "late"]

    def test_roundtrip_dict(self):
        timeline = Timeline(
            {d("2020-01-01"): ["a"], d("2020-01-02"): ["b", "c"]}
        )
        assert Timeline.from_dict(timeline.to_dict()) == timeline

    def test_equality(self):
        a = Timeline({d("2020-01-01"): ["x"]})
        b = Timeline({d("2020-01-01"): ["x"]})
        assert a == b
        assert a != Timeline()

    def test_contains(self):
        timeline = Timeline({d("2020-01-01"): ["x"]})
        assert d("2020-01-01") in timeline
        assert d("2020-01-02") not in timeline

    def test_iteration_yields_copies(self):
        timeline = Timeline({d("2020-01-01"): ["x"]})
        for _, sentences in timeline:
            sentences.append("hack")
        assert timeline.summary(d("2020-01-01")) == ["x"]


class TestInstanceAndDataset:
    def test_targets(self, simple_timeline, small_corpus):
        instance = TimelineInstance("i", small_corpus, simple_timeline)
        assert instance.target_num_dates == 3
        assert instance.target_sentences_per_date == 1

    def test_target_rounding(self, small_corpus):
        reference = Timeline(
            {
                d("2020-01-01"): ["a", "b", "c"],
                d("2020-01-02"): ["d", "e"],
            }
        )
        instance = TimelineInstance("i", small_corpus, reference)
        assert instance.target_sentences_per_date == 2  # round(2.5) banker's

    def test_dataset_topics_deduplicated(self, small_corpus, simple_timeline):
        dataset = Dataset(
            "ds",
            [
                TimelineInstance("a", small_corpus, simple_timeline),
                TimelineInstance("b", small_corpus, simple_timeline),
            ],
        )
        assert dataset.topics() == ["border-conflict"]
        assert len(dataset) == 2
        assert list(iter(dataset))[0].name == "a"
