"""Tests for BM25-ranked, date-filtered search queries."""

import pytest

from repro.search.index import InvertedIndex
from repro.search.query import SearchQuery, execute
from tests.conftest import d


@pytest.fixture()
def index():
    idx = InvertedIndex()
    idx.add("The ceasefire collapsed near the border.",
            d("2020-01-01"), d("2020-01-01"))
    idx.add("Rebels seized the stronghold outside the city.",
            d("2020-01-05"), d("2020-01-05"))
    idx.add("The ceasefire ceasefire was heavily discussed.",
            d("2020-01-09"), d("2020-01-09"))
    idx.add("Sports results were announced.",
            d("2020-01-09"), d("2020-01-09"))
    return idx


class TestSearchQuery:
    def test_validation_limit(self):
        with pytest.raises(ValueError):
            SearchQuery(keywords=("x",), limit=0)

    def test_validation_window(self):
        with pytest.raises(ValueError):
            SearchQuery(
                keywords=("x",),
                start=d("2020-02-01"),
                end=d("2020-01-01"),
            )


class TestExecute:
    def test_relevance_ordering(self, index):
        hits = execute(index, SearchQuery(keywords=("ceasefire",)))
        assert len(hits) == 2
        assert hits[0].score >= hits[1].score

    def test_date_filter(self, index):
        hits = execute(
            index,
            SearchQuery(
                keywords=("ceasefire",),
                start=d("2020-01-05"),
                end=d("2020-01-31"),
            ),
        )
        assert len(hits) == 1
        assert hits[0].document.date == d("2020-01-09")

    def test_empty_window(self, index):
        hits = execute(
            index,
            SearchQuery(
                keywords=("ceasefire",),
                start=d("2021-01-01"),
                end=d("2021-02-01"),
            ),
        )
        assert hits == []

    def test_limit(self, index):
        hits = execute(
            index, SearchQuery(keywords=("the",), limit=1)
        )
        assert len(hits) <= 1

    def test_oov_query(self, index):
        assert execute(index, SearchQuery(keywords=("qqqq",))) == []

    def test_stopword_only_query(self, index):
        assert execute(index, SearchQuery(keywords=("the", "was"))) == []

    def test_multi_keyword_union(self, index):
        hits = execute(
            index, SearchQuery(keywords=("ceasefire", "rebels"))
        )
        texts = {h.document.text for h in hits}
        assert any("Rebels" in t for t in texts)
        assert any("ceasefire" in t for t in texts)

    def test_empty_index(self):
        assert execute(InvertedIndex(),
                       SearchQuery(keywords=("x",))) == []

    def test_phrase_keywords_tokenised(self, index):
        hits = execute(
            index, SearchQuery(keywords=("ceasefire collapsed",))
        )
        assert hits
        assert "collapsed" in hits[0].document.text
