"""Run the doctest examples embedded in module docstrings."""

import doctest
import importlib

import pytest

# Attribute access like ``repro.text.tokenize`` resolves to the
# *function* re-exported by the package __init__, so modules are loaded
# by name instead.
MODULES_WITH_DOCTESTS = [
    "repro.text.tokenize",
]


@pytest.mark.parametrize("module_name", MODULES_WITH_DOCTESTS)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module_name}"
    )
    assert results.attempted > 0, (
        f"no doctests found in {module_name}; update this test if the "
        "examples moved"
    )
