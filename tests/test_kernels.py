"""Purity suite for :mod:`repro.kernels`.

The kernels module carries one behavioural contract beyond numerics:
every entry point is a pure function over arrays -- it must run on
``writeable=False`` inputs (the shape mmap-backed snapshot views arrive
in) and must leave every input bit-identical. Each kernel is exercised
twice here: once on frozen arrays (any in-place write raises), once
under hypothesis with byte-level before/after comparison on writeable
arrays (catching writes that frozen flags alone would mask, e.g. through
a scipy matrix aliasing the input buffer).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels


def _freeze(*arrays):
    for array in arrays:
        array.setflags(write=False)
    return arrays


def _snapshot_bytes(arrays):
    return [array.tobytes() for array in arrays]


def _assert_unchanged(arrays, before):
    for array, expected in zip(arrays, before):
        assert array.tobytes() == expected, "kernel mutated an input"


def _bm25_fixture():
    """A small but non-trivial postings layout (3 docs, 4 terms)."""
    ids_cat = np.array([0, 1, 1, 2, 0, 3, 3, 3, 2], dtype=np.int64)
    row_lengths = [4, 2, 3]
    return ids_cat, row_lengths


class TestFrozenInputs:
    """Every kernel runs on writeable=False arrays without writing."""

    def test_bm25_build(self):
        ids_cat, row_lengths = _bm25_fixture()
        _freeze(ids_cat)
        indptr, cols, doc_data, query_data, idf, avgdl = (
            kernels.bm25_build(ids_cat, row_lengths, 4, 1.2, 0.75)
        )
        assert indptr[-1] == len(cols) == len(doc_data)
        assert avgdl == pytest.approx(3.0)

    def test_bm25_saturate(self):
        tf = np.array([1.0, 2.0, 1.0], dtype=np.float64)
        rows = np.array([0, 0, 1], dtype=np.int64)
        doc_lengths = np.array([3.0, 2.0], dtype=np.float64)
        _freeze(tf, rows, doc_lengths)
        out = kernels.bm25_saturate(tf, rows, doc_lengths, 2.5, 1.2, 0.75)
        assert out.shape == tf.shape
        assert not np.shares_memory(out, tf)

    def test_csr_matvec(self):
        data = np.array([1.0, 2.0, 3.0], dtype=np.float64)
        indices = np.array([0, 2, 1], dtype=np.int32)
        indptr = np.array([0, 2, 3], dtype=np.int32)
        vector = np.array([1.0, 1.0, 1.0], dtype=np.float64)
        _freeze(data, indices, indptr, vector)
        out = kernels.csr_matvec(data, indices, indptr, (2, 3), vector)
        assert out.tolist() == [3.0, 3.0]

    def test_bm25_day_matrix(self):
        ids_cat, row_lengths = _bm25_fixture()
        indptr, cols, doc_data, query_data, _, _ = kernels.bm25_build(
            ids_cat, row_lengths, 4, 1.2, 0.75
        )
        _freeze(indptr, cols, doc_data, query_data)
        matrix = kernels.bm25_day_matrix(
            query_data, doc_data, cols, indptr, (3, 4)
        )
        assert matrix.shape == (3, 3)
        assert np.diagonal(matrix).tolist() == [0.0, 0.0, 0.0]

    def test_pagerank_iterate(self):
        transition = np.array(
            [[0.0, 1.0], [0.5, 0.5]], dtype=np.float64
        )
        restart = np.full(2, 0.5)
        dangling = np.zeros(2, dtype=bool)
        _freeze(transition, restart, dangling)
        rank, iterations = kernels.pagerank_iterate(
            transition, restart, dangling, 0.85, 200, 1e-10
        )
        assert rank.sum() == pytest.approx(1.0)
        assert iterations >= 1

    def test_redundancy_accept(self):
        # Two identical unit rows + one orthogonal: positions 0 and 2
        # survive, position 1 is redundant against 0.
        data = np.array([1.0, 1.0, 1.0], dtype=np.float64)
        indices = np.array([0, 0, 1], dtype=np.int32)
        indptr = np.array([0, 1, 2, 3], dtype=np.int32)
        _freeze(data, indices, indptr)
        accepted = kernels.redundancy_accept(
            data, indices, indptr, 3, 2, None, None, None, 0, 0.5
        )
        assert accepted == [0, 2]


class TestBitUnchangedInputs:
    """Byte-level before/after equality on writeable inputs.

    Frozen flags catch direct writes but not mutation through an alias
    (e.g. a scipy csr_matrix wrapping the caller's data buffer and
    sorting it in place); comparing raw bytes catches both.
    """

    @given(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=5),
                min_size=1,
                max_size=6,
            ),
            min_size=1,
            max_size=5,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_bm25_build_and_day_matrix(self, docs):
        ids_cat = np.array(
            [t for doc in docs for t in doc], dtype=np.int64
        )
        row_lengths = [len(doc) for doc in docs]
        inputs = (ids_cat,)
        before = _snapshot_bytes(inputs)
        indptr, cols, doc_data, query_data, _, _ = kernels.bm25_build(
            ids_cat, row_lengths, 6, 1.2, 0.75
        )
        _assert_unchanged(inputs, before)

        stage2 = (indptr, cols, doc_data, query_data)
        before2 = _snapshot_bytes(stage2)
        kernels.bm25_day_matrix(
            query_data, doc_data, cols, indptr, (len(docs), 6)
        )
        _assert_unchanged(stage2, before2)

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_pagerank_iterate(self, n, seed):
        rng = np.random.RandomState(seed)
        matrix = rng.rand(n, n)
        matrix[rng.rand(n) < 0.3] = 0.0  # some dangling rows
        out_weights = matrix.sum(axis=1)
        dangling = out_weights == 0
        safe = np.where(dangling, 1.0, out_weights)
        transition = matrix / safe[:, None]
        restart = np.full(n, 1.0 / n)
        inputs = (transition, restart, dangling)
        before = _snapshot_bytes(inputs)
        rank, _ = kernels.pagerank_iterate(
            transition, restart, dangling, 0.85, 100, 1e-10
        )
        _assert_unchanged(inputs, before)
        assert rank.sum() == pytest.approx(1.0)

    @given(
        st.lists(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0, width=32),
                min_size=3,
                max_size=3,
            ),
            min_size=1,
            max_size=5,
        ),
        st.floats(min_value=0.1, max_value=1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_redundancy_accept(self, rows, threshold):
        from scipy import sparse

        dense = np.asarray(rows, dtype=np.float64)
        norms = np.linalg.norm(dense, axis=1, keepdims=True)
        dense = np.divide(
            dense, norms, out=np.zeros_like(dense), where=norms > 0
        )
        candidates = sparse.csr_matrix(dense)
        inputs = (
            candidates.data.copy(),
            candidates.indices.copy(),
            candidates.indptr.copy(),
        )
        before = _snapshot_bytes(inputs)
        kernels.redundancy_accept(
            inputs[0], inputs[1], inputs[2],
            dense.shape[0], dense.shape[1],
            None, None, None, 0, threshold,
        )
        _assert_unchanged(inputs, before)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=5.0),
            min_size=1,
            max_size=8,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_csr_matvec_and_saturate(self, values):
        data = np.asarray(values, dtype=np.float64)
        indices = np.arange(len(values), dtype=np.int32)
        indptr = np.array([0, len(values)], dtype=np.int64)
        vector = np.ones(len(values), dtype=np.float64)
        inputs = (data, indices, indptr, vector)
        before = _snapshot_bytes(inputs)
        kernels.csr_matvec(
            data, indices, indptr, (1, len(values)), vector
        )
        _assert_unchanged(inputs, before)

        rows = np.zeros(len(values), dtype=np.int64)
        doc_lengths = np.array([float(len(values))])
        inputs2 = (data, rows, doc_lengths)
        before2 = _snapshot_bytes(inputs2)
        kernels.bm25_saturate(
            data, rows, doc_lengths, max(doc_lengths[0], 1.0), 1.2, 0.75
        )
        _assert_unchanged(inputs2, before2)


class TestKernelSemantics:
    """Numeric spot checks against the classic formulations."""

    def test_bm25_build_matches_reference_idf(self):
        import math

        ids_cat, row_lengths = _bm25_fixture()
        _, cols, _, _, idf, _ = kernels.bm25_build(
            ids_cat, row_lengths, 4, 1.2, 0.75
        )
        # Token 0 appears in docs 0 and 1 -> df = 2 of 3.
        expected = math.log(1.0 + (3 - 2 + 0.5) / (2 + 0.5))
        assert idf[0] == pytest.approx(expected)

    def test_csr_matvec_matches_scipy(self):
        from scipy import sparse

        rng = np.random.RandomState(7)
        dense = rng.rand(4, 5)
        dense[dense < 0.5] = 0.0
        matrix = sparse.csr_matrix(dense)
        vector = rng.rand(5)
        out = kernels.csr_matvec(
            matrix.data, matrix.indices, matrix.indptr,
            matrix.shape, vector,
        )
        np.testing.assert_allclose(out, dense @ vector)

    def test_pagerank_uniform_on_complete_graph(self):
        n = 4
        transition = np.full((n, n), 1.0 / n)
        restart = np.full(n, 1.0 / n)
        dangling = np.zeros(n, dtype=bool)
        rank, _ = kernels.pagerank_iterate(
            transition, restart, dangling, 0.85, 200, 1e-12
        )
        np.testing.assert_allclose(rank, restart)

    def test_redundancy_accept_against_pool(self):
        from scipy import sparse

        accepted_pool = sparse.csr_matrix(
            np.array([[1.0, 0.0]], dtype=np.float64)
        )
        candidates = sparse.csr_matrix(
            np.array([[1.0, 0.0], [0.0, 1.0]], dtype=np.float64)
        )
        accepted = kernels.redundancy_accept(
            candidates.data, candidates.indices, candidates.indptr,
            2, 2,
            accepted_pool.data, accepted_pool.indices,
            accepted_pool.indptr, 1,
            0.5,
        )
        assert accepted == [1]
