"""Tests for the Vocabulary token/id mapping."""

import pytest

from repro.text.vocabulary import Vocabulary


class TestVocabulary:
    def test_add_assigns_sequential_ids(self):
        vocab = Vocabulary()
        assert vocab.add("a") == 0
        assert vocab.add("b") == 1

    def test_add_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add("a")
        assert vocab.add("a") == first
        assert len(vocab) == 1

    def test_constructor_seeding(self):
        vocab = Vocabulary(["x", "y", "x"])
        assert len(vocab) == 2
        assert vocab.get("x") == 0

    def test_get_oov_returns_none(self):
        assert Vocabulary().get("missing") is None

    def test_encode_drops_oov(self):
        vocab = Vocabulary(["a", "b"])
        assert vocab.encode(["a", "zzz", "b"]) == [0, 1]

    def test_token_roundtrip(self):
        vocab = Vocabulary(["alpha", "beta"])
        assert vocab.token(vocab.get("beta")) == "beta"

    def test_token_out_of_range_raises(self):
        with pytest.raises(IndexError):
            Vocabulary(["a"]).token(5)

    def test_contains_and_iter(self):
        vocab = Vocabulary(["a", "b"])
        assert "a" in vocab
        assert list(vocab) == ["a", "b"]

    def test_add_all(self):
        vocab = Vocabulary()
        assert vocab.add_all(["p", "q", "p"]) == [0, 1, 0]

    def test_repr(self):
        assert "size=2" in repr(Vocabulary(["a", "b"]))
