"""Determinism proof: ``parallel(k workers) == sequential``, byte for byte.

The acceptance bar for the sharded runtime is that parallelism is purely
an execution detail: a sweep fanned across worker processes must produce
the **byte-identical** selected dates, summary sentences, and merged
metrics as the sequential loop, for every worker count. These tests
serialise both paths' outputs to canonical JSON bytes and compare them
on the golden corpora of ``conftest.GOLDEN_CONFIGS`` -- the same corpora
pinned by ``tests/golden/``, so the parallel path is transitively proven
against the checked-in fixtures too.

Equivalence contract (see docs/runtime.md): the method must be
deterministic *per instance* -- a stateless method object, or a factory
constructing a fresh method per instance. Both runner paths route every
instance through the same ``_evaluate_shard`` function, so any
divergence is a scheduler bug, not a tolerance issue.
"""

from __future__ import annotations

import json

import pytest

from repro.core.variants import wilson_full
from repro.experiments.comparison import compare_methods
from repro.experiments.datasets import TaggedDataset
from repro.experiments.runner import WilsonMethod, run_method
from repro.runtime import ShardPolicy
from repro.tlsdata.types import Dataset

WORKER_COUNTS = (1, 2, 4)


def _make_wilson(instance):
    """Module-level factory so the process backend can pickle it."""
    return WilsonMethod(wilson_full(), name="WILSON")


def canonical_bytes(result) -> bytes:
    """A MethodResult's observable output as canonical JSON bytes.

    Covers selected dates, summary sentences, and every merged metric;
    excludes wall-clock fields, which legitimately differ between runs.
    """
    document = {
        "method": result.method_name,
        "instances": [
            {
                "name": scores.instance_name,
                "metrics": {
                    key: scores.metrics[key]
                    for key in sorted(scores.metrics)
                },
                "timeline": None
                if scores.timeline is None
                else [
                    {
                        "date": date.isoformat(),
                        "sentences": list(sentences),
                    }
                    for date, sentences in scores.timeline
                ],
            }
            for scores in result.per_instance
        ],
        "means": {
            key: result.mean(key)
            for key in sorted(
                result.per_instance[0].metrics if result.per_instance else []
            )
        },
    }
    return json.dumps(document, sort_keys=True).encode("utf-8")


@pytest.fixture(scope="module")
def golden_tagged(golden_instances):
    return TaggedDataset(
        Dataset("golden", [golden_instances[k] for k in sorted(golden_instances)])
    )


@pytest.fixture(scope="module")
def sequential_bytes(golden_tagged):
    result = run_method(
        _make_wilson,
        golden_tagged,
        include_s_star=False,
        keep_timelines=True,
    )
    assert all(s.timeline is not None for s in result.per_instance)
    return canonical_bytes(result)


class TestRunnerEquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_process_pool_matches_sequential(
        self, golden_tagged, sequential_bytes, workers
    ):
        result = run_method(
            _make_wilson,
            golden_tagged,
            include_s_star=False,
            keep_timelines=True,
            parallel=ShardPolicy(workers=workers, backend="process"),
        )
        assert result.report is not None
        assert result.report.num_degraded == 0
        assert canonical_bytes(result) == sequential_bytes

    @pytest.mark.parametrize("backend", ["inline", "thread"])
    def test_other_backends_match_sequential(
        self, golden_tagged, sequential_bytes, backend
    ):
        result = run_method(
            _make_wilson,
            golden_tagged,
            include_s_star=False,
            keep_timelines=True,
            parallel=ShardPolicy(workers=2, backend=backend),
        )
        assert canonical_bytes(result) == sequential_bytes

    def test_repeated_parallel_runs_are_identical(
        self, golden_tagged
    ):
        policy = ShardPolicy(workers=2, backend="process")
        first = run_method(
            _make_wilson, golden_tagged,
            include_s_star=False, keep_timelines=True, parallel=policy,
        )
        second = run_method(
            _make_wilson, golden_tagged,
            include_s_star=False, keep_timelines=True, parallel=policy,
        )
        assert canonical_bytes(first) == canonical_bytes(second)


class TestComparisonEquivalence:
    @pytest.fixture(scope="class")
    def two_results(self, golden_tagged):
        wilson = run_method(
            _make_wilson, golden_tagged, include_s_star=False
        )
        from repro.baselines import RandomBaseline

        random_result = run_method(
            lambda instance: RandomBaseline(seed=3),
            golden_tagged,
            include_s_star=False,
        )
        return wilson, random_result

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_sharded_comparison_matches_sequential(
        self, two_results, workers
    ):
        wilson, random_result = two_results
        kwargs = dict(num_shuffles=300, num_resamples=300)
        sequential = compare_methods(wilson, random_result, **kwargs)
        # Metric shards run inline here: the comparison payloads carry
        # only float lists, so the backend cannot affect the arithmetic
        # and inline keeps the matrix fast on small CI runners. The
        # process backend path is covered by TestRunnerEquivalence.
        parallel = compare_methods(
            wilson,
            random_result,
            parallel=ShardPolicy(workers=workers, backend="inline"),
            **kwargs,
        )
        assert sequential == parallel
        assert list(sequential) == list(parallel)
