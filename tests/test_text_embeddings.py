"""Tests for the LSA sentence embeddings (BERT substitute)."""

import numpy as np
import pytest

from repro.text.embeddings import LsaEmbedder, embed_daily_summaries

TEXTS = [
    "The ceasefire collapsed near the border after artillery fire.",
    "Artillery fire broke the ceasefire along the border region.",
    "The vaccine rollout reached rural clinics this week.",
    "Clinics received new vaccine shipments for the rollout.",
    "Stock markets rallied as tariffs were suspended.",
    "Tariff suspension sent the markets sharply higher.",
]


class TestLsaEmbedder:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            LsaEmbedder(dimensions=0)

    def test_unfitted_transform_raises(self):
        with pytest.raises(RuntimeError):
            LsaEmbedder().transform(["x"])

    def test_shapes(self):
        embeddings = LsaEmbedder(dimensions=4).fit_transform(TEXTS)
        assert embeddings.shape == (len(TEXTS), 4)

    def test_rows_unit_norm(self):
        embeddings = LsaEmbedder(dimensions=4).fit_transform(TEXTS)
        norms = np.linalg.norm(embeddings, axis=1)
        assert np.allclose(norms[norms > 0], 1.0)

    def test_same_topic_closer_than_cross_topic(self):
        embedder = LsaEmbedder(dimensions=4).fit(TEXTS)
        matrix = embedder.similarity_matrix(TEXTS)
        # Pairs (0,1), (2,3), (4,5) are same-event paraphrases.
        same = [matrix[0, 1], matrix[2, 3], matrix[4, 5]]
        cross = [matrix[0, 2], matrix[0, 4], matrix[2, 4]]
        assert min(same) > max(cross)

    def test_dimension_reduced_for_tiny_corpus(self):
        embeddings = LsaEmbedder(dimensions=64).fit_transform(TEXTS[:3])
        assert embeddings.shape[0] == 3
        assert embeddings.shape[1] <= 64

    def test_degenerate_single_document(self):
        embeddings = LsaEmbedder(dimensions=8).fit_transform([TEXTS[0]])
        assert embeddings.shape[0] == 1

    def test_similarity_bounded(self):
        embedder = LsaEmbedder(dimensions=4).fit(TEXTS)
        matrix = embedder.similarity_matrix(TEXTS)
        assert matrix.max() <= 1.0 + 1e-9
        assert matrix.min() >= -1.0 - 1e-9

    def test_deterministic(self):
        a = LsaEmbedder(dimensions=4).fit_transform(TEXTS)
        b = LsaEmbedder(dimensions=4).fit_transform(TEXTS)
        assert np.allclose(np.abs(a), np.abs(b))


class TestHelper:
    def test_embed_daily_summaries_empty(self):
        result = embed_daily_summaries([])
        assert result.shape[0] == 0

    def test_embed_daily_summaries(self):
        result = embed_daily_summaries(TEXTS, dimensions=3)
        assert result.shape == (len(TEXTS), 3)
