"""Tests for the inverted index."""

import pytest

from repro.search.index import InvertedIndex
from tests.conftest import d


@pytest.fixture()
def index():
    idx = InvertedIndex()
    idx.add("The ceasefire collapsed near the border.",
            d("2020-01-01"), d("2020-01-01"), "a1")
    idx.add("Rebels seized the stronghold.",
            d("2020-01-05"), d("2020-01-05"), "a2")
    idx.add("The ceasefire was restored after talks.",
            d("2020-01-09"), d("2020-01-09"), "a3")
    return idx


class TestWrites:
    def test_doc_ids_sequential(self):
        idx = InvertedIndex()
        assert idx.add("one.", d("2020-01-01"), d("2020-01-01")) == 0
        assert idx.add("two.", d("2020-01-02"), d("2020-01-02")) == 1

    def test_incremental_statistics(self, index):
        before = index.num_documents
        avgdl_before = index.average_length
        index.add(
            "A very fresh and unusually detailed development occurred "
            "in the disputed region overnight.",
            d("2020-02-01"), d("2020-02-01"),
        )
        assert index.num_documents == before + 1
        assert index.average_length != avgdl_before


class TestReads:
    def test_document_roundtrip(self, index):
        doc = index.document(1)
        assert doc.text == "Rebels seized the stronghold."
        assert doc.date == d("2020-01-05")

    def test_document_frequency(self, index):
        # "ceasefire" stems to itself; appears in docs 0 and 2.
        assert index.document_frequency("ceasefir") == 2
        assert index.document_frequency("zzz") == 0

    def test_postings_are_copies(self, index):
        postings = index.postings("ceasefir")
        postings[999] = 1
        assert 999 not in index.postings("ceasefir")

    def test_dates_sorted(self, index):
        assert index.dates() == [
            d("2020-01-01"), d("2020-01-05"), d("2020-01-09"),
        ]

    def test_doc_ids_in_range(self, index):
        ids = list(index.doc_ids_in_range(d("2020-01-02"), d("2020-01-08")))
        assert ids == [1]

    def test_doc_ids_open_ranges(self, index):
        assert list(index.doc_ids_in_range(None, None)) == [0, 1, 2]
        assert list(index.doc_ids_in_range(d("2020-01-05"), None)) == [1, 2]
        assert list(index.doc_ids_in_range(None, d("2020-01-05"))) == [0, 1]

    def test_documents_on(self, index):
        docs = index.documents_on(d("2020-01-05"))
        assert len(docs) == 1
        assert docs[0].article_id == "a2"
        assert index.documents_on(d("2021-01-01")) == []

    def test_vocabulary_size_positive(self, index):
        assert index.vocabulary_size() > 0

    def test_len_and_repr(self, index):
        assert len(index) == 3
        assert "documents=3" in repr(index)

    def test_empty_index(self):
        idx = InvertedIndex()
        assert idx.average_length == 0.0
        assert idx.dates() == []


class TestIndexVersion:
    def test_bumped_on_every_add(self, index):
        assert index.index_version == 3
        index.add("More news arrived.", d("2020-01-10"), d("2020-01-10"))
        assert index.index_version == 4

    def test_empty_index_starts_at_zero(self):
        assert InvertedIndex().index_version == 0

    def test_save_load_round_trip(self, index, tmp_path):
        # Advance the version past the document count (simulating an
        # index that had documents added and a fresh save): the restored
        # version must match the saved one exactly, not the re-insert
        # count.
        index._version = 17
        path = tmp_path / "index.jsonl"
        index.save(path)
        restored = InvertedIndex.load(path)
        assert restored.index_version == 17
        assert len(restored) == len(index)
        assert restored.document(1).text == index.document(1).text
        # Writes after restore keep counting up from the saved revision.
        restored.add("Fresh report.", d("2020-02-01"), d("2020-02-01"))
        assert restored.index_version == 18

    def test_empty_index_with_meta_preserves_version(self, tmp_path):
        # An empty index that has handed out versions (documents added,
        # then a fresh incarnation saved empty) must restore its saved
        # revision -- not reset to zero -- so result caches keyed on
        # index_version never see a reused version.
        empty = InvertedIndex()
        empty._version = 9
        path = tmp_path / "empty.jsonl"
        empty.save(path)
        restored = InvertedIndex.load(path)
        assert len(restored) == 0
        assert restored.index_version == 9
        restored.add("First report.", d("2020-02-01"), d("2020-02-01"))
        assert restored.index_version == 10

    def test_load_pre_version_format(self, index, tmp_path):
        # Old snapshots have no meta line; the restored version falls
        # back to the number of re-inserted documents.
        path = tmp_path / "old.jsonl"
        index.save(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert "meta" in lines[0]
        path.write_text("\n".join(lines[1:]) + "\n", encoding="utf-8")
        restored = InvertedIndex.load(path)
        assert len(restored) == 3
        assert restored.index_version == 3
