"""Fault injection for the sharded runtime: crash, hang, corrupt shapes.

Every failure mode the scheduler promises to isolate is injected here
and the promised behaviour asserted: a crashing shard is retried
``retries`` times then recorded as degraded without aborting the sweep;
a hanging shard is killed at the deadline (process backend) or abandoned
(thread backend); a corrupt return shape is rejected by the ``validate``
hook and retried like a crash; a hard worker death (``os._exit``) breaks
the pool without losing the sweep. The ``runtime.retries`` /
``runtime.timeouts`` / ``runtime.degraded`` counters are asserted to
reflect each scenario -- the telemetry contract of docs/runtime.md.

Worker functions are module-level so the process backend can pickle
them. Deadlines are generous multiples of the injected sleep times to
stay robust on slow shared CI runners; wall-clock assertions bound only
the *order of magnitude* (a hung worker must not stall the sweep for its
full 600 s sleep).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments.datasets import TaggedDataset
from repro.experiments.runner import run_method
from repro.obs.metrics import Metrics
from repro.obs.trace import Tracer
from repro.runtime import (
    DegradedSweepError,
    ShardPolicy,
    ShardReport,
    run_sharded,
)
from repro.tlsdata.types import Dataset

# -- injected workers (module-level: picklable) --------------------------------


def _double(x):
    return x * 2


def _always_crash(x):
    raise ValueError(f"injected crash on {x!r}")


def _crash_until(payload):
    """Fail until *succeed_after* attempts are on record in *path*."""
    path, succeed_after, value = payload
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("attempt\n")
    with open(path, "r", encoding="utf-8") as handle:
        attempts = len(handle.readlines())
    if attempts <= succeed_after:
        raise RuntimeError(f"transient failure #{attempts}")
    return value


def _hang_if_marked(payload):
    """Sleep *hang_seconds* (0 = no hang) then return ``value * 2``.

    Process-backend tests pass a long sleep -- the worker is killed at
    the deadline, so the duration never matters. Thread-backend tests
    pass a short one: an abandoned thread cannot be killed and is joined
    at interpreter exit, so a long sleep would stall pytest shutdown.
    """
    value, hang_seconds = payload
    if hang_seconds:
        time.sleep(hang_seconds)
    return value * 2


def _hard_exit(x):
    os._exit(13)


def _wrong_shape(x):
    return {"unexpected": x}


def _require_int(value):
    if not isinstance(value, int):
        raise TypeError(f"expected int, got {type(value).__name__}")


def _crash_on_marked_topic(instance):
    """run_method factory: crashes while building the marked topic's method."""
    if instance.corpus.topic.endswith("-poison"):
        raise ValueError("injected method-construction crash")
    from repro.baselines import RandomBaseline

    return RandomBaseline(seed=3)


BACKENDS_WITH_RETRY = ("inline", "thread", "process")
FAST_BACKOFF = dict(backoff_seconds=0.01, backoff_multiplier=1.0)


# -- crash isolation -----------------------------------------------------------


class TestCrashIsolation:
    @pytest.mark.parametrize("backend", BACKENDS_WITH_RETRY)
    def test_crash_retried_then_degraded_without_aborting(self, backend):
        tracer = Tracer()
        retries = 2
        report = run_sharded(
            _always_crash,
            [1],
            ShardPolicy(
                workers=1, retries=retries, backend=backend, **FAST_BACKOFF
            ),
            tracer=tracer,
        )
        shard = report.results[0]
        assert shard.degraded and not shard.ok
        assert shard.attempts == 1 + retries
        assert shard.retried == retries
        assert "injected crash" in shard.error
        assert len(shard.failures) == 1 + retries
        assert tracer.counters["runtime.retries"] == retries
        assert tracer.counters["runtime.degraded"] == 1
        assert tracer.counters["runtime.failures"] == 1 + retries

    def test_one_crashing_shard_does_not_poison_the_others(self):
        def crash_on_two(x):
            if x == 2:
                raise ValueError("injected")
            return x * 2

        # Thread backend so the closure needs no pickling; the process
        # backend's version of this property is covered below.
        report = run_sharded(
            crash_on_two,
            [1, 2, 3, 4],
            ShardPolicy(
                workers=2, retries=1, backend="thread", **FAST_BACKOFF
            ),
        )
        assert report.values() == [2, None, 6, 8]
        assert [r.status for r in report.results] == [
            "ok", "degraded", "ok", "ok",
        ]
        innocent = [r for r in report.results if r.ok]
        assert all(r.attempts == 1 for r in innocent)

    def test_transient_crash_recovers_within_retries(self, tmp_path):
        marker = tmp_path / "attempts.log"
        report = run_sharded(
            _crash_until,
            [(str(marker), 2, "payload")],
            ShardPolicy(
                workers=1, retries=3, backend="process", **FAST_BACKOFF
            ),
        )
        shard = report.results[0]
        assert shard.ok
        assert shard.value == "payload"
        assert shard.attempts == 3  # two charged failures + the success
        assert report.total_retries == 2
        assert marker.read_text().count("attempt") == 3

    def test_hard_worker_death_degrades_not_raises(self):
        tracer = Tracer()
        report = run_sharded(
            _hard_exit,
            [1],
            ShardPolicy(
                workers=1, retries=1, backend="process", **FAST_BACKOFF
            ),
        )
        shard = report.results[0]
        assert shard.degraded
        assert shard.attempts == 2
        assert "broken pool" in shard.error


# -- hang isolation ------------------------------------------------------------


class TestHangIsolation:
    def test_hanging_shard_killed_at_timeout(self):
        tracer = Tracer()
        timeout = 0.75
        started = time.perf_counter()
        report = run_sharded(
            _hang_if_marked,
            [(1, 0), (2, 600), (3, 0)],
            ShardPolicy(
                workers=2,
                timeout_seconds=timeout,
                retries=0,
                backend="process",
                **FAST_BACKOFF,
            ),
            tracer=tracer,
        )
        wall = time.perf_counter() - started
        assert report.values() == [2, None, 6]
        hung = report.results[1]
        assert hung.degraded
        assert hung.timeouts == 1
        assert "timeout" in hung.error
        assert tracer.counters["runtime.timeouts"] == 1
        assert tracer.counters["runtime.degraded"] == 1
        # The sweep must finish in deadline-order time, nowhere near the
        # injected 600 s sleep.
        assert wall < 60

    def test_innocent_inflight_shards_not_charged_by_pool_kill(self):
        report = run_sharded(
            _hang_if_marked,
            [(1, 600), (2, 0), (3, 0), (4, 0)],
            ShardPolicy(
                workers=4,
                timeout_seconds=0.75,
                retries=0,
                backend="process",
                **FAST_BACKOFF,
            ),
        )
        assert report.values() == [None, 4, 6, 8]
        for innocent in report.results[1:]:
            # Resubmission after the pool kill is free: exactly one
            # charged attempt, no recorded failures.
            assert innocent.ok
            assert innocent.attempts == 1
            assert innocent.failures == []

    def test_hang_then_retry_also_times_out(self):
        tracer = Tracer()
        report = run_sharded(
            _hang_if_marked,
            [(1, 600)],
            ShardPolicy(
                workers=1,
                timeout_seconds=0.5,
                retries=1,
                backend="process",
                **FAST_BACKOFF,
            ),
            tracer=tracer,
        )
        shard = report.results[0]
        assert shard.degraded
        assert shard.attempts == 2
        assert shard.timeouts == 2
        assert tracer.counters["runtime.retries"] == 1
        assert tracer.counters["runtime.timeouts"] == 2

    def test_thread_backend_abandons_hung_attempt(self):
        started = time.perf_counter()
        report = run_sharded(
            _hang_if_marked,
            [(1, 4), (2, 0)],
            ShardPolicy(
                workers=2,
                timeout_seconds=0.5,
                retries=0,
                backend="thread",
                **FAST_BACKOFF,
            ),
        )
        wall = time.perf_counter() - started
        assert report.values() == [None, 4]
        assert report.results[0].degraded
        assert report.results[0].timeouts == 1
        assert wall < 60


# -- corrupt shapes ------------------------------------------------------------


class TestCorruptShapes:
    @pytest.mark.parametrize("backend", BACKENDS_WITH_RETRY)
    def test_invalid_shape_retried_then_degraded(self, backend):
        tracer = Tracer()
        report = run_sharded(
            _wrong_shape,
            [7],
            ShardPolicy(
                workers=1, retries=1, backend=backend, **FAST_BACKOFF
            ),
            validate=_require_int,
            tracer=tracer,
        )
        shard = report.results[0]
        assert shard.degraded
        assert shard.attempts == 2
        assert "invalid result" in shard.error
        assert tracer.counters["runtime.degraded"] == 1
        assert tracer.counters["runtime.retries"] == 1

    def test_valid_shapes_pass_the_validator(self):
        report = run_sharded(
            _double,
            [1, 2, 3],
            ShardPolicy(backend="inline"),
            validate=_require_int,
        )
        assert report.values() == [2, 4, 6]
        assert report.num_degraded == 0


# -- report and policy surface -------------------------------------------------


class TestReportAndPolicy:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ShardPolicy(workers=0)
        with pytest.raises(ValueError):
            ShardPolicy(timeout_seconds=0.0)
        with pytest.raises(ValueError):
            ShardPolicy(retries=-1)
        with pytest.raises(ValueError):
            ShardPolicy(backend="fiber")
        with pytest.raises(ValueError):
            ShardPolicy(backoff_seconds=-1.0)
        with pytest.raises(ValueError):
            ShardPolicy(backoff_multiplier=0.5)

    def test_backoff_schedule(self):
        policy = ShardPolicy(
            backoff_seconds=0.1, backoff_multiplier=2.0, retries=3
        )
        assert policy.backoff_for(0) == 0.0
        assert policy.backoff_for(1) == pytest.approx(0.1)
        assert policy.backoff_for(2) == pytest.approx(0.2)
        assert policy.backoff_for(3) == pytest.approx(0.4)
        assert policy.max_attempts == 4

    def test_keys_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length mismatch"):
            run_sharded(
                _double, [1, 2], ShardPolicy(backend="inline"), keys=["a"]
            )

    def test_values_default_and_raise_if_degraded(self):
        report = run_sharded(
            _always_crash,
            [1],
            ShardPolicy(retries=0, backend="inline", **FAST_BACKOFF),
        )
        assert report.values(default="missing") == ["missing"]
        with pytest.raises(DegradedSweepError) as excinfo:
            report.raise_if_degraded()
        assert "shard[0]" in str(excinfo.value)
        assert excinfo.value.degraded == report.degraded_results

    def test_empty_sweep(self):
        report = run_sharded(_double, [], ShardPolicy(workers=4))
        assert isinstance(report, ShardReport)
        assert report.results == []
        assert report.values() == []

    def test_shard_seconds_histogram_counts_ok_shards(self):
        metrics = Metrics()
        report = run_sharded(
            _double,
            [1, 2, 3],
            ShardPolicy(workers=2, backend="thread"),
            metrics=metrics,
        )
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["runtime.shards"] == 3
        assert snapshot["counters"]["runtime.ok"] == 3
        assert snapshot["counters"]["runtime.degraded"] == 0
        assert (
            snapshot["histograms"]["runtime.shard_seconds"]["count"] == 3
        )


# -- runner-level degradation --------------------------------------------------


class TestRunnerDegradation:
    def test_degraded_instance_scores_zero_and_is_listed(
        self, golden_instances
    ):
        # Poison one topic by renaming it; the factory crashes on it.
        import copy

        poisoned = []
        for index, name in enumerate(sorted(golden_instances)):
            instance = copy.deepcopy(golden_instances[name])
            if index == 0:
                instance.corpus.topic += "-poison"
            poisoned.append(instance)
        tagged = TaggedDataset(Dataset("poisoned", poisoned))
        tracer = Tracer()
        result = run_method(
            _crash_on_marked_topic,
            tagged,
            include_s_star=False,
            parallel=ShardPolicy(
                workers=2, retries=1, backend="process", **FAST_BACKOFF
            ),
            tracer=tracer,
        )
        assert len(result.per_instance) == len(poisoned)
        assert len(result.degraded_instances) == 1
        degraded_row = result.per_instance[0]
        assert all(v == 0.0 for v in degraded_row.metrics.values())
        healthy_row = result.per_instance[1]
        assert any(v != 0.0 for v in healthy_row.metrics.values())
        assert tracer.counters["runtime.degraded"] == 1
        assert tracer.counters["runtime.retries"] == 1
