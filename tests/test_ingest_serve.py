"""Ingest over HTTP: admission, read-your-write, precise invalidation.

Drives real sockets against a :class:`~repro.serve.TimelineServer` with
an attached :class:`~repro.ingest.IngestPlane` and pins the serving-side
write-path contract of docs/ingest.md:

* ``POST /v1/ingest`` answers 202 (queued), 200 (``sync`` sealed), 429
  (queue pressure, with ``Retry-After``), 400 (malformed), 404 (no
  plane) -- never a 5xx for load;
* an ingested article is reflected by the next timeline, byte-identical
  to a cold re-index of the grown corpus, and bumps ``index_version``
  on ``/healthz`` and ``/metrics``;
* result-cache invalidation is **day-scoped**: a seal evicts exactly
  the cached windows intersecting its touched dates -- disjoint windows
  stay warm;
* the day-matrix cache survives ingestion for untouched days
  (``prune.day_matrix_hits`` keeps counting);
* shutdown drains the queued backlog into sealed segments;
* the router fans ingest out to the shard owning each article's
  publication date and merged queries keep working afterwards.
"""

import http.client
import json

import pytest

from repro.core.pipeline import Wilson, WilsonConfig
from repro.ingest import IngestConfig, IngestPlane
from repro.obs.metrics import Metrics
from repro.obs.trace import Tracer
from repro.search.engine import SearchEngine
from repro.search.realtime import RealTimeTimelineSystem
from repro.serve import (
    BackgroundServer,
    RouterConfig,
    ServeConfig,
    TimelineRouter,
    TimelineServer,
    canonical_json,
    export_slices,
)
from tests.conftest import d, wait_until
from tests.test_ingest_plane import (
    QUERY,
    WINDOW,
    cold_system,
    make_articles,
)

BASE = 3  # articles indexed before the server boots; the rest stream in


def wire_article(article):
    return {
        "article_id": article.article_id,
        "publication_date": article.publication_date.isoformat(),
        "title": article.title,
        "text": article.text,
    }


def _request(port, method, path, payload=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        conn.request(
            method, path, body=body,
            headers={"Content-Type": "application/json"} if body else {},
        )
        response = conn.getresponse()
        raw = response.read()
        return response.status, dict(response.getheaders()), raw
    finally:
        conn.close()


def _timeline_payload(start=None, end=None, **overrides):
    payload = {
        "keywords": list(QUERY),
        "start": (start or WINDOW[0]).isoformat(),
        "end": (end or WINDOW[1]).isoformat(),
        "num_dates": 5,
        "num_sentences": 1,
    }
    payload.update(overrides)
    return payload


@pytest.fixture()
def live_server(tmp_path):
    """A server over the first BASE articles with a started plane."""
    system = RealTimeTimelineSystem()
    system.ingest(make_articles()[:BASE])
    metrics = Metrics()
    plane = IngestPlane(
        system,
        IngestConfig(batch_age_ms=5.0, segments_dir=tmp_path / "seg"),
        metrics=metrics,
    )
    plane.start()
    server = TimelineServer(
        system,
        ServeConfig(port=0, batch_window_ms=2.0, workers=2),
        metrics=metrics,
        ingest=plane,
    )
    with BackgroundServer(server) as running:
        yield running, system, plane


class TestIngestRoute:
    def test_async_ingest_is_reflected_by_the_next_timeline(
        self, live_server
    ):
        running, system, plane = live_server
        articles = make_articles()
        before = system.index_version

        status, _, raw = _request(
            running.port, "POST", "/v1/ingest",
            {"articles": [wire_article(a) for a in articles[BASE:]]},
        )
        assert status == 202
        envelope = json.loads(raw)
        assert set(envelope) == {
            "schema", "accepted", "queue_depth", "index_version",
        }
        assert envelope["accepted"] == len(articles) - BASE

        wait_until(
            lambda: system.index_version > before
            and plane.queue.depth == 0,
            message="the writer to seal the queued batch",
        )
        # The grown corpus now serves byte-identically to a cold
        # re-index of the same six articles.
        expected = canonical_json(
            cold_system(articles)
            .generate_timeline(
                QUERY, start=WINDOW[0], end=WINDOW[1], num_dates=5
            )
            .timeline.to_dict()
        )
        status, _, raw = _request(
            running.port, "POST", "/v1/timeline", _timeline_payload()
        )
        assert status == 200
        served = json.loads(raw)
        assert canonical_json(served["result"]["timeline"]) == expected

    def test_sync_ingest_reads_its_own_write(self, live_server):
        running, system, _ = live_server
        article = make_articles()[4]  # touches 2021-03-12/13
        before = system.index_version
        status, _, raw = _request(
            running.port, "POST", "/v1/ingest",
            {"articles": [wire_article(article)], "sync": True},
        )
        assert status == 200
        envelope = json.loads(raw)
        assert set(envelope) == {
            "schema", "accepted", "documents", "queue_depth",
            "index_version",
        }
        assert envelope["documents"] > 0
        assert envelope["index_version"] == system.index_version
        assert system.index_version > before

        # No waiting: the sealed write is immediately queryable. A
        # window where only the new article has content must surface it.
        status, _, raw = _request(
            running.port, "POST", "/v1/timeline",
            _timeline_payload(start=d("2021-03-11"), end=d("2021-03-14")),
        )
        assert status == 200
        timeline = json.loads(raw)["result"]["timeline"]
        assert "2021-03-13" in timeline

    def test_resubmitting_a_sync_batch_is_idempotent(self, live_server):
        # The router's 429-retry contract over the wire: the same batch
        # submitted twice indexes once -- the second response succeeds
        # with zero new documents and an unchanged version.
        running, system, _ = live_server
        payload = {
            "articles": [wire_article(make_articles()[4])],
            "sync": True,
        }
        status, _, raw = _request(
            running.port, "POST", "/v1/ingest", payload
        )
        assert status == 200
        assert json.loads(raw)["documents"] > 0
        version = system.index_version

        status, _, raw = _request(
            running.port, "POST", "/v1/ingest", payload
        )
        assert status == 200
        replay = json.loads(raw)
        assert replay["documents"] == 0
        assert replay["index_version"] == version
        assert system.index_version == version

        status, _, raw = _request(running.port, "GET", "/metrics")
        assert "wilson_ingest_articles_deduplicated_total 1" in raw.decode()

    def test_version_bump_is_visible_on_healthz_and_metrics(
        self, live_server
    ):
        running, system, _ = live_server
        status, _, raw = _request(running.port, "GET", "/healthz")
        assert status == 200
        health = json.loads(raw)
        assert health["ingest"]["segments"] == 0
        before = health["index_version"]

        _request(
            running.port, "POST", "/v1/ingest",
            {
                "articles": [wire_article(make_articles()[5])],
                "sync": True,
            },
        )
        status, _, raw = _request(running.port, "GET", "/healthz")
        health = json.loads(raw)
        assert health["index_version"] > before
        assert health["ingest"]["segments"] == 1
        assert health["ingest"]["queue_depth"] == 0

        status, _, raw = _request(running.port, "GET", "/metrics")
        assert status == 200
        text = raw.decode()
        assert "wilson_serve_ingest_requests_total 1" in text
        assert "wilson_ingest_segments_sealed_total 1" in text
        assert f"wilson_ingest_index_version {system.index_version}" in text

    def test_malformed_payloads_answer_400(self, live_server):
        running, _, _ = live_server
        for payload in (
            {},  # no articles
            {"articles": []},
            {"articles": [{"article_id": ""}]},
            {"articles": [{"article_id": "x"}]},  # no publication_date
            {
                "articles": [
                    {"article_id": "x", "publication_date": "not-a-date"}
                ]
            },
            {
                "articles": [
                    {"article_id": "x", "publication_date": "2021-03-01"}
                ],
                "sync": "yes",
            },
        ):
            status, _, _ = _request(
                running.port, "POST", "/v1/ingest", payload
            )
            assert status == 400, payload

    def test_without_a_plane_ingest_is_404(self):
        system = RealTimeTimelineSystem()
        system.ingest(make_articles()[:BASE])
        server = TimelineServer(
            system, ServeConfig(port=0, batch_window_ms=2.0)
        )
        with BackgroundServer(server) as running:
            status, _, _ = _request(
                running.port, "POST", "/v1/ingest",
                {"articles": [wire_article(make_articles()[3])]},
            )
            assert status == 404

    def test_queue_pressure_sheds_with_429_never_5xx(self):
        system = RealTimeTimelineSystem()
        system.ingest(make_articles()[:BASE])
        # One-article queue and no writer: the first async POST fills
        # it, the second must shed.
        plane = IngestPlane(system, IngestConfig(queue_articles=1))
        server = TimelineServer(
            system,
            ServeConfig(port=0, batch_window_ms=2.0),
            ingest=plane,
        )
        with BackgroundServer(server) as running:
            articles = make_articles()
            status, _, _ = _request(
                running.port, "POST", "/v1/ingest",
                {"articles": [wire_article(articles[3])]},
            )
            assert status == 202
            status, headers, raw = _request(
                running.port, "POST", "/v1/ingest",
                {"articles": [wire_article(articles[4])]},
            )
            assert status == 429
            assert "Retry-After" in headers
            assert json.loads(raw)["error"] == "overloaded"
            assert (
                server.metrics.counter("serve.ingest_rejected").value == 1
            )

    def test_shutdown_drains_the_queued_backlog(self):
        system = RealTimeTimelineSystem()
        system.ingest(make_articles()[:BASE])
        plane = IngestPlane(system, IngestConfig(batch_age_ms=5.0))
        server = TimelineServer(
            system,
            ServeConfig(port=0, batch_window_ms=2.0),
            ingest=plane,
        )
        before = system.index_version
        with BackgroundServer(server) as running:
            status, _, _ = _request(
                running.port, "POST", "/v1/ingest",
                {
                    "articles": [
                        wire_article(a) for a in make_articles()[BASE:]
                    ]
                },
            )
            assert status == 202
        # The writer never ran (plane.start was never called): the exit
        # drain must seal the backlog, not drop it.
        assert system.index_version > before
        assert plane.queue.depth == 0
        assert plane.queue.closed


class TestPreciseInvalidation:
    def test_seal_evicts_only_intersecting_windows(self, live_server):
        running, _, plane = live_server
        # Prime two cache entries: a window disjoint from the incoming
        # article's days and one covering them.
        disjoint = _timeline_payload(end=d("2021-03-08"))
        covering = _timeline_payload()
        for payload in (disjoint, covering):
            status, _, raw = _request(
                running.port, "POST", "/v1/timeline", payload
            )
            assert status == 200
            assert json.loads(raw)["cache"] == "miss"
            status, _, raw = _request(
                running.port, "POST", "/v1/timeline", payload
            )
            assert json.loads(raw)["cache"] == "hit"

        # a5 touches 2021-03-12/13: outside the disjoint window.
        status, _, _ = _request(
            running.port, "POST", "/v1/ingest",
            {"articles": [wire_article(make_articles()[4])], "sync": True},
        )
        assert status == 200

        status, _, raw = _request(
            running.port, "POST", "/v1/timeline", disjoint
        )
        assert json.loads(raw)["cache"] == "hit"  # untouched: stays warm
        status, _, raw = _request(
            running.port, "POST", "/v1/timeline", covering
        )
        stale = json.loads(raw)
        assert stale["cache"] == "miss"  # intersecting: evicted
        dropped = running.metrics.counter(
            "serve.ingest_invalidated_results"
        ).value
        assert dropped >= 1

    def test_day_matrix_survives_ingest_for_untouched_days(self):
        articles = make_articles()
        system = RealTimeTimelineSystem()
        system.ingest(articles[:BASE])
        plane = IngestPlane(system)
        assert system.wilson.day_matrix_cache is not None

        # Warm the per-day matrices of the base window.
        system.generate_timeline(
            QUERY, start=WINDOW[0], end=WINDOW[1], num_dates=5
        )
        warmed = len(system.wilson.day_matrix_cache)
        assert warmed > 0

        # Stream an article touching only 2021-03-12/13, then re-query:
        # the base days' matrices must replay from cache.
        plane.ingest([articles[4]])
        tracer = Tracer()
        system.generate_timeline(
            QUERY,
            start=WINDOW[0],
            end=WINDOW[1],
            num_dates=5,
            tracer=tracer,
        )
        hits = tracer.counters.get("prune.day_matrix_hits", 0)
        assert hits >= warmed


class TestRouterIngestFanOut:
    @pytest.fixture()
    def fleet(self, tmp_path):
        """Two date-range shard workers with planes, plus their router."""
        base = RealTimeTimelineSystem()
        base.ingest(make_articles()[:4])
        topology = export_slices(
            base.engine.index, tmp_path / "topology", 2
        )
        contexts, workers, groups = [], [], []
        for shard in topology.shards:
            wilson = Wilson(WilsonConfig())
            engine = SearchEngine.load_snapshot(
                shard.path, cache=wilson.cache
            )
            system = RealTimeTimelineSystem(
                engine=engine, wilson=wilson, cache=wilson.cache
            )
            plane = IngestPlane(system)
            server = TimelineServer(
                system,
                ServeConfig(port=0, batch_window_ms=2.0),
                ingest=plane,
            )
            context = BackgroundServer(server)
            running = context.__enter__()
            contexts.append(context)
            workers.append((system, plane))
            groups.append([f"http://127.0.0.1:{running.port}"])
        router_context = BackgroundServer(
            TimelineRouter(
                topology,
                groups,
                config=RouterConfig(port=0, shard_timeout_seconds=30.0),
                metrics=Metrics(),
            )
        )
        router = router_context.__enter__()
        contexts.append(router_context)
        try:
            yield topology, workers, router
        finally:
            for context in reversed(contexts):
                context.__exit__(None, None, None)

    def test_articles_route_to_their_owning_shard(self, fleet):
        topology, workers, router = fleet
        articles = make_articles()
        versions = [system.index_version for system, _ in workers]

        # a5/a6 publish after every slice's range: both extend the
        # newest shard, the older shard stays untouched.
        status, _, raw = _request(
            router.port, "POST", "/v1/ingest",
            {
                "articles": [
                    wire_article(articles[4]), wire_article(articles[5]),
                ],
                "sync": True,
            },
        )
        assert status == 202
        envelope = json.loads(raw)
        assert set(envelope) == {
            "schema", "accepted", "rejected", "failed", "routed",
        }
        assert envelope["accepted"] == 2
        assert envelope["rejected"] == 0 and envelope["failed"] == 0
        newest = max(
            (shard for shard in topology.shards if shard.end is not None),
            key=lambda shard: shard.end,
        ).shard_id
        assert envelope["routed"] == {str(newest): 2}
        for shard_id, (system, _) in enumerate(workers):
            if shard_id == newest:
                assert system.index_version > versions[shard_id]
            else:
                assert system.index_version == versions[shard_id]

        # Merged queries keep working over post-manifest documents (the
        # synthetic merged doc ids must not crash the router).
        status, _, raw = _request(
            router.port, "POST", "/v1/timeline",
            _timeline_payload(start=d("2021-03-11"), end=d("2021-03-20")),
        )
        assert status == 200
        merged = json.loads(raw)
        assert "2021-03-13" in merged["result"]["timeline"]

    def test_router_answers_503_only_when_no_shard_accepts(
        self, tmp_path
    ):
        base = RealTimeTimelineSystem()
        base.ingest(make_articles()[:4])
        topology = export_slices(
            base.engine.index, tmp_path / "topology", 2
        )
        # Workers without planes: every forward hits a 404, so the
        # router must report total failure as a 503, not crash.
        contexts, groups = [], []
        for shard in topology.shards:
            wilson = Wilson(WilsonConfig())
            engine = SearchEngine.load_snapshot(
                shard.path, cache=wilson.cache
            )
            server = TimelineServer(
                RealTimeTimelineSystem(
                    engine=engine, wilson=wilson, cache=wilson.cache
                ),
                ServeConfig(port=0, batch_window_ms=2.0),
            )
            context = BackgroundServer(server)
            running = context.__enter__()
            contexts.append(context)
            groups.append([f"http://127.0.0.1:{running.port}"])
        router_context = BackgroundServer(
            TimelineRouter(
                topology,
                groups,
                config=RouterConfig(port=0, shard_timeout_seconds=30.0),
                metrics=Metrics(),
            )
        )
        router = router_context.__enter__()
        contexts.append(router_context)
        try:
            status, _, raw = _request(
                router.port, "POST", "/v1/ingest",
                {"articles": [wire_article(make_articles()[4])]},
            )
            assert status == 503
            envelope = json.loads(raw)
            assert envelope["accepted"] == 0
            assert envelope["failed"] == 1
        finally:
            for context in reversed(contexts):
                context.__exit__(None, None, None)
