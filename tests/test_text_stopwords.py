"""Tests for the stopword inventory."""

from repro.text.stopwords import STOPWORDS, is_stopword, remove_stopwords


class TestStopwords:
    def test_common_function_words_present(self):
        for word in ("the", "and", "of", "was", "with", "said"):
            assert word in STOPWORDS

    def test_content_words_absent(self):
        for word in ("ceasefire", "vaccine", "earthquake", "tariff"):
            assert word not in STOPWORDS

    def test_is_stopword_case_insensitive(self):
        assert is_stopword("The")
        assert is_stopword("AND")

    def test_remove_stopwords_preserves_order(self):
        tokens = ["the", "rebels", "and", "militia", "advanced"]
        assert remove_stopwords(tokens) == ["rebels", "militia", "advanced"]

    def test_remove_stopwords_empty(self):
        assert remove_stopwords([]) == []

    def test_frozen(self):
        assert isinstance(STOPWORDS, frozenset)
