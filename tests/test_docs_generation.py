"""Tests that the generated API reference stays in sync and complete."""

import pathlib
import subprocess
import sys

DOCS = pathlib.Path(__file__).parent.parent / "docs"


class TestApiReference:
    def test_generator_runs(self, tmp_path):
        result = subprocess.run(
            [sys.executable, str(DOCS / "generate_api.py")],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr

    def test_reference_covers_core_modules(self):
        text = (DOCS / "api.md").read_text(encoding="utf-8")
        for module in (
            "repro.core.pipeline",
            "repro.core.date_selection",
            "repro.evaluation.rouge",
            "repro.search.engine",
            "repro.search.snapshot",
            "repro.serve.app",
            "repro.serve.router",
            "repro.serve.topology",
            "repro.serve.cache",
            "repro.serve.admission",
            "repro.tlsdata.synthetic",
            "repro.obs.trace",
            "repro.obs.metrics",
            "repro.obs.profile",
        ):
            assert f"## `{module}`" in text, module

    def test_reference_covers_packages(self):
        text = (DOCS / "api.md").read_text(encoding="utf-8")
        for package in (
            "repro",
            "repro.search",
            "repro.experiments",
            "repro.obs",
            "repro.serve",
        ):
            assert f"## `{package}` (package)" in text, package

    def test_reference_mentions_key_symbols(self):
        text = (DOCS / "api.md").read_text(encoding="utf-8")
        for symbol in (
            "class `Wilson`",
            "class `DateSelector`",
            "class `SearchEngine`",
            "rouge_n(",
            "class `StorylineSeparator`",
            "class `TimelineRouter`",
            "class `Topology`",
            "merge_shard_candidates(",
            "snapshot_info(",
        ):
            assert symbol in text, symbol
