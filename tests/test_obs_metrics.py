"""Tests for the metrics registry and @profiled hooks (repro.obs)."""

import pytest

from repro.obs.metrics import Histogram, Metrics, percentile
from repro.obs.profile import (
    active_profiling,
    disable_profiling,
    enable_profiling,
    profiled,
    profiling,
)


class TestInstruments:
    def test_counter_monotonic(self):
        metrics = Metrics()
        counter = metrics.counter("served")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_counter_get_or_create(self):
        metrics = Metrics()
        assert metrics.counter("x") is metrics.counter("x")
        assert metrics.histogram("x") is metrics.histogram("x")

    def test_gauge_moves_both_ways(self):
        gauge = Metrics().gauge("depth")
        gauge.set(10)
        gauge.add(-4)
        assert gauge.value == 6.0

    def test_histogram_summary(self):
        histogram = Histogram("latency")
        for value in range(1, 101):
            histogram.observe(float(value))
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p90"] == pytest.approx(90.1)
        assert summary["p99"] == pytest.approx(99.01)

    def test_empty_histogram(self):
        assert Histogram("empty").summary() == {"count": 0}

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        assert percentile([7.0], 99) == 7.0

    def test_snapshot_and_render(self):
        metrics = Metrics()
        metrics.counter("a").inc(2)
        metrics.gauge("b").set(3)
        metrics.histogram("c").observe(0.5)
        snap = metrics.snapshot()
        assert snap["counters"] == {"a": 2.0}
        assert snap["gauges"] == {"b": 3.0}
        assert snap["histograms"]["c"]["count"] == 1
        text = metrics.render()
        assert "counter   a = 2" in text
        assert "histogram c" in text


class TestProfiled:
    def test_noop_without_registry(self):
        calls = []

        @profiled
        def work(x):
            calls.append(x)
            return x * 2

        disable_profiling()
        assert work(2) == 4
        assert calls == [2]
        assert active_profiling() is None

    def test_records_into_scoped_registry(self):
        @profiled(name="unit.work")
        def work():
            return 1

        with profiling() as metrics:
            work()
            work()
        summary = metrics.histogram("profile.unit.work.seconds").summary()
        assert summary["count"] == 2
        assert summary["min"] >= 0.0
        # Registry uninstalled on exit.
        assert active_profiling() is None

    def test_scoped_profiling_restores_previous(self):
        outer = Metrics()
        enable_profiling(outer)
        try:
            with profiling(Metrics()):
                pass
            assert active_profiling() is outer
        finally:
            disable_profiling()

    def test_bound_registry_wins(self):
        bound = Metrics()

        @profiled(name="bound.work", metrics=bound)
        def work():
            return 1

        work()
        assert bound.histogram("profile.bound.work.seconds").count == 1

    def test_pagerank_matrix_is_a_profiling_point(self):
        import numpy as np

        from repro.graph.pagerank import pagerank_matrix

        with profiling() as metrics:
            pagerank_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        name = "profile.pagerank_matrix.seconds"
        assert metrics.histogram(name).count == 1
