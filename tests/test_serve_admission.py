"""Admission control and micro-batching: the serve-layer backpressure."""

import asyncio
import threading
import time

import pytest

from repro.serve.admission import AdmissionController
from repro.serve.batching import MicroBatcher


class TestAdmissionController:
    def test_admits_up_to_limit_then_sheds(self):
        admission = AdmissionController(max_inflight=2)
        assert admission.try_admit()
        assert admission.try_admit()
        assert not admission.try_admit()
        assert admission.stats()["shed"] == 1

    def test_release_reopens_capacity(self):
        admission = AdmissionController(max_inflight=1)
        assert admission.try_admit()
        assert not admission.try_admit()
        admission.release()
        assert admission.try_admit()

    def test_release_without_admit_raises(self):
        admission = AdmissionController(max_inflight=1)
        with pytest.raises(RuntimeError):
            admission.release()

    def test_drain_refuses_new_work(self):
        admission = AdmissionController(max_inflight=4)
        assert admission.try_admit()
        admission.begin_drain()
        assert admission.draining
        assert not admission.try_admit()
        # The in-flight request is unaffected.
        assert admission.inflight == 1

    def test_stats_shape(self):
        admission = AdmissionController(max_inflight=1)
        admission.try_admit()
        admission.try_admit()
        stats = admission.stats()
        assert stats == {
            "inflight": 1, "admitted": 1, "shed": 1, "draining": 0,
        }

    def test_wait_idle(self):
        admission = AdmissionController(max_inflight=2)
        admission.try_admit()

        async def scenario():
            # Release from a worker thread while the waiter polls.
            timer = threading.Timer(0.05, admission.release)
            timer.start()
            try:
                return await admission.wait_idle(timeout_seconds=5.0)
            finally:
                timer.cancel()

        assert asyncio.run(scenario())

    def test_wait_idle_times_out(self):
        admission = AdmissionController(max_inflight=2)
        admission.try_admit()

        async def scenario():
            return await admission.wait_idle(timeout_seconds=0.05)

        assert not asyncio.run(scenario())

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(retry_after_seconds=0)

    def test_thread_safety_never_over_admits(self):
        admission = AdmissionController(max_inflight=5)
        peak = []

        def worker():
            for _ in range(200):
                if admission.try_admit():
                    peak.append(admission.inflight)
                    admission.release()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert max(peak) <= 5


class TestMicroBatcher:
    def test_concurrent_submissions_share_a_batch(self):
        batches = []

        def dispatch(items):
            batches.append(list(items))
            return [item * 10 for item in items]

        async def scenario():
            batcher = MicroBatcher(dispatch, window_seconds=0.05)
            results = await asyncio.gather(
                batcher.submit(1), batcher.submit(2), batcher.submit(3)
            )
            return results

        assert asyncio.run(scenario()) == [10, 20, 30]
        assert batches == [[1, 2, 3]]

    def test_max_batch_size_flushes_early(self):
        batches = []

        def dispatch(items):
            batches.append(list(items))
            return list(items)

        async def scenario():
            # A long window that would otherwise stall; the size cap
            # must flush without waiting for it.
            batcher = MicroBatcher(
                dispatch, window_seconds=30.0, max_batch_size=2
            )
            started = time.perf_counter()
            await asyncio.gather(batcher.submit("a"), batcher.submit("b"))
            return time.perf_counter() - started

        elapsed = asyncio.run(scenario())
        assert elapsed < 5.0
        assert batches == [["a", "b"]]

    def test_sequential_submissions_get_separate_batches(self):
        batches = []

        def dispatch(items):
            batches.append(list(items))
            return list(items)

        async def scenario():
            batcher = MicroBatcher(dispatch, window_seconds=0.001)
            await batcher.submit(1)
            await batcher.submit(2)

        asyncio.run(scenario())
        assert batches == [[1], [2]]
        assert len(batches) == 2

    def test_dispatch_exception_fails_all_waiters(self):
        def dispatch(items):
            raise RuntimeError("sweep machinery broke")

        async def scenario():
            batcher = MicroBatcher(dispatch, window_seconds=0.01)
            results = await asyncio.gather(
                batcher.submit(1), batcher.submit(2),
                return_exceptions=True,
            )
            return results

        results = asyncio.run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_result_count_mismatch_is_an_error(self):
        def dispatch(items):
            return items[:-1]

        async def scenario():
            batcher = MicroBatcher(dispatch, window_seconds=0.01)
            with pytest.raises(RuntimeError, match="results"):
                await batcher.submit(1)

        asyncio.run(scenario())

    def test_drain_flushes_pending(self):
        dispatched = []

        def dispatch(items):
            dispatched.extend(items)
            return list(items)

        async def scenario():
            batcher = MicroBatcher(dispatch, window_seconds=60.0)
            submission = asyncio.ensure_future(batcher.submit("x"))
            await asyncio.sleep(0)  # let submit() enqueue
            await batcher.drain()
            return await submission

        assert asyncio.run(scenario()) == "x"
        assert dispatched == ["x"]

    def test_on_batch_observer(self):
        sizes = []

        async def scenario():
            batcher = MicroBatcher(
                lambda items: list(items),
                window_seconds=0.01,
                on_batch=sizes.append,
            )
            await asyncio.gather(batcher.submit(1), batcher.submit(2))
            assert batcher.batches_dispatched == 1

        asyncio.run(scenario())
        assert sizes == [2]

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda items: items, window_seconds=-1)
        with pytest.raises(ValueError):
            MicroBatcher(lambda items: items, max_batch_size=0)
