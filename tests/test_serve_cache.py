"""The serve-layer result cache: LRU+TTL semantics and versioned keys.

Unit tests pin the deterministic behaviours (capacity, TTL with an
injected clock, key normalisation, version invalidation); the hypothesis
properties then hammer the three cache invariants under arbitrary
interleavings of put/get/clock-advance:

1. capacity is never exceeded,
2. a TTL-expired entry is never returned,
3. get-after-put coherence -- a live, non-evicted entry returns exactly
   the last value put under its key.
"""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.cache import ResultCache, make_cache_key, normalize_keywords


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestResultCacheUnit:
    def test_get_after_put(self):
        cache = ResultCache(capacity=4, ttl_seconds=10.0)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert len(cache) == 1

    def test_miss_returns_none(self):
        cache = ResultCache(capacity=4, ttl_seconds=10.0)
        assert cache.get("missing") is None

    def test_overwrite_replaces_value(self):
        cache = ResultCache(capacity=4, ttl_seconds=10.0)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert len(cache) == 1

    def test_capacity_evicts_least_recently_used(self):
        cache = ResultCache(capacity=2, ttl_seconds=10.0)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh 'a'; 'b' becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_ttl_expiry(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl_seconds=5.0, clock=clock)
        cache.put("a", 1)
        clock.advance(4.999)
        assert cache.get("a") == 1
        clock.advance(0.001)  # exactly at TTL -> expired
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_put_refreshes_insertion_time(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl_seconds=5.0, clock=clock)
        cache.put("a", 1)
        clock.advance(4.0)
        cache.put("a", 2)
        clock.advance(4.0)
        assert cache.get("a") == 2

    def test_expired_entries_pruned_before_eviction(self):
        # Overflow prefers dropping dead (expired) entries over evicting
        # live ones.
        clock = FakeClock()
        cache = ResultCache(capacity=2, ttl_seconds=5.0, clock=clock)
        cache.put("old", 1)
        clock.advance(6.0)
        cache.put("a", 2)
        cache.put("b", 3)
        assert cache.get("a") == 2
        assert cache.get("b") == 3

    def test_contains_respects_ttl(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl_seconds=5.0, clock=clock)
        cache.put("a", 1)
        assert "a" in cache
        clock.advance(6.0)
        assert "a" not in cache

    def test_stats(self):
        cache = ResultCache(capacity=2, ttl_seconds=10.0)
        cache.get("a")
        cache.put("a", 1)
        cache.get("a")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)
        with pytest.raises(ValueError):
            ResultCache(ttl_seconds=0)

    def test_generation_guarded_put_discards_after_invalidation(self):
        # The ingest-seal TOCTOU guard: a result computed before an
        # invalidation sweep must not land after it.
        cache = ResultCache(capacity=4, ttl_seconds=10.0)
        generation = cache.generation
        cache.invalidate_where(lambda key: False)  # sweep, even if empty
        assert not cache.put("a", 1, generation=generation)
        assert cache.get("a") is None
        assert cache.put("a", 1, generation=cache.generation)
        assert cache.get("a") == 1

    def test_clear_bumps_the_generation(self):
        cache = ResultCache(capacity=4, ttl_seconds=10.0)
        generation = cache.generation
        cache.clear()
        assert not cache.put("a", 1, generation=generation)

    def test_unconditional_put_ignores_generation(self):
        cache = ResultCache(capacity=4, ttl_seconds=10.0)
        cache.invalidate_where(lambda key: True)
        assert cache.put("a", 1)
        assert cache.get("a") == 1


class TestKeyNormalization:
    def test_whitespace_and_case_folded(self):
        assert normalize_keywords(["  Flood   Relief ", "DAM"]) == (
            "flood relief",
            "dam",
        )

    def test_empty_keywords_dropped(self):
        assert normalize_keywords(["", "  ", "quake"]) == ("quake",)

    def test_order_preserved(self):
        # Phrase queries are order-sensitive; normalisation must not
        # conflate "dam failure" with "failure dam".
        assert normalize_keywords(["b", "a"]) != normalize_keywords(
            ["a", "b"]
        )

    def test_equivalent_queries_share_a_key(self):
        start = datetime.date(2021, 1, 1)
        end = datetime.date(2021, 2, 1)
        key1 = make_cache_key(["Flood", " relief "], start, end, 10, 1, 7)
        key2 = make_cache_key(["flood", "relief"], start, end, 10, 1, 7)
        assert key1 == key2

    def test_index_version_changes_key(self):
        start = datetime.date(2021, 1, 1)
        end = datetime.date(2021, 2, 1)
        key1 = make_cache_key(["flood"], start, end, 10, 1, 7)
        key2 = make_cache_key(["flood"], start, end, 10, 1, 8)
        assert key1 != key2

    def test_every_parameter_participates(self):
        start = datetime.date(2021, 1, 1)
        end = datetime.date(2021, 2, 1)
        base = make_cache_key(["flood"], start, end, 10, 1, 7)
        assert make_cache_key(["storm"], start, end, 10, 1, 7) != base
        assert make_cache_key(
            ["flood"], start + datetime.timedelta(days=1), end, 10, 1, 7
        ) != base
        assert make_cache_key(
            ["flood"], start, end + datetime.timedelta(days=1), 10, 1, 7
        ) != base
        assert make_cache_key(["flood"], start, end, 9, 1, 7) != base
        assert make_cache_key(["flood"], start, end, 10, 2, 7) != base
        assert make_cache_key(["flood"], None, end, 10, 1, 7) != base


# -- hypothesis properties -----------------------------------------------------

#: One cache operation: put(key, value), get(key), or clock advance.
_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("put"),
            st.integers(min_value=0, max_value=9),
            st.integers(),
        ),
        st.tuples(
            st.just("get"),
            st.integers(min_value=0, max_value=9),
            st.just(0),
        ),
        st.tuples(
            st.just("tick"),
            st.just(0),
            st.just(0),
        ),
    ),
    max_size=60,
)


@settings(max_examples=120, deadline=None)
@given(
    ops=_ops,
    capacity=st.integers(min_value=1, max_value=6),
    ttl=st.floats(min_value=0.5, max_value=20.0),
    tick=st.floats(min_value=0.1, max_value=10.0),
)
def test_cache_invariants_under_interleaved_ops(ops, capacity, ttl, tick):
    clock = FakeClock()
    cache = ResultCache(capacity=capacity, ttl_seconds=ttl, clock=clock)
    model = {}  # key -> (inserted_at, value): the reference TTL map

    for op, key, value in ops:
        if op == "put":
            cache.put(key, value)
            model[key] = (clock.now, value)
        elif op == "get":
            got = cache.get(key)
            entry = model.get(key)
            live = (
                entry is not None
                and clock.now - entry[0] < ttl
            )
            if got is not None:
                # Never a stale or fabricated value: anything returned
                # must be the latest live put under this key.
                assert live, "returned a TTL-expired entry"
                assert got == entry[1]
            # (a None for a live key is legal -- LRU eviction.)
        else:
            clock.advance(tick)
        assert len(cache) <= capacity, "capacity exceeded"


@settings(max_examples=60, deadline=None)
@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=20), min_size=1, max_size=40
    ),
    capacity=st.integers(min_value=1, max_value=5),
)
def test_immediate_get_after_put_always_coherent(keys, capacity):
    """With no expiry in play, get right after put must return the value."""
    cache = ResultCache(capacity=capacity, ttl_seconds=100.0)
    for i, key in enumerate(keys):
        cache.put(key, i)
        assert cache.get(key) == i
        assert len(cache) <= capacity
