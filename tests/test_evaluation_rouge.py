"""Tests for ROUGE-1/2/S* against hand-computed values."""

import pytest

from repro.evaluation.rouge import (
    RougeScore,
    _lcs_length,
    ngram_counts,
    rouge_l,
    rouge_n,
    rouge_s_star,
    rouge_scores,
    skip_bigram_counts,
)


class TestRougeScore:
    def test_from_counts(self):
        score = RougeScore.from_counts(2, 4, 8)
        assert score.precision == pytest.approx(0.5)
        assert score.recall == pytest.approx(0.25)
        assert score.f1 == pytest.approx(2 * 0.5 * 0.25 / 0.75)

    def test_zero_denominators(self):
        score = RougeScore.from_counts(0, 0, 0)
        assert score.precision == 0.0
        assert score.recall == 0.0
        assert score.f1 == 0.0


class TestNgramCounts:
    def test_unigrams(self):
        counts = ngram_counts(["a", "b", "a"], 1)
        assert counts[("a",)] == 2
        assert counts[("b",)] == 1

    def test_bigrams(self):
        counts = ngram_counts(["a", "b", "c"], 2)
        assert counts[("a", "b")] == 1
        assert counts[("b", "c")] == 1
        assert sum(counts.values()) == 2

    def test_n_longer_than_sequence(self):
        assert ngram_counts(["a"], 2) == {}

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngram_counts(["a"], 0)


class TestSkipBigrams:
    def test_all_pairs(self):
        counts = skip_bigram_counts(["a", "b", "c"])
        assert counts[("a", "b")] == 1
        assert counts[("a", "c")] == 1
        assert counts[("b", "c")] == 1
        assert sum(counts.values()) == 3

    def test_pair_count_quadratic(self):
        counts = skip_bigram_counts(list("abcd"))
        assert sum(counts.values()) == 6  # C(4, 2)


class TestRougeN:
    def test_identical_texts_perfect(self):
        text = "rebels seized the stronghold"
        score = rouge_n(text, text, 1)
        assert score.f1 == pytest.approx(1.0)

    def test_disjoint_texts_zero(self):
        score = rouge_n(
            "rebels seized stronghold", "vaccine reached clinics", 1
        )
        assert score.f1 == 0.0

    def test_hand_computed_unigram(self):
        # Without stemming/stopwords for exact control.
        score = rouge_n(
            "a b c", "a b d", 1, stem=False, drop_stopwords=False
        )
        # overlap 2, sys total 3, ref total 3 -> P=R=F1=2/3
        assert score.f1 == pytest.approx(2 / 3)

    def test_hand_computed_bigram(self):
        score = rouge_n(
            "a b c d", "a b x d", 2, stem=False, drop_stopwords=False
        )
        # sys bigrams {ab, bc, cd}, ref {ab, bx, xd}: overlap 1 -> 1/3
        assert score.f1 == pytest.approx(1 / 3)

    def test_clipped_counts(self):
        score = rouge_n(
            "a a a", "a b c", 1, stem=False, drop_stopwords=False
        )
        # overlap clipped to min(3, 1) = 1; P = 1/3, R = 1/3.
        assert score.precision == pytest.approx(1 / 3)
        assert score.recall == pytest.approx(1 / 3)

    def test_accepts_sentence_lists(self):
        score = rouge_n(["a b", "c"], "a b c", 1,
                        stem=False, drop_stopwords=False)
        assert score.f1 == pytest.approx(1.0)

    def test_stemming_matches_variants(self):
        score = rouge_n("rebels attacking", "rebel attacked", 1)
        assert score.f1 == pytest.approx(1.0)

    def test_empty_system(self):
        assert rouge_n("", "a b", 1).f1 == 0.0


class TestRougeSStar:
    def test_hand_computed(self):
        score = rouge_s_star(
            "a b c", "a c b", stem=False, drop_stopwords=False
        )
        # sys pairs {ab, ac, bc}, ref {ac, ab, cb}: overlap {ab, ac} = 2.
        assert score.precision == pytest.approx(2 / 3)
        assert score.recall == pytest.approx(2 / 3)

    def test_identical_perfect(self):
        score = rouge_s_star("a b c d", "a b c d",
                             stem=False, drop_stopwords=False)
        assert score.f1 == pytest.approx(1.0)

    def test_truncation_guard(self):
        long_text = " ".join(f"tok{i}" for i in range(3000))
        score = rouge_s_star(long_text, long_text, stem=False,
                             drop_stopwords=False, max_tokens=100)
        assert score.f1 == pytest.approx(1.0)


class TestRougeScores:
    def test_returns_all_metrics(self):
        scores = rouge_scores("rebels attacked", "rebels attacked")
        assert set(scores) == {
            "rouge-1", "rouge-2", "rouge-s*", "rouge-l",
        }
        assert scores["rouge-1"].f1 == pytest.approx(1.0)
        assert scores["rouge-l"].f1 == pytest.approx(1.0)

    def test_f1_bounded(self):
        scores = rouge_scores(
            "rebels seized the stronghold near the city",
            "the stronghold fell to rebels",
        )
        for score in scores.values():
            assert 0.0 <= score.f1 <= 1.0


class TestRougeL:
    def test_lcs_hand_computed(self):
        assert _lcs_length(list("abcde"), list("ace")) == 3
        assert _lcs_length(list("abc"), list("xyz")) == 0
        assert _lcs_length([], list("abc")) == 0

    def test_identical_perfect(self):
        score = rouge_l("a b c d", "a b c d",
                        stem=False, drop_stopwords=False)
        assert score.f1 == pytest.approx(1.0)

    def test_subsequence_credit(self):
        # system "a c" is a subsequence of reference "a b c".
        score = rouge_l("a c", "a b c", stem=False, drop_stopwords=False)
        assert score.precision == pytest.approx(1.0)
        assert score.recall == pytest.approx(2 / 3)

    def test_order_sensitivity(self):
        in_order = rouge_l("a b c", "a b c",
                           stem=False, drop_stopwords=False)
        reversed_ = rouge_l("c b a", "a b c",
                            stem=False, drop_stopwords=False)
        assert in_order.f1 > reversed_.f1

    def test_bounded(self):
        score = rouge_l("rebels seized stronghold",
                        "the vaccine reached clinics")
        assert 0.0 <= score.f1 <= 1.0
