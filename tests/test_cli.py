"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.tlsdata.loaders import save_corpus
from repro.tlsdata.synthetic import SyntheticConfig, SyntheticCorpusGenerator


@pytest.fixture(scope="module")
def corpus_file(tmp_path_factory):
    config = SyntheticConfig(
        topic="cli-test",
        theme="economy",
        seed=5,
        duration_days=40,
        num_events=8,
        num_major_events=4,
        num_articles=15,
        sentences_per_article=6,
    )
    instance = SyntheticCorpusGenerator(config).generate()
    path = tmp_path_factory.mktemp("cli") / "corpus.jsonl"
    save_corpus(instance.corpus, path)
    return path, instance


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.scale == 0.05
        assert args.sentences == 2

    def test_serve_query_required_args(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-query", "corpus.jsonl"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.corpus is None
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.workers == 4
        assert args.cache_size == 256
        assert args.cache_ttl == 300.0
        assert args.max_inflight == 32
        assert args.batch_window_ms == 10.0

    def test_serve_flag_overrides(self):
        args = build_parser().parse_args(
            [
                "serve", "corpus.jsonl", "--port", "0",
                "--max-inflight", "4", "--batch-window-ms", "2.5",
            ]
        )
        assert args.corpus == "corpus.jsonl"
        assert args.port == 0
        assert args.max_inflight == 4
        assert args.batch_window_ms == 2.5


class TestCommands:
    def test_stats(self, capsys):
        assert main(["stats", "--scale", "0.02"]) == 0
        output = capsys.readouterr().out
        assert "timeline17" in output
        assert "crisis" in output

    def test_timeline(self, corpus_file, capsys):
        path, _ = corpus_file
        assert main(
            ["timeline", str(path), "--dates", "4", "--sentences", "1"]
        ) == 0
        output = capsys.readouterr().out
        assert output.count("  - ") >= 1

    def test_serve_query(self, corpus_file, capsys):
        path, instance = corpus_file
        start, end = instance.corpus.window
        assert main(
            [
                "serve-query", str(path),
                "--keywords", *instance.corpus.query,
                "--start", start.isoformat(),
                "--end", end.isoformat(),
                "--dates", "5",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "candidate sentences" in output

    def test_serve_query_json(self, corpus_file, capsys):
        import json

        path, instance = corpus_file
        start, end = instance.corpus.window
        assert main(
            [
                "serve-query", str(path),
                "--keywords", *instance.corpus.query,
                "--start", start.isoformat(),
                "--end", end.isoformat(),
                "--dates", "5",
                "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        # Same shape the HTTP service returns in its "result" section.
        assert set(payload) == {"timeline", "num_candidates", "telemetry"}
        assert isinstance(payload["timeline"], dict)


class TestEvaluate:
    def test_evaluate_synthetic(self, capsys):
        assert main(
            [
                "evaluate", "--dataset", "timeline17",
                "--scale", "0.03", "--instances", "2",
                "--methods", "wilson", "random",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "WILSON" in output
        assert "Random" in output
        assert "date_f1" in output

    def test_evaluate_saved_dataset(self, tmp_path, capsys):
        from repro.tlsdata.loaders import save_dataset
        from repro.tlsdata.synthetic import (
            SyntheticConfig,
            SyntheticCorpusGenerator,
        )
        from repro.tlsdata.types import Dataset

        config = SyntheticConfig(
            topic="cli-eval",
            theme="disaster",
            seed=4,
            duration_days=40,
            num_events=8,
            num_major_events=4,
            num_articles=15,
            sentences_per_article=6,
        )
        instance = SyntheticCorpusGenerator(config).generate()
        save_dataset(Dataset("cli-eval", [instance]), tmp_path / "ds")
        assert main(
            [
                "evaluate", "--dataset", str(tmp_path / "ds"),
                "--methods", "wilson",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "cli-eval" in output

    def test_unknown_method_rejected(self):
        import pytest as _pytest

        with _pytest.raises(SystemExit):
            build_parser().parse_args(
                ["evaluate", "--methods", "nonexistent"]
            )

    def test_compare_flag(self, capsys):
        assert main(
            [
                "evaluate", "--dataset", "timeline17",
                "--scale", "0.03", "--instances", "2",
                "--methods", "wilson", "random", "--compare",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "WILSON (a) vs Random (b)" in output
        assert "95% CI" in output


class TestDiagnose:
    def test_diagnose_runs(self, capsys):
        assert main(["diagnose", "--scale", "0.03"]) == 0
        output = capsys.readouterr().out
        assert "exact" in output
        assert "missed" in output or "spurious" in output
