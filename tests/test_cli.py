"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.tlsdata.loaders import save_corpus
from repro.tlsdata.synthetic import SyntheticConfig, SyntheticCorpusGenerator


@pytest.fixture(scope="module")
def corpus_file(tmp_path_factory):
    config = SyntheticConfig(
        topic="cli-test",
        theme="economy",
        seed=5,
        duration_days=40,
        num_events=8,
        num_major_events=4,
        num_articles=15,
        sentences_per_article=6,
    )
    instance = SyntheticCorpusGenerator(config).generate()
    path = tmp_path_factory.mktemp("cli") / "corpus.jsonl"
    save_corpus(instance.corpus, path)
    return path, instance


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.scale == 0.05
        assert args.sentences == 2

    def test_serve_query_required_args(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-query", "corpus.jsonl"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.corpus is None
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.workers == 4
        assert args.cache_size == 256
        assert args.cache_ttl == 300.0
        assert args.max_inflight == 32
        assert args.batch_window_ms == 10.0

    def test_serve_flag_overrides(self):
        args = build_parser().parse_args(
            [
                "serve", "corpus.jsonl", "--port", "0",
                "--max-inflight", "4", "--batch-window-ms", "2.5",
            ]
        )
        assert args.corpus == "corpus.jsonl"
        assert args.port == 0
        assert args.max_inflight == 4
        assert args.batch_window_ms == 2.5


class TestCommands:
    def test_stats(self, capsys):
        assert main(["stats", "--scale", "0.02"]) == 0
        output = capsys.readouterr().out
        assert "timeline17" in output
        assert "crisis" in output

    def test_timeline(self, corpus_file, capsys):
        path, _ = corpus_file
        assert main(
            ["timeline", str(path), "--dates", "4", "--sentences", "1"]
        ) == 0
        output = capsys.readouterr().out
        assert output.count("  - ") >= 1

    def test_serve_query(self, corpus_file, capsys):
        path, instance = corpus_file
        start, end = instance.corpus.window
        assert main(
            [
                "serve-query", str(path),
                "--keywords", *instance.corpus.query,
                "--start", start.isoformat(),
                "--end", end.isoformat(),
                "--dates", "5",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "candidate sentences" in output

    def test_serve_query_json(self, corpus_file, capsys):
        import json

        path, instance = corpus_file
        start, end = instance.corpus.window
        assert main(
            [
                "serve-query", str(path),
                "--keywords", *instance.corpus.query,
                "--start", start.isoformat(),
                "--end", end.isoformat(),
                "--dates", "5",
                "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        # Same shape the HTTP service returns in its "result" section.
        assert set(payload) == {"timeline", "num_candidates", "telemetry"}
        assert isinstance(payload["timeline"], dict)


class TestEvaluate:
    def test_evaluate_synthetic(self, capsys):
        assert main(
            [
                "evaluate", "--dataset", "timeline17",
                "--scale", "0.03", "--instances", "2",
                "--methods", "wilson", "random",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "WILSON" in output
        assert "Random" in output
        assert "date_f1" in output

    def test_evaluate_saved_dataset(self, tmp_path, capsys):
        from repro.tlsdata.loaders import save_dataset
        from repro.tlsdata.synthetic import (
            SyntheticConfig,
            SyntheticCorpusGenerator,
        )
        from repro.tlsdata.types import Dataset

        config = SyntheticConfig(
            topic="cli-eval",
            theme="disaster",
            seed=4,
            duration_days=40,
            num_events=8,
            num_major_events=4,
            num_articles=15,
            sentences_per_article=6,
        )
        instance = SyntheticCorpusGenerator(config).generate()
        save_dataset(Dataset("cli-eval", [instance]), tmp_path / "ds")
        assert main(
            [
                "evaluate", "--dataset", str(tmp_path / "ds"),
                "--methods", "wilson",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "cli-eval" in output

    def test_unknown_method_rejected(self):
        import pytest as _pytest

        with _pytest.raises(SystemExit):
            build_parser().parse_args(
                ["evaluate", "--methods", "nonexistent"]
            )

    def test_compare_flag(self, capsys):
        assert main(
            [
                "evaluate", "--dataset", "timeline17",
                "--scale", "0.03", "--instances", "2",
                "--methods", "wilson", "random", "--compare",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "WILSON (a) vs Random (b)" in output
        assert "95% CI" in output


class TestSnapshotCli:
    @pytest.fixture(scope="class")
    def snapshot_file(self, corpus_file, tmp_path_factory):
        path, _ = corpus_file
        out = tmp_path_factory.mktemp("snapshot") / "index.snap"
        assert main(["snapshot", str(path), "--out", str(out)]) == 0
        return out

    def test_snapshot_reports_summary(self, corpus_file, tmp_path, capsys):
        path, _ = corpus_file
        out = tmp_path / "index.snap"
        assert main(["snapshot", str(path), "--out", str(out)]) == 0
        output = capsys.readouterr().out
        assert "documents" in output
        assert str(out) in output
        assert out.exists()

    def test_snapshot_rejects_two_sources(self, corpus_file, tmp_path, capsys):
        path, _ = corpus_file
        code = main(
            [
                "snapshot", str(path),
                "--from-index", str(tmp_path / "x.jsonl"),
                "--out", str(tmp_path / "out.snap"),
            ]
        )
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_snapshot_from_jsonl_index(self, corpus_file, tmp_path, capsys):
        from repro.search.engine import SearchEngine
        from repro.search.snapshot import snapshot_info

        path, instance = corpus_file
        engine = SearchEngine()
        engine.add_articles(instance.corpus.articles)
        jsonl = tmp_path / "index.jsonl"
        engine.save(jsonl)
        out = tmp_path / "converted.snap"
        assert main(
            ["snapshot", "--from-index", str(jsonl), "--out", str(out)]
        ) == 0
        info = snapshot_info(out)
        assert info["documents"] == len(engine.index)
        assert info["index_version"] == engine.index_version

    def test_index_info_snapshot(self, snapshot_file, capsys):
        assert main(["index-info", str(snapshot_file)]) == 0
        output = capsys.readouterr().out
        assert "wilson.snapshot/v1" in output
        assert "format_version 1" in output
        assert "documents:" in output
        assert "index_version:" in output
        assert ".." in output  # date span rendered

    def test_index_info_jsonl(self, corpus_file, tmp_path, capsys):
        from repro.search.engine import SearchEngine

        path, instance = corpus_file
        engine = SearchEngine()
        engine.add_articles(instance.corpus.articles)
        jsonl = tmp_path / "index.jsonl"
        engine.save(jsonl)
        assert main(["index-info", str(jsonl)]) == 0
        output = capsys.readouterr().out
        assert "JSONL" in output
        assert f"documents:     {len(engine.index)}" in output
        assert f"index_version: {engine.index_version}" in output

    def test_serve_parser_snapshot_flag(self):
        assert build_parser().parse_args(["serve"]).snapshot is None
        args = build_parser().parse_args(["serve", "--snapshot", "x.snap"])
        assert args.snapshot == "x.snap"


class TestServeBoot:
    """`_build_serve_system` -- the boot path, without binding a socket."""

    def test_snapshot_boot_sets_gauges(self, corpus_file, tmp_path):
        from repro.cli import _build_serve_system
        from repro.obs.metrics import Metrics

        path, _ = corpus_file
        out = tmp_path / "boot.snap"
        assert main(["snapshot", str(path), "--out", str(out)]) == 0
        args = build_parser().parse_args(
            ["serve", "--snapshot", str(out), "--port", "0"]
        )
        metrics = Metrics()
        system, indexed, source = _build_serve_system(args, metrics)
        assert source == f"snapshot {out}"
        assert indexed > 0
        assert metrics.gauge("snapshot.documents").value == indexed
        assert metrics.gauge("snapshot.format_version").value == 1
        assert metrics.gauge("snapshot.load_seconds").value >= 0.0
        assert metrics.gauge("snapshot.vocabulary_terms").value > 0
        assert system.index_version > 0
        # The snapshot pre-seeds the shared analyzer cache.
        assert system.cache is not None
        assert system.cache.stats().misses == 0

    def test_corrupt_snapshot_falls_back(self, tmp_path, capsys):
        from repro.cli import _build_serve_system
        from repro.obs.metrics import Metrics

        bad = tmp_path / "corrupt.snap"
        bad.write_bytes(b"\x00not a snapshot at all\n garbage")
        args = build_parser().parse_args(
            ["serve", "--snapshot", str(bad), "--port", "0",
             "--scale", "0.01"]
        )
        metrics = Metrics()
        system, indexed, source = _build_serve_system(args, metrics)
        # Boot survives: warning + counter, then the re-index path.
        assert metrics.counter("snapshot.corrupt_fallbacks").value == 1
        assert "falling back to re-indexing" in capsys.readouterr().err
        assert source == "synthetic corpus"
        assert indexed > 0
        assert system.index_version > 0


class TestDiagnose:
    def test_diagnose_runs(self, capsys):
        assert main(["diagnose", "--scale", "0.03"]) == 0
        output = capsys.readouterr().out
        assert "exact" in output
        assert "missed" in output or "spurious" in output
