"""Tests for date F1 / coverage metrics."""

import pytest

from repro.evaluation.date_metrics import (
    date_coverage,
    date_f1,
    date_precision_recall,
)
from tests.conftest import d


class TestPrecisionRecall:
    def test_perfect(self):
        dates = [d("2020-01-01"), d("2020-01-05")]
        assert date_precision_recall(dates, dates) == (1.0, 1.0)

    def test_half_overlap(self):
        selected = [d("2020-01-01"), d("2020-01-02")]
        reference = [d("2020-01-01"), d("2020-01-09")]
        precision, recall = date_precision_recall(selected, reference)
        assert precision == pytest.approx(0.5)
        assert recall == pytest.approx(0.5)

    def test_asymmetric_sizes(self):
        selected = [d("2020-01-01")]
        reference = [d("2020-01-01"), d("2020-01-02"), d("2020-01-03")]
        precision, recall = date_precision_recall(selected, reference)
        assert precision == pytest.approx(1.0)
        assert recall == pytest.approx(1 / 3)

    def test_empty_inputs(self):
        assert date_precision_recall([], [d("2020-01-01")]) == (0.0, 0.0)
        assert date_precision_recall([d("2020-01-01")], []) == (0.0, 0.0)

    def test_duplicates_ignored(self):
        selected = [d("2020-01-01"), d("2020-01-01")]
        reference = [d("2020-01-01")]
        assert date_precision_recall(selected, reference) == (1.0, 1.0)


class TestDateF1:
    def test_perfect(self):
        dates = [d("2020-01-01")]
        assert date_f1(dates, dates) == pytest.approx(1.0)

    def test_no_overlap(self):
        assert date_f1([d("2020-01-01")], [d("2020-02-01")]) == 0.0

    def test_harmonic_mean(self):
        selected = [d("2020-01-01"), d("2020-01-02")]
        reference = [d("2020-01-01")]
        # P=0.5, R=1.0 -> F1 = 2/3.
        assert date_f1(selected, reference) == pytest.approx(2 / 3)


class TestDateCoverage:
    def test_exact_match_covered(self):
        assert date_coverage(
            [d("2020-01-01")], [d("2020-01-01")]
        ) == pytest.approx(1.0)

    def test_within_tolerance(self):
        assert date_coverage(
            [d("2020-01-03")], [d("2020-01-01")], tolerance_days=3
        ) == pytest.approx(1.0)

    def test_outside_tolerance(self):
        assert date_coverage(
            [d("2020-01-05")], [d("2020-01-01")], tolerance_days=3
        ) == 0.0

    def test_partial_coverage(self):
        selected = [d("2020-01-02")]
        reference = [d("2020-01-01"), d("2020-02-01")]
        assert date_coverage(selected, reference) == pytest.approx(0.5)

    def test_zero_tolerance_is_exact(self):
        assert date_coverage(
            [d("2020-01-02")], [d("2020-01-01")], tolerance_days=0
        ) == 0.0

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            date_coverage([], [d("2020-01-01")], tolerance_days=-1)

    def test_empty_reference(self):
        assert date_coverage([d("2020-01-01")], []) == 0.0
