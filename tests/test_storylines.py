"""Tests for storyline separation and the k-means substrate."""

import numpy as np
import pytest

from repro.graph.kmeans import KMeans
from repro.tlsdata.storylines import StorylineSeparator
from repro.tlsdata.synthetic import SyntheticConfig, SyntheticCorpusGenerator


class TestKMeans:
    def _blobs(self, seed=0, per=10, k=3):
        rng = np.random.default_rng(seed)
        points = []
        for i in range(k):
            center = np.array([8.0 * i, -8.0 * i])
            points.append(center + 0.4 * rng.standard_normal((per, 2)))
        return np.vstack(points)

    def test_recovers_blobs(self):
        points = self._blobs()
        result = KMeans(num_clusters=3, seed=1).fit(points)
        assert len(set(result.labels.tolist())) == 3
        for start in (0, 10, 20):
            assert len(set(result.labels[start : start + 10])) == 1

    def test_deterministic(self):
        points = self._blobs(seed=3)
        a = KMeans(num_clusters=3, seed=5).fit(points)
        b = KMeans(num_clusters=3, seed=5).fit(points)
        assert np.array_equal(a.labels, b.labels)

    def test_k_capped_at_points(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        result = KMeans(num_clusters=5).fit(points)
        assert result.centers.shape[0] == 2

    def test_empty_input(self):
        result = KMeans(num_clusters=2).fit(np.zeros((0, 3)))
        assert result.labels.shape == (0,)

    def test_validation(self):
        with pytest.raises(ValueError):
            KMeans(num_clusters=0)
        with pytest.raises(ValueError):
            KMeans(num_clusters=2).fit(np.zeros(5))

    def test_inertia_decreases_with_k(self):
        points = self._blobs(seed=9)
        one = KMeans(num_clusters=1, seed=1).fit(points)
        three = KMeans(num_clusters=3, seed=1).fit(points)
        assert three.inertia < one.inertia


@pytest.fixture(scope="module")
def mixed_articles():
    """Articles of three distinct synthetic topics, shuffled together."""
    import random

    articles = []
    truth = {}
    for seed, theme in ((1, "conflict"), (2, "disease"), (3, "economy")):
        config = SyntheticConfig(
            topic=f"mix-{theme}",
            theme=theme,
            seed=seed,
            duration_days=50,
            num_events=10,
            num_major_events=5,
            num_articles=20,
            sentences_per_article=8,
        )
        instance = SyntheticCorpusGenerator(config).generate()
        for article in instance.corpus.articles:
            truth[article.article_id] = theme
            articles.append(article)
    random.Random("mix").shuffle(articles)
    return articles, truth


class TestStorylineSeparator:
    def test_empty(self):
        assert StorylineSeparator().separate([]) == []

    def test_single_article(self, mixed_articles):
        articles, _ = mixed_articles
        corpora = StorylineSeparator().separate(articles[:1])
        assert len(corpora) == 1
        assert len(corpora[0].articles) == 1

    def test_known_count_recovers_topics(self, mixed_articles):
        articles, truth = mixed_articles
        corpora = StorylineSeparator(num_storylines=3, seed=2).separate(
            articles
        )
        assert len(corpora) == 3
        # Purity: each storyline is dominated by a single true theme.
        for corpus in corpora:
            themes = [truth[a.article_id] for a in corpus.articles]
            dominant = max(set(themes), key=themes.count)
            assert themes.count(dominant) / len(themes) >= 0.8

    def test_all_articles_kept(self, mixed_articles):
        articles, _ = mixed_articles
        corpora = StorylineSeparator(num_storylines=3).separate(articles)
        assert sum(len(c.articles) for c in corpora) == len(articles)

    def test_articles_sorted_by_date(self, mixed_articles):
        articles, _ = mixed_articles
        for corpus in StorylineSeparator(num_storylines=3).separate(
            articles
        ):
            dates = [a.publication_date for a in corpus.articles]
            assert dates == sorted(dates)

    def test_labels_and_queries_populated(self, mixed_articles):
        articles, _ = mixed_articles
        for corpus in StorylineSeparator(num_storylines=3).separate(
            articles
        ):
            assert corpus.topic
            assert len(corpus.query) >= 1

    def test_auto_count_plausible(self, mixed_articles):
        articles, _ = mixed_articles
        corpora = StorylineSeparator(num_storylines=None, seed=2).separate(
            articles
        )
        assert 2 <= len(corpora) <= 12

    def test_separated_corpus_feeds_wilson(self, mixed_articles):
        from repro.core.pipeline import Wilson, WilsonConfig

        articles, _ = mixed_articles
        corpus = StorylineSeparator(num_storylines=3).separate(articles)[0]
        timeline = Wilson(
            WilsonConfig(num_dates=4, sentences_per_date=1)
        ).summarize_corpus(corpus)
        assert 1 <= len(timeline) <= 4
