"""Tests for the structural signals of the synthetic corpus generator.

These validate the *calibrated* properties DESIGN.md documents: unique
event codenames, the recurring topic cast, buzz/importance decoupling,
day-of density decay, background copy, and the publication-only volume
convention for baselines.
"""

import statistics

from repro.baselines.base import date_volumes
from repro.tlsdata.synthetic import (
    SyntheticConfig,
    SyntheticCorpusGenerator,
)
from repro.tlsdata.types import DatedSentence
from tests.conftest import d


def generator(**overrides):
    defaults = dict(
        topic="signal-test",
        theme="conflict",
        seed=11,
        duration_days=80,
        num_events=16,
        num_major_events=8,
        num_articles=60,
        sentences_per_article=10,
    )
    defaults.update(overrides)
    return SyntheticCorpusGenerator(SyntheticConfig(**defaults))


class TestEventStructure:
    def test_codenames_unique(self):
        gen = generator()
        codenames = [e.keywords[0] for e in gen.events]
        assert len(set(codenames)) == len(codenames)

    def test_codenames_not_theme_nouns(self):
        from repro.tlsdata import wordbanks

        gen = generator()
        nouns = set(wordbanks.THEME_NOUNS["conflict"])
        for event in gen.events:
            assert event.keywords[0] not in nouns

    def test_recurring_cast(self):
        gen = generator()
        actors = {e.actor for e in gen.events}
        # 16 events share a cast of at most 6 actors.
        assert len(actors) <= 6

    def test_buzz_decoupled_from_importance(self):
        gen = generator(num_events=40, duration_days=200,
                        num_major_events=16)
        # Buzz must correlate with importance but not be identical:
        # at least one pair must be rank-inverted.
        events = sorted(gen.events, key=lambda e: -e.importance)
        buzz_order = sorted(gen.events, key=lambda e: -e.buzz)
        assert [e.index for e in events] != [e.index for e in buzz_order]

    def test_event_keywords_avoid_core_vocabulary(self):
        gen = generator()
        core = set(gen.core_nouns)
        for event in gen.events:
            assert not core & set(event.keywords[1:])


class TestReferenceSummaries:
    def test_reference_mentions_event_keywords(self):
        gen = generator()
        instance = gen.generate()
        by_date = {e.date: e for e in gen.events if e.is_major}
        for date in instance.reference.dates:
            event = by_date[date]
            summary = " ".join(instance.reference.summary(date)).lower()
            hits = sum(
                1 for k in event.keywords if k.lower() in summary
            )
            assert hits >= 2

    def test_reference_avoids_core_boilerplate(self):
        gen = generator()
        instance = gen.generate()
        text = " ".join(instance.reference.all_sentences()).lower()
        core_hits = sum(text.count(noun) for noun in gen.core_nouns)
        # Core nouns may appear incidentally but must not dominate.
        assert core_hits <= len(instance.reference.dates)


class TestCoverageDynamics:
    def test_density_decays_with_lag(self):
        """Day-of articles carry more codename mentions than follow-ups."""
        gen = generator(num_articles=150)
        instance = gen.generate()
        code_by_event = {e.index: e.keywords[0].lower() for e in gen.events}
        event_by_date = {e.date: e for e in gen.events}
        day_of, followup = [], []
        for article in instance.corpus.articles:
            text = " ".join(article.split_sentences()).lower()
            # Attribute the article to the event with most codename hits.
            best = max(
                gen.events,
                key=lambda e: text.count(code_by_event[e.index]),
            )
            density = text.count(code_by_event[best.index])
            lag = (article.publication_date - best.date).days
            if lag == 0:
                day_of.append(density)
            elif lag >= 2:
                followup.append(density)
        if day_of and followup:
            assert statistics.fmean(day_of) > statistics.fmean(followup)

    def test_background_copy_present(self):
        gen = generator(num_articles=80)
        instance = gen.generate()
        text = " ".join(
            s for a in instance.corpus.articles
            for s in a.split_sentences()
        ).lower()
        core_hits = sum(text.count(noun) for noun in gen.core_nouns)
        assert core_hits > 20  # the shared topical core is everywhere

    def test_query_retrieves_event_coverage(self):
        """Keyword filtering must keep a meaningful event-sentence pool."""
        from repro.baselines.submodular import keyword_filter

        instance = generator(num_articles=80).generate()
        pool = instance.corpus.dated_sentences()
        kept = keyword_filter(pool, instance.corpus.query)
        assert 0.1 * len(pool) < len(kept) < 0.9 * len(pool)
        # The filtered pool still contains date references for the graph.
        assert any(s.is_reference for s in kept)


class TestDateVolumes:
    def test_publication_only_excludes_mentions(self):
        pool = [
            DatedSentence(d("2020-01-01"), "pub a.", d("2020-01-01")),
            DatedSentence(d("2020-01-02"), "mention of the 2nd.",
                          d("2020-01-05"), is_reference=True),
            DatedSentence(d("2020-01-02"), "another mention.",
                          d("2020-01-06"), is_reference=True),
        ]
        volumes = dict(date_volumes(pool))
        assert volumes == {d("2020-01-01"): 1}

    def test_mention_pooled_volumes_optional(self):
        pool = [
            DatedSentence(d("2020-01-01"), "pub a.", d("2020-01-01")),
            DatedSentence(d("2020-01-02"), "mention.", d("2020-01-05"),
                          is_reference=True),
        ]
        volumes = dict(date_volumes(pool, publication_only=False))
        assert volumes[d("2020-01-02")] == 1

    def test_mention_only_pool_falls_back(self):
        pool = [
            DatedSentence(d("2020-01-02"), "mention.", d("2020-01-05"),
                          is_reference=True),
        ]
        volumes = dict(date_volumes(pool))
        assert volumes  # falls back to the full pool rather than empty


class TestThemeInventories:
    def test_all_themes_have_sixty_unique_nouns(self):
        from repro.tlsdata import wordbanks

        assert len(wordbanks.THEME_NOUNS) >= 7
        for theme, nouns in wordbanks.THEME_NOUNS.items():
            assert len(nouns) == 60, theme
            assert len(set(nouns)) == 60, theme

    def test_new_themes_generate(self):
        for theme in ("environment", "technology"):
            instance = generator(theme=theme, seed=21).generate()
            assert len(instance.reference) > 0
            pairs = instance.corpus.dated_sentences()
            assert any(p.is_reference for p in pairs)
