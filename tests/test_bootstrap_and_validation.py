"""Tests for bootstrap CIs and corpus/timeline validation."""

import random

import pytest

from repro.evaluation.bootstrap import (
    bootstrap_difference_ci,
    bootstrap_mean_ci,
)
from repro.tlsdata.types import Article, Corpus, Timeline
from repro.tlsdata.validation import (
    has_errors,
    validate_corpus,
    validate_timeline,
)
from tests.conftest import d


class TestBootstrapMean:
    def test_mean_inside_interval(self):
        rng = random.Random(1)
        scores = [rng.gauss(0.5, 0.1) for _ in range(30)]
        ci = bootstrap_mean_ci(scores, num_resamples=2000)
        assert ci.lower <= ci.mean <= ci.upper
        assert ci.mean in ci

    def test_interval_narrows_with_more_data(self):
        rng = random.Random(2)
        small = [rng.gauss(0.5, 0.1) for _ in range(8)]
        large = [rng.gauss(0.5, 0.1) for _ in range(200)]
        ci_small = bootstrap_mean_ci(small, num_resamples=2000)
        ci_large = bootstrap_mean_ci(large, num_resamples=2000)
        assert (
            ci_large.upper - ci_large.lower
            < ci_small.upper - ci_small.lower
        )

    def test_constant_scores_degenerate_interval(self):
        ci = bootstrap_mean_ci([0.4] * 10, num_resamples=500)
        assert ci.lower == pytest.approx(0.4)
        assert ci.upper == pytest.approx(0.4)

    def test_deterministic_for_seed(self):
        scores = [0.1, 0.5, 0.9, 0.4]
        a = bootstrap_mean_ci(scores, num_resamples=500, seed=7)
        b = bootstrap_mean_ci(scores, num_resamples=500, seed=7)
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], num_resamples=0)

    def test_str_format(self):
        ci = bootstrap_mean_ci([0.5, 0.6], num_resamples=100)
        assert "[" in str(ci)


class TestBootstrapDifference:
    def test_clear_difference_excludes_zero(self):
        rng = random.Random(3)
        a = [0.8 + rng.uniform(-0.02, 0.02) for _ in range(20)]
        b = [0.2 + rng.uniform(-0.02, 0.02) for _ in range(20)]
        ci = bootstrap_difference_ci(a, b, num_resamples=2000)
        assert ci.lower > 0.0

    def test_identical_systems_include_zero(self):
        rng = random.Random(4)
        a = [rng.gauss(0.5, 0.1) for _ in range(20)]
        ci = bootstrap_difference_ci(a, list(a), num_resamples=500)
        assert 0.0 in ci

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bootstrap_difference_ci([1.0], [1.0, 2.0])


def _good_corpus():
    return Corpus(
        topic="ok",
        query=("ceasefire",),
        articles=[
            Article("a1", d("2020-01-02"), text="One sentence here."),
            Article("a2", d("2020-01-05"), text="Another sentence here."),
        ],
    )


class TestValidateCorpus:
    def test_clean_corpus_no_issues(self):
        assert validate_corpus(_good_corpus()) == []

    def test_empty_corpus(self):
        issues = validate_corpus(Corpus(topic="x"))
        assert has_errors(issues)

    def test_duplicate_ids(self):
        corpus = _good_corpus()
        corpus.articles.append(
            Article("a1", d("2020-01-03"), text="Duplicate id.")
        )
        issues = validate_corpus(corpus)
        assert any("duplicate" in str(i) for i in issues)
        assert has_errors(issues)

    def test_empty_article_warning(self):
        corpus = _good_corpus()
        corpus.articles.append(Article("a3", d("2020-01-04"), text=""))
        issues = validate_corpus(corpus)
        assert any("no sentences" in str(i) for i in issues)
        assert not has_errors(issues)

    def test_out_of_window_warning(self):
        corpus = Corpus(
            topic="x",
            query=("q",),
            start=d("2020-01-01"),
            end=d("2020-01-10"),
            articles=[
                Article("a1", d("2020-02-20"), text="Way outside."),
                Article("a2", d("2020-01-05"), text="Inside window."),
            ],
        )
        issues = validate_corpus(corpus)
        assert any("outside the window" in str(i) for i in issues)

    def test_missing_query_warning(self):
        corpus = _good_corpus()
        corpus.query = ()
        issues = validate_corpus(corpus)
        assert any("no topic query" in str(i) for i in issues)


class TestValidateTimeline:
    def test_clean_timeline(self):
        timeline = Timeline({d("2020-01-02"): ["Something happened."]})
        assert validate_timeline(timeline, _good_corpus()) == []

    def test_empty_timeline_error(self):
        issues = validate_timeline(Timeline())
        assert has_errors(issues)

    def test_blank_sentence_warning(self):
        timeline = Timeline({d("2020-01-02"): ["   "]})
        issues = validate_timeline(timeline)
        assert any("empty summary" in str(i) for i in issues)

    def test_out_of_window_dates(self):
        timeline = Timeline({d("2021-06-01"): ["Out of range."]})
        issues = validate_timeline(timeline, _good_corpus())
        assert any("outside the corpus window" in str(i) for i in issues)
