"""Tests for the published timeline17/crisis release-format loader."""

import pytest

from repro.tlsdata.tilse_format import (
    load_release,
    load_topic,
    parse_timeline_file,
)
from tests.conftest import d

TIMELINE_ISO = """\
2009-06-25
Dr Murray finds Jackson unconscious in the bedroom.
Paramedics are called to the house.
--------------------------------
2009-06-28
Los Angeles police interview Dr Murray for three hours.
"""

TIMELINE_NATURAL = """\
June 25, 2009
He travels with the singer in an ambulance.
----
July 28, 2009
A computer hard drive and mobile phones are seized.
"""


@pytest.fixture()
def release_dir(tmp_path):
    """A miniature release tree with two topics."""
    topic = tmp_path / "mj"
    docs = topic / "InputDocs"
    (docs / "2009-06-25").mkdir(parents=True)
    (docs / "2009-06-25" / "article1.txt").write_text(
        "Michael Jackson died at his Los Angeles home on 25 June. "
        "Paramedics were called to the house.",
        encoding="utf-8",
    )
    (docs / "2009-06-28").mkdir(parents=True)
    (docs / "2009-06-28" / "article2.txt").write_text(
        "Police interviewed the doctor for three hours.",
        encoding="utf-8",
    )
    timelines = topic / "timelines"
    timelines.mkdir()
    (timelines / "bbc.txt").write_text(TIMELINE_ISO, encoding="utf-8")
    (timelines / "cnn.txt").write_text(
        TIMELINE_NATURAL, encoding="utf-8"
    )

    # Second topic without timelines: contributes no instances.
    other = tmp_path / "empty_topic"
    (other / "InputDocs" / "2010-01-01").mkdir(parents=True)
    (other / "InputDocs" / "2010-01-01" / "a.txt").write_text(
        "Something happened somewhere.", encoding="utf-8"
    )
    (other / "timelines").mkdir()
    return tmp_path


class TestParseTimelineFile:
    def test_iso_headers(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text(TIMELINE_ISO, encoding="utf-8")
        timeline = parse_timeline_file(path)
        assert timeline.dates == [d("2009-06-25"), d("2009-06-28")]
        assert len(timeline.summary(d("2009-06-25"))) == 2

    def test_natural_headers(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text(TIMELINE_NATURAL, encoding="utf-8")
        timeline = parse_timeline_file(path)
        assert timeline.dates == [d("2009-06-25"), d("2009-07-28")]

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text(
            "2009-06-25\n\nOne sentence.\n\n----\n\n", encoding="utf-8"
        )
        timeline = parse_timeline_file(path)
        assert timeline.summary(d("2009-06-25")) == ["One sentence."]

    def test_unparseable_header_block_skipped(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text(
            "not a date at all\nOrphan sentence.\n----\n"
            "2009-06-25\nKept sentence.\n",
            encoding="utf-8",
        )
        timeline = parse_timeline_file(path)
        assert timeline.dates == [d("2009-06-25")]
        assert timeline.summary(d("2009-06-25")) == ["Kept sentence."]


class TestLoadTopic:
    def test_articles_and_instances(self, release_dir):
        instances = load_topic(release_dir / "mj")
        assert len(instances) == 2  # bbc + cnn references
        names = {instance.name for instance in instances}
        assert names == {"mj/bbc", "mj/cnn"}
        corpus = instances[0].corpus
        assert len(corpus.articles) == 2
        assert corpus.articles[0].publication_date == d("2009-06-25")
        # Both instances share one corpus object.
        assert instances[0].corpus is instances[1].corpus

    def test_topic_without_articles(self, tmp_path):
        empty = tmp_path / "bare"
        empty.mkdir()
        assert load_topic(empty) == []

    def test_default_query_from_topic_name(self, release_dir):
        instances = load_topic(release_dir / "mj")
        assert instances[0].corpus.query == ("mj",)

    def test_explicit_query(self, release_dir):
        instances = load_topic(
            release_dir / "mj", query=("jackson", "doctor")
        )
        assert instances[0].corpus.query == ("jackson", "doctor")


class TestLoadRelease:
    def test_counts(self, release_dir):
        dataset = load_release(release_dir, name="mini17")
        assert dataset.name == "mini17"
        assert len(dataset) == 2
        assert dataset.topics() == ["mj"]

    def test_loaded_data_feeds_wilson(self, release_dir):
        from repro.core.pipeline import Wilson, WilsonConfig

        dataset = load_release(release_dir)
        instance = dataset.instances[0]
        timeline = Wilson(
            WilsonConfig(num_dates=2, sentences_per_date=1)
        ).summarize_corpus(instance.corpus)
        assert 1 <= len(timeline) <= 2
