"""Tests for the oracle methods (Table 8 upper bounds)."""

import pytest

from repro.baselines.oracle import (
    OracleDateSummarizer,
    SupervisedOracleSummarizer,
)
from repro.evaluation.date_metrics import date_f1
from repro.evaluation.timeline_rouge import concat_rouge


class TestOracleDateSummarizer:
    def test_uses_reference_dates(self, tiny_pool, tiny_instance):
        oracle = OracleDateSummarizer(tiny_instance.reference)
        timeline = oracle.generate(tiny_pool, 999, 2)
        assert set(timeline.dates) <= set(tiny_instance.reference.dates)

    def test_near_perfect_date_f1(self, tiny_pool, tiny_instance):
        oracle = OracleDateSummarizer(tiny_instance.reference)
        timeline = oracle.generate(tiny_pool, 999, 1)
        assert date_f1(
            timeline.dates, tiny_instance.reference.dates
        ) > 0.8

    def test_no_postprocess_variant(self, tiny_pool, tiny_instance):
        with_post = OracleDateSummarizer(
            tiny_instance.reference, postprocess=True
        ).generate(tiny_pool, 999, 2)
        without = OracleDateSummarizer(
            tiny_instance.reference, postprocess=False
        ).generate(tiny_pool, 999, 2)
        assert with_post.num_sentences() <= without.num_sentences()


class TestSupervisedOracle:
    def test_beats_unsupervised_oracle(self, tiny_pool, tiny_instance):
        """Directly optimising ROUGE must dominate TextRank selection."""
        unsupervised = OracleDateSummarizer(
            tiny_instance.reference
        ).generate(tiny_pool, 999, 2)
        supervised = SupervisedOracleSummarizer(
            tiny_instance.reference
        ).generate(tiny_pool, 999, 2)
        r_unsup = concat_rouge(unsupervised, tiny_instance.reference, 1).f1
        r_sup = concat_rouge(supervised, tiny_instance.reference, 1).f1
        assert r_sup >= r_unsup

    def test_sentence_budget(self, tiny_pool, tiny_instance):
        supervised = SupervisedOracleSummarizer(tiny_instance.reference)
        timeline = supervised.generate(tiny_pool, 999, 1)
        for date in timeline.dates:
            assert len(timeline.summary(date)) <= 1

    def test_stops_when_no_gain(self, tiny_pool, tiny_instance):
        """Greedy must not add sentences that reduce the day's F1."""
        supervised = SupervisedOracleSummarizer(tiny_instance.reference)
        timeline = supervised.generate(tiny_pool, 999, 10)
        # Budget of 10 is far above what helps; days stay compact.
        avg = timeline.average_sentences_per_date()
        assert avg < 10
