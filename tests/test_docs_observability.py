"""The telemetry contract: emitted spans/counters must be documented.

Guards docs/observability.md against drift: a small end-to-end ``Wilson``
run (plus the real-time system and the CLI ``--trace-json`` path) may
only emit span and counter names that appear in the contract document,
the trace must validate against the documented schema, and the per-stage
spans must account for the run's total time. Also checks that
``docs/generate_api.py`` output is committed (regeneration is a no-op).
"""

import importlib.util
import json
import pathlib

import pytest

from repro.cli import main
from repro.core.pipeline import Wilson, WilsonConfig
from repro.obs.trace import Tracer, validate_trace
from repro.search.realtime import RealTimeTimelineSystem
from repro.tlsdata.synthetic import make_timeline17_like

DOCS = pathlib.Path(__file__).parent.parent / "docs"


@pytest.fixture(scope="module")
def contract_text():
    return (DOCS / "observability.md").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def instance():
    return make_timeline17_like(scale=0.02, seed=11).instances[0]


@pytest.fixture(scope="module")
def traced_runs(instance):
    """Tracers from runs covering every optional stage."""
    corpus_tracer = Tracer()
    Wilson(
        WilsonConfig(num_dates=5, sentences_per_date=2)
    ).summarize_corpus(instance.corpus, tracer=corpus_tracer)

    # num_dates=None -> compression.predict; compress_summaries=True ->
    # compression.summaries.
    auto_tracer = Tracer()
    Wilson(
        WilsonConfig(num_dates=None, compress_summaries=True)
    ).summarize(
        instance.corpus.dated_sentences(), tracer=auto_tracer
    )

    realtime_tracer = Tracer()
    system = RealTimeTimelineSystem()
    system.ingest(instance.corpus.articles)
    start, end = instance.corpus.window
    response = system.generate_timeline(
        instance.corpus.query, start, end,
        num_dates=5, num_sentences=1, tracer=realtime_tracer,
    )
    return {
        "corpus": corpus_tracer,
        "auto": auto_tracer,
        "realtime": realtime_tracer,
        "response": response,
    }


class TestContractCoverage:
    def test_every_emitted_span_is_documented(
        self, traced_runs, contract_text
    ):
        emitted = set()
        for key in ("corpus", "auto", "realtime"):
            emitted.update(traced_runs[key].span_names())
        assert emitted  # the runs actually traced something
        for name in sorted(emitted):
            assert f"`{name}`" in contract_text, (
                f"span {name!r} is not documented in docs/observability.md"
            )

    def test_every_emitted_counter_is_documented(
        self, traced_runs, contract_text
    ):
        emitted = set()
        for key in ("corpus", "auto", "realtime"):
            emitted.update(traced_runs[key].counters)
        assert emitted
        for name in sorted(emitted):
            assert f"`{name}`" in contract_text, (
                f"counter {name!r} is not documented in "
                "docs/observability.md"
            )

    def test_core_stages_present(self, traced_runs):
        tracer = traced_runs["corpus"]
        for stage in (
            "pipeline", "tagging", "date_selection",
            "date_selection.build_graph", "date_selection.pagerank",
            "daily", "postprocess",
        ):
            assert tracer.find(stage), stage
        auto = traced_runs["auto"]
        assert auto.find("compression.predict")
        assert auto.find("compression.summaries")

    def test_stages_sum_to_total_runtime(self, traced_runs):
        for key in ("corpus", "auto", "realtime"):
            root = traced_runs[key].spans[0]
            covered = sum(c.duration_seconds for c in root.children)
            assert covered <= root.duration_seconds + 1e-9
            assert covered >= 0.85 * root.duration_seconds, key

    def test_traces_validate_against_schema(self, traced_runs):
        for key in ("corpus", "auto", "realtime"):
            payload = json.loads(traced_runs[key].to_json())
            assert validate_trace(payload) == [], key

    def test_counter_identities(self, traced_runs):
        counters = traced_runs["corpus"].counters
        assert counters["postprocess.offers"] == (
            counters["postprocess.accepted"]
            + counters.get("postprocess.rejected_redundant", 0.0)
        )
        assert counters["date_selection.pagerank_runs"] == (
            counters["date_selection.alpha_candidates"]
        )


class TestRealtimeTelemetry:
    def test_total_seconds_is_retrieval_plus_generation(self, traced_runs):
        response = traced_runs["response"]
        assert response.total_seconds == pytest.approx(
            response.retrieval_seconds + response.generation_seconds
        )
        assert response.retrieval_seconds > 0
        assert response.generation_seconds > 0

    def test_response_fields_derive_from_spans(self, traced_runs):
        response = traced_runs["response"]
        tracer = traced_runs["realtime"]
        assert response.retrieval_seconds == pytest.approx(
            tracer.total_seconds("realtime.retrieval")
        )
        assert response.generation_seconds == pytest.approx(
            tracer.total_seconds("realtime.generation")
        )
        assert response.trace is tracer.spans[0]

    def test_private_tracer_by_default(self, instance):
        system = RealTimeTimelineSystem()
        system.ingest(instance.corpus.articles)
        start, end = instance.corpus.window
        response = system.generate_timeline(
            instance.corpus.query, start, end, num_dates=4
        )
        assert response.trace is not None
        assert response.trace.name == "realtime"
        assert response.total_seconds > 0


class TestCliTraceJson:
    def test_trace_json_dump_validates_and_covers_stages(
        self, tmp_path, capsys
    ):
        path = tmp_path / "trace.json"
        assert main(
            [
                "demo", "--scale", "0.02", "--dates", "4",
                "--trace-json", str(path),
            ]
        ) == 0
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert validate_trace(payload) == []
        root = payload["spans"][0]
        assert root["name"] == "pipeline"
        child_names = {c["name"] for c in root["children"]}
        assert {"date_selection", "daily", "postprocess"} <= child_names
        covered = sum(c["duration_seconds"] for c in root["children"])
        assert covered >= 0.85 * root["duration_seconds"]

    def test_trace_flag_renders_tree_to_stderr(self, capsys):
        assert main(["demo", "--scale", "0.02", "--dates", "4", "--trace"]) == 0
        err = capsys.readouterr().err
        assert "pipeline" in err
        assert "date_selection" in err


class TestServeContract:
    def test_every_registered_serve_metric_is_documented(
        self, contract_text
    ):
        from repro.serve import SERVE_METRIC_NAMES

        for name in SERVE_METRIC_NAMES:
            assert f"`{name}`" in contract_text, (
                f"serve metric {name!r} is not documented in "
                "docs/observability.md"
            )

    def test_every_registered_snapshot_metric_is_documented(
        self, contract_text
    ):
        from repro.search.snapshot import SNAPSHOT_METRIC_NAMES

        for name in SNAPSHOT_METRIC_NAMES:
            assert f"`{name}`" in contract_text, (
                f"snapshot metric {name!r} is not documented in "
                "docs/observability.md"
            )

    def test_serving_doc_exists_and_is_linked(self, contract_text):
        assert (DOCS / "serving.md").exists()
        assert "serving.md" in contract_text


class TestRouterContract:
    def test_every_registered_router_metric_is_documented(
        self, contract_text
    ):
        from repro.serve import ROUTER_METRIC_NAMES

        for name in ROUTER_METRIC_NAMES:
            assert f"`{name}`" in contract_text, (
                f"router metric {name!r} is not documented in "
                "docs/observability.md"
            )

    def test_every_registered_replica_metric_is_documented(
        self, contract_text
    ):
        from repro.serve import REPLICA_METRIC_NAMES

        for name in REPLICA_METRIC_NAMES:
            assert f"`{name}`" in contract_text, (
                f"replica metric {name!r} is not documented in "
                "docs/observability.md"
            )

    def test_every_registered_pool_metric_is_documented(
        self, contract_text
    ):
        from repro.serve import POOL_METRIC_NAMES

        for name in POOL_METRIC_NAMES:
            assert f"`{name}`" in contract_text, (
                f"pool metric {name!r} is not documented in "
                "docs/observability.md"
            )

    def test_coalescing_and_hedging_counters_are_documented(
        self, contract_text
    ):
        from repro.serve import (
            REPLICA_METRIC_NAMES,
            ROUTER_METRIC_NAMES,
            SERVE_METRIC_NAMES,
        )

        assert "serve.coalesced_requests" in SERVE_METRIC_NAMES
        assert "router.coalesced_requests" in ROUTER_METRIC_NAMES
        assert "router.binary_frames" in ROUTER_METRIC_NAMES
        assert "replica.hedges" in REPLICA_METRIC_NAMES
        assert "replica.hedge_wins" in REPLICA_METRIC_NAMES
        for name in (
            "serve.coalesced_requests",
            "router.coalesced_requests",
            "router.binary_frames",
            "replica.hedges",
            "replica.hedge_wins",
        ):
            assert f"`{name}`" in contract_text

    def test_shard_search_counter_is_documented(self, contract_text):
        from repro.serve import SERVE_METRIC_NAMES

        assert "serve.shard_search_requests" in SERVE_METRIC_NAMES
        assert "`serve.shard_search_requests`" in contract_text

    def test_degraded_header_is_documented(self, contract_text):
        from repro.serve import DEGRADED_HEADER

        assert DEGRADED_HEADER == "X-Wilson-Degraded"
        assert DEGRADED_HEADER in contract_text
        serving = (DOCS / "serving.md").read_text(encoding="utf-8")
        assert DEGRADED_HEADER in serving

    def test_architecture_doc_exists_and_is_cross_linked(self):
        text = (DOCS / "architecture.md").read_text(encoding="utf-8")
        for linked in (
            "algorithms.md",
            "runtime.md",
            "serving.md",
            "observability.md",
        ):
            assert linked in text, linked
        readme = (
            DOCS.parent / "README.md"
        ).read_text(encoding="utf-8")
        assert "docs/architecture.md" in readme


class TestIngestContract:
    def test_every_registered_ingest_metric_is_documented(
        self, contract_text
    ):
        from repro.ingest import INGEST_METRIC_NAMES

        for name in INGEST_METRIC_NAMES:
            assert f"`{name}`" in contract_text, (
                f"ingest metric {name!r} is not documented in "
                "docs/observability.md"
            )

    def test_serve_and_router_ingest_counters_are_documented(
        self, contract_text
    ):
        from repro.serve import ROUTER_METRIC_NAMES, SERVE_METRIC_NAMES

        for name in (
            "serve.ingest_requests",
            "serve.ingest_rejected",
            "serve.ingest_invalidated_results",
        ):
            assert name in SERVE_METRIC_NAMES
            assert f"`{name}`" in contract_text, name
        for name in (
            "router.ingest_requests",
            "router.ingest_rejected",
            "router.ingest_routed_articles",
        ):
            assert name in ROUTER_METRIC_NAMES
            assert f"`{name}`" in contract_text, name

    def test_ingest_doc_exists_and_is_cross_linked(self, contract_text):
        ingest = (DOCS / "ingest.md").read_text(encoding="utf-8")
        assert "/v1/ingest" in ingest
        assert "observability.md" in ingest
        assert "ingest.md" in contract_text
        serving = (DOCS / "serving.md").read_text(encoding="utf-8")
        assert "/v1/ingest" in serving
        architecture = (DOCS / "architecture.md").read_text(
            encoding="utf-8"
        )
        assert "ingest.md" in architecture


class TestApiDocsCommitted:
    def test_regeneration_produces_no_diff(self):
        spec = importlib.util.spec_from_file_location(
            "generate_api", DOCS / "generate_api.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        committed = (DOCS / "api.md").read_text(encoding="utf-8")
        assert module.build() == committed, (
            "docs/api.md is stale; run `python docs/generate_api.py`"
        )
