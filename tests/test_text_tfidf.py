"""Tests for the TF-IDF model."""

import math

import numpy as np
import pytest

from repro.text.tfidf import TfidfModel

CORPUS = [
    ["ceasefire", "collapse"],
    ["rebel", "stronghold"],
    ["ceasefire", "talk"],
]


class TestFitting:
    def test_unfitted_transform_raises(self):
        with pytest.raises(RuntimeError):
            TfidfModel().transform(["x"])

    def test_is_fitted_flag(self):
        model = TfidfModel()
        assert not model.is_fitted
        model.fit(CORPUS)
        assert model.is_fitted

    def test_vocabulary_learned(self):
        model = TfidfModel().fit(CORPUS)
        assert "ceasefire" in model.vocabulary
        assert "zzz" not in model.vocabulary

    def test_idf_rarer_terms_weigh_more(self):
        model = TfidfModel().fit(CORPUS)
        assert model.idf_of("rebel") > model.idf_of("ceasefire")

    def test_idf_of_oov_is_zero(self):
        model = TfidfModel().fit(CORPUS)
        assert model.idf_of("zzz") == 0.0

    def test_idf_formula(self):
        model = TfidfModel().fit(CORPUS)
        expected = math.log((1 + 3) / (1 + 2)) + 1.0
        assert model.idf_of("ceasefire") == pytest.approx(expected)


class TestTransform:
    def test_vectors_l2_normalized(self):
        model = TfidfModel().fit(CORPUS)
        vector = model.transform(["ceasefire", "collapse"])
        norm = math.sqrt(sum(v * v for v in vector.values()))
        assert norm == pytest.approx(1.0)

    def test_oov_tokens_dropped(self):
        model = TfidfModel().fit(CORPUS)
        assert model.transform(["zzz"]) == {}

    def test_empty_document(self):
        model = TfidfModel().fit(CORPUS)
        assert model.transform([]) == {}

    def test_transform_many_aligns(self):
        model = TfidfModel().fit(CORPUS)
        vectors = model.transform_many(CORPUS)
        assert len(vectors) == 3
        assert vectors[0] == model.transform(CORPUS[0])

    def test_sublinear_tf(self):
        model = TfidfModel(sublinear_tf=True).fit([["a", "a", "b"]])
        plain = TfidfModel().fit([["a", "a", "b"]])
        v_sub = model.transform(["a", "a", "b"])
        v_plain = plain.transform(["a", "a", "b"])
        a_id = model.vocabulary.get("a")
        b_id = model.vocabulary.get("b")
        # Sublinear TF compresses the gap between a (tf=2) and b (tf=1).
        assert (
            v_sub[a_id] / v_sub[b_id]
            < v_plain[a_id] / v_plain[b_id]
        )


class TestMatrix:
    def test_matrix_shape(self):
        model = TfidfModel()
        matrix = model.fit_transform_matrix(CORPUS)
        assert matrix.shape == (3, len(model.vocabulary))

    def test_matrix_rows_match_dict_vectors(self):
        model = TfidfModel().fit(CORPUS)
        matrix = model.transform_matrix(CORPUS).toarray()
        for row, doc in zip(matrix, CORPUS):
            vector = model.transform(doc)
            dense = np.zeros(len(model.vocabulary))
            for key, value in vector.items():
                dense[key] = value
            assert np.allclose(row, dense)

    def test_rows_unit_norm(self):
        matrix = TfidfModel().fit_transform_matrix(CORPUS)
        norms = np.sqrt(matrix.multiply(matrix).sum(axis=1)).A.ravel()
        assert np.allclose(norms, 1.0)
