"""Hedged replica reads: tail latency absorbed without degradation.

One slice, two live replicas, one artificially slow (the per-request
test delay the CI hedging smoke also uses). The router must race the
slow primary against its healthy sibling after the adaptive delay and
serve the first response: every answer stays 200, byte-identical to
single-index serving, with ``replica.hedges`` / ``replica.hedge_wins``
accounting for the rescues -- and with ``--no-hedge`` semantics
(``hedge_enabled=False``) nothing ever hedges.
"""

import http.client
import json

import pytest

from repro.core.pipeline import Wilson, WilsonConfig
from repro.obs.metrics import Metrics
from repro.search.engine import SearchEngine
from repro.search.realtime import RealTimeTimelineSystem
from repro.serve import (
    DEGRADED_HEADER,
    BackgroundServer,
    RouterConfig,
    ServeConfig,
    TimelineRouter,
    TimelineServer,
    export_slices,
)
from repro.tlsdata.synthetic import make_timeline17_like


@pytest.fixture(scope="module")
def instance():
    return make_timeline17_like(scale=0.02, seed=11).instances[0]


@pytest.fixture(scope="module")
def system(instance):
    system = RealTimeTimelineSystem()
    system.ingest(instance.corpus.articles)
    return system


@pytest.fixture(scope="module")
def topology(system, tmp_path_factory):
    return export_slices(
        system.engine.index,
        tmp_path_factory.mktemp("topology"),
        1,
    )


def _replica_server(slice_path, delay_seconds=0.0):
    wilson = Wilson(WilsonConfig())
    engine = SearchEngine.load_snapshot(slice_path, cache=wilson.cache)
    server = TimelineServer(
        RealTimeTimelineSystem(
            engine=engine, wilson=wilson, cache=wilson.cache
        ),
        ServeConfig(port=0, batch_window_ms=2.0),
    )
    # The WILSON_SERVE_TEST_DELAY_MS knob, set directly: both replicas
    # share this process's environment.
    server._test_delay_seconds = delay_seconds
    return server


@pytest.fixture(scope="module")
def uneven_fleet(topology):
    """Two live replicas of the single slice; replica 0 is slow."""
    slice_path = topology.shards[0].path
    contexts = [
        BackgroundServer(_replica_server(slice_path, delay_seconds=0.5)),
        BackgroundServer(_replica_server(slice_path)),
    ]
    servers = [context.__enter__() for context in contexts]
    yield servers
    for context in contexts:
        context.__exit__(None, None, None)


@pytest.fixture()
def single_server(system):
    config = ServeConfig(port=0, batch_window_ms=2.0, workers=2)
    with BackgroundServer(TimelineServer(system, config)) as running:
        yield running


def _router(topology, fleet, **overrides):
    config = dict(
        port=0,
        shard_timeout_seconds=30.0,
        hedge_delay_floor_seconds=0.01,
        hedge_delay_max_seconds=0.05,
    )
    config.update(overrides)
    groups = [[f"http://127.0.0.1:{server.port}" for server in fleet]]
    return BackgroundServer(
        TimelineRouter(
            topology,
            groups,
            config=RouterConfig(**config),
            metrics=Metrics(),
        )
    )


def _get(server, path):
    conn = http.client.HTTPConnection(
        "127.0.0.1", server.port, timeout=120
    )
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


class TestHedgedReads:
    def test_hedges_win_and_responses_stay_exact(
        self, topology, uneven_fleet, single_server
    ):
        with _router(topology, uneven_fleet) as router:
            hedge_wins = 0
            for round_number in range(40):
                path = f"/v1/search?q=government&limit={round_number + 1}"
                reference_status, _, reference_raw = _get(
                    single_server, path
                )
                assert reference_status == 200
                status, headers, raw = _get(router, path)
                assert status == 200
                assert DEGRADED_HEADER not in headers
                assert raw == reference_raw
                counters = router.metrics.snapshot()["counters"]
                hedge_wins = counters.get("replica.hedge_wins", 0)
                if hedge_wins >= 3:
                    break
            assert hedge_wins >= 3
            counters = router.metrics.snapshot()["counters"]
            assert counters.get("replica.hedges", 0) >= hedge_wins
            # Hedging absorbed the slow replica: nothing failed over,
            # nothing degraded, no shard ever exhausted its budget.
            assert counters.get("router.shard_failures", 0) == 0
            assert counters.get("router.degraded", 0) == 0

    def test_no_hedge_config_never_hedges(self, topology, uneven_fleet):
        with _router(
            topology, uneven_fleet, hedge_enabled=False
        ) as router:
            for round_number in range(6):
                status, _, _ = _get(
                    router,
                    f"/v1/search?q=government&limit={round_number + 50}",
                )
                assert status == 200
            counters = router.metrics.snapshot()["counters"]
            assert counters.get("replica.hedges", 0) == 0
            assert counters.get("replica.hedge_wins", 0) == 0

    def test_timeline_requests_also_benefit(
        self, topology, uneven_fleet, instance
    ):
        start, end = instance.corpus.window
        payload = {
            "keywords": list(instance.corpus.query),
            "start": start.isoformat(),
            "end": end.isoformat(),
            "num_dates": 5,
            "num_sentences": 1,
        }
        with _router(topology, uneven_fleet) as router:
            conn = http.client.HTTPConnection(
                "127.0.0.1", router.port, timeout=120
            )
            try:
                conn.request(
                    "POST",
                    "/v1/timeline",
                    body=json.dumps(payload).encode(),
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                raw = response.read()
                assert response.status == 200
                assert json.loads(raw)["result"]["timeline"]
            finally:
                conn.close()
