"""Tests for the Porter stemmer against known reference pairs."""

import pytest

from repro.text.stem import PorterStemmer, stem_token, stem_tokens

# Classic reference pairs from Porter's paper and the standard test
# vocabulary distributed with the algorithm.
REFERENCE_PAIRS = [
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("ties", "ti"),
    ("caress", "caress"),
    ("cats", "cat"),
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    ("happy", "happi"),
    ("sky", "sky"),
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valenci", "valenc"),
    ("hesitanci", "hesit"),
    ("digitizer", "digit"),
    ("conformabli", "conform"),
    ("radicalli", "radic"),
    ("differentli", "differ"),
    ("vileli", "vile"),
    ("analogousli", "analog"),
    ("vietnamization", "vietnam"),
    ("predication", "predic"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formaliti", "formal"),
    ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electriciti", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angulariti", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    ("controll", "control"),
    ("roll", "roll"),
]


class TestPorterStemmer:
    @pytest.mark.parametrize("word,expected", REFERENCE_PAIRS)
    def test_reference_pair(self, word, expected):
        assert PorterStemmer().stem(word) == expected

    def test_short_words_untouched(self):
        stemmer = PorterStemmer()
        assert stemmer.stem("is") == "is"
        assert stemmer.stem("a") == "a"

    def test_non_alpha_untouched(self):
        assert PorterStemmer().stem("2018-06-12") == "2018-06-12"

    def test_lowercases_input(self):
        assert PorterStemmer().stem("Running") == "run"

    def test_cache_consistency(self):
        stemmer = PorterStemmer(cache_size=2)
        first = stemmer.stem("nationalization")
        # Overflow the cache, then re-ask.
        stemmer.stem("alpha")
        stemmer.stem("beta")
        stemmer.stem("gamma")
        assert stemmer.stem("nationalization") == first

    def test_idempotent_on_many_stems(self):
        stemmer = PorterStemmer()
        for word, stem in REFERENCE_PAIRS[:20]:
            # Stemming a stem should not oscillate wildly; it must be
            # deterministic and stable under repetition of the call.
            assert stemmer.stem(word) == stemmer.stem(word)


class TestModuleHelpers:
    def test_stem_token(self):
        assert stem_token("running") == "run"

    def test_stem_tokens_order(self):
        assert stem_tokens(["cats", "ponies"]) == ["cat", "poni"]

    def test_stem_tokens_empty(self):
        assert stem_tokens([]) == []
