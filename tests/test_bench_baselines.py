"""The baseline comparator: direction rules, tolerance, exit codes.

``benchmarks/compare_baselines.py`` guards the committed
``benchmarks/baselines/BENCH_*.json`` files; these tests pin its
comparison semantics so a refactor cannot silently flip a
lower-is-better metric into higher-is-better (or start enforcing
outside ``BENCH_ASSERT=1`` / ``--strict``).
"""

import importlib.util
import json
import pathlib

import pytest

_ROOT = pathlib.Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "compare_baselines", _ROOT / "benchmarks" / "compare_baselines.py"
)
comparator = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(comparator)


def _write(directory, name, metrics):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"BENCH_{name}.json").write_text(
        json.dumps({"benchmark": name, "metrics": metrics})
    )


class TestDirectionRules:
    @pytest.mark.parametrize(
        "path,expected",
        [
            ("p50_seconds.cold_1", -1),
            ("retrieval_seconds", -1),
            ("latency_p99", -1),
            ("speedup_2_shards", 1),
            ("qps.4", 1),
            ("throughput", 1),
            ("requests", 0),
            ("scale", 0),
            ("shed_429", 0),
        ],
    )
    def test_direction(self, path, expected):
        assert comparator.direction(path) == expected

    def test_flatten_dotted_paths_and_numeric_leaves_only(self):
        flat = dict(
            comparator.flatten(
                {"a": {"b": 1.5, "c": "text"}, "d": 2, "e": True}
            )
        )
        assert flat == {"a.b": 1.5, "d": 2.0}


class TestCompareMetrics:
    def test_within_tolerance_is_clean(self):
        assert (
            comparator.compare_metrics(
                {"total_seconds": 1.0}, {"total_seconds": 1.15}, 0.2
            )
            == []
        )

    def test_slower_seconds_regress(self):
        messages = comparator.compare_metrics(
            {"total_seconds": 1.0}, {"total_seconds": 1.5}, 0.2
        )
        assert len(messages) == 1
        assert "total_seconds" in messages[0]

    def test_faster_seconds_never_regress(self):
        assert (
            comparator.compare_metrics(
                {"total_seconds": 1.0}, {"total_seconds": 0.1}, 0.2
            )
            == []
        )

    def test_lower_qps_regresses(self):
        messages = comparator.compare_metrics(
            {"qps": {"2": 100.0}}, {"qps": {"2": 50.0}}, 0.2
        )
        assert len(messages) == 1
        assert "qps.2" in messages[0]

    def test_higher_qps_never_regresses(self):
        assert (
            comparator.compare_metrics(
                {"qps": {"2": 100.0}}, {"qps": {"2": 500.0}}, 0.2
            )
            == []
        )

    def test_descriptive_keys_are_skipped(self):
        assert (
            comparator.compare_metrics(
                {"requests": 32, "scale": 0.02},
                {"requests": 4, "scale": 0.5},
                0.2,
            )
            == []
        )

    def test_missing_current_leaf_is_skipped(self):
        assert (
            comparator.compare_metrics(
                {"total_seconds": 1.0}, {}, 0.2
            )
            == []
        )


class TestMainExitCodes:
    def _dirs(self, tmp_path, base_metrics, current_metrics):
        base, current = tmp_path / "base", tmp_path / "cur"
        _write(base, "demo", base_metrics)
        _write(current, "demo", current_metrics)
        return base, current

    def _run(self, base, current, *extra, env=None, monkeypatch=None):
        if monkeypatch is not None:
            monkeypatch.setenv("BENCH_ASSERT", env or "")
        return comparator.main(
            [
                "--baselines", str(base),
                "--current", str(current),
                *extra,
            ]
        )

    def test_clean_run_exits_zero(self, tmp_path, monkeypatch, capsys):
        base, current = self._dirs(
            tmp_path, {"total_seconds": 1.0}, {"total_seconds": 1.0}
        )
        assert self._run(base, current, monkeypatch=monkeypatch) == 0
        assert "ok: 1 benchmark" in capsys.readouterr().out

    def test_regression_is_informational_by_default(
        self, tmp_path, monkeypatch, capsys
    ):
        base, current = self._dirs(
            tmp_path, {"total_seconds": 1.0}, {"total_seconds": 9.0}
        )
        assert self._run(base, current, monkeypatch=monkeypatch) == 0
        out = capsys.readouterr().out
        assert "regression: BENCH_demo.json: total_seconds" in out
        assert "not failing" in out

    def test_regression_fails_under_bench_assert(
        self, tmp_path, monkeypatch, capsys
    ):
        base, current = self._dirs(
            tmp_path, {"total_seconds": 1.0}, {"total_seconds": 9.0}
        )
        assert (
            self._run(base, current, env="1", monkeypatch=monkeypatch)
            == 1
        )
        assert "FAIL" in capsys.readouterr().out

    def test_regression_fails_under_strict_flag(
        self, tmp_path, monkeypatch, capsys
    ):
        base, current = self._dirs(
            tmp_path, {"total_seconds": 1.0}, {"total_seconds": 9.0}
        )
        assert (
            self._run(
                base, current, "--strict", monkeypatch=monkeypatch
            )
            == 1
        )
        assert "FAIL" in capsys.readouterr().out

    def test_no_pairs_exits_zero(self, tmp_path, monkeypatch, capsys):
        base, current = tmp_path / "base", tmp_path / "cur"
        base.mkdir()
        current.mkdir()
        assert self._run(base, current, monkeypatch=monkeypatch) == 0
        assert "no benchmark pairs" in capsys.readouterr().out


class TestCommittedBaselines:
    """The repo ships baselines the comparator can actually read."""

    def test_baselines_exist_and_parse(self):
        baseline_dir = _ROOT / "benchmarks" / "baselines"
        files = sorted(baseline_dir.glob("BENCH_*.json"))
        assert files, "no committed baselines under benchmarks/baselines/"
        for path in files:
            payload = json.loads(path.read_text(encoding="utf-8"))
            assert payload["metrics"], path.name
            assert "git_sha" in payload and "timestamp" in payload

    def test_baselines_compare_clean_against_themselves(self, capsys):
        baseline_dir = _ROOT / "benchmarks" / "baselines"
        regressions, compared = comparator.compare_directories(
            baseline_dir, baseline_dir, 0.2
        )
        assert compared >= 3
        assert regressions == []
