"""Tests for the head-to-head method comparison report."""

import pytest

from repro.experiments.comparison import (
    MetricComparison,
    compare_methods,
    comparison_report,
)
from repro.experiments.runner import InstanceScores, MethodResult


def _result(name, values):
    """Build a MethodResult with the given concat_r2 per-instance values."""
    per_instance = []
    for index, value in enumerate(values):
        metrics = {
            "concat_r1": value + 0.1,
            "concat_r2": value,
            "concat_s*": value / 2,
            "agreement_r1": value / 2,
            "agreement_r2": value / 3,
            "align_r1": value / 2,
            "align_r2": value / 3,
            "date_f1": min(1.0, value * 2),
            "date_coverage": min(1.0, value * 2),
        }
        per_instance.append(
            InstanceScores(
                instance_name=f"inst-{index}",
                metrics=metrics,
                seconds=0.01,
            )
        )
    return MethodResult(method_name=name, per_instance=per_instance)


class TestCompareMethods:
    def test_clear_winner_detected(self):
        strong = _result("strong", [0.30, 0.32, 0.29, 0.31, 0.33,
                                    0.30, 0.31, 0.32])
        weak = _result("weak", [0.10, 0.12, 0.09, 0.11, 0.13,
                                0.10, 0.11, 0.12])
        comparisons = compare_methods(
            strong, weak, metrics=("concat_r2",), num_shuffles=2000,
            num_resamples=2000,
        )
        outcome = comparisons["concat_r2"]
        assert outcome.winner == "a"
        assert outcome.difference_ci.lower > 0
        assert outcome.significance.significant()

    def test_tied_systems_not_significant(self):
        values = [0.2, 0.25, 0.22, 0.27, 0.21, 0.24]
        a = _result("a", values)
        b = _result("b", list(values))
        outcome = compare_methods(
            a, b, metrics=("concat_r2",), num_shuffles=500,
            num_resamples=500,
        )["concat_r2"]
        assert outcome.difference == pytest.approx(0.0)
        assert not outcome.significance.significant()
        assert 0.0 in outcome.difference_ci

    def test_mismatched_instances_rejected(self):
        a = _result("a", [0.1, 0.2])
        b = _result("b", [0.1, 0.2, 0.3])
        with pytest.raises(ValueError):
            compare_methods(a, b)

    def test_unknown_metric_rejected(self):
        a = _result("a", [0.1, 0.2])
        b = _result("b", [0.2, 0.3])
        with pytest.raises(ValueError):
            compare_methods(a, b, metrics=("nonsense",))

    def test_summary_format(self):
        a = _result("a", [0.3, 0.35])
        b = _result("b", [0.1, 0.12])
        outcome = compare_methods(
            a, b, metrics=("concat_r2",), num_shuffles=200,
            num_resamples=200,
        )["concat_r2"]
        text = outcome.summary()
        assert "diff" in text
        assert "CI" in text
        assert "p=" in text


class TestComparisonReport:
    def test_report_lines(self):
        a = _result("WILSON", [0.3, 0.35, 0.32])
        b = _result("TILSE", [0.2, 0.22, 0.21])
        lines = comparison_report(a, b)
        assert lines[0].startswith("WILSON (a) vs TILSE (b)")
        assert len(lines) == 4  # header + 3 metrics
