"""End-to-end golden regression: exact pipeline output on fixed corpora.

Runs the full WILSON pipeline (temporal tagging through post-processing)
on the two small synthetic corpora of ``conftest.GOLDEN_CONFIGS`` and
diffs the **exact** selected dates and summary sentences against the
fixtures checked into ``tests/golden/``. Any behavioural drift anywhere
in the pipeline -- tokenisation, graph weights, PageRank order, summary
ranking, post-processing -- shows up here as a readable JSON diff.

When a change is intentional, refresh the fixtures with::

    pytest tests/test_golden_pipeline.py --update-golden

and commit the diff. The same corpora anchor the runtime equivalence
suite (``test_runtime_equivalence.py``), so the parallel path is proven
against exactly these outputs.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.pipeline import Wilson, WilsonConfig

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Generation settings per golden corpus -- fixed, so the fixture files
#: are self-contained snapshots of one exact configuration.
GOLDEN_RUNS = {
    "flood-relief": {"num_dates": 6, "num_sentences": 2},
    "border-truce": {"num_dates": 5, "num_sentences": 2},
}


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


def generate_golden_document(instance, num_dates: int, num_sentences: int):
    """The canonical JSON-able form of one golden pipeline run."""
    wilson = Wilson(
        WilsonConfig(num_dates=num_dates, sentences_per_date=num_sentences)
    )
    timeline = wilson.summarize_corpus(instance.corpus)
    return {
        "topic": instance.corpus.topic,
        "num_dates": num_dates,
        "num_sentences": num_sentences,
        "dates": [date.isoformat() for date in timeline.dates],
        "entries": [
            {"date": date.isoformat(), "sentences": list(sentences)}
            for date, sentences in timeline
        ],
    }


@pytest.mark.parametrize("name", sorted(GOLDEN_RUNS))
def test_pipeline_matches_golden(name, golden_instances, update_golden):
    document = generate_golden_document(
        golden_instances[name], **GOLDEN_RUNS[name]
    )
    path = golden_path(name)
    if update_golden:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        pytest.skip(f"rewrote {path}")
    assert path.exists(), (
        f"missing golden fixture {path}; generate it with "
        f"`pytest {__file__} --update-golden`"
    )
    expected = json.loads(path.read_text(encoding="utf-8"))
    assert document == expected, (
        f"pipeline output drifted from {path}; if intentional, rerun "
        f"with --update-golden and commit the diff"
    )


class TestGoldenFixtureShape:
    """The checked-in fixtures themselves stay structurally sound."""

    @pytest.mark.parametrize("name", sorted(GOLDEN_RUNS))
    def test_fixture_is_complete(self, name):
        expected = json.loads(
            golden_path(name).read_text(encoding="utf-8")
        )
        assert expected["dates"] == sorted(expected["dates"])
        assert len(expected["dates"]) == len(set(expected["dates"]))
        assert len(expected["dates"]) <= expected["num_dates"]
        assert [e["date"] for e in expected["entries"]] == expected["dates"]
        for entry in expected["entries"]:
            assert 1 <= len(entry["sentences"]) <= expected["num_sentences"]
            assert all(s.strip() for s in entry["sentences"])
