"""``wilson.rpc/v1`` binary candidate frames: bit-exactness, negotiation.

The frame codec's whole value is that it changes *nothing* but bytes
on the wire: ``decode(encode(payload))`` must equal the payload the
JSON path would have shipped, for real corpus data, empty results and
unicode text alike. Corruption must fail loudly (:class:`FrameError`),
and the ``Accept`` negotiation must leave JSON-only clients untouched.
"""

import http.client
import json
import urllib.parse

import pytest

from repro.search.engine import SearchEngine
from repro.search.query import (
    SearchQuery,
    candidates_payload,
    gather_candidates,
)
from repro.search.realtime import RealTimeTimelineSystem
from repro.serve import (
    RPC_CONTENT_TYPE,
    RPC_SCHEMA,
    BackgroundServer,
    FrameError,
    ServeConfig,
    TimelineServer,
    WIRE_SCHEMA,
    canonical_json,
    decode_shard_search,
    encode_shard_search,
)
from repro.tlsdata.synthetic import make_timeline17_like


@pytest.fixture(scope="module")
def instance():
    return make_timeline17_like(scale=0.02, seed=11).instances[0]


@pytest.fixture(scope="module")
def payload(instance):
    engine = SearchEngine()
    engine.add_articles(instance.corpus.articles)
    start, end = instance.corpus.window
    candidates = gather_candidates(
        engine.index,
        SearchQuery(
            keywords=tuple(instance.corpus.query),
            start=start,
            end=end,
            limit=500,
        ),
    )
    assert candidates.hits, "fixture must produce real hits"
    return candidates_payload(engine.index, candidates, 3, WIRE_SCHEMA)


class TestRoundTrip:
    def test_decode_encode_is_the_identity_on_real_payloads(self, payload):
        frame = encode_shard_search(payload)
        assert decode_shard_search(frame) == payload

    def test_round_trip_preserves_canonical_json_bytes(self, payload):
        """The byte-identity guarantee in one line: both wire formats
        canonicalise to the same JSON bytes."""
        frame = encode_shard_search(payload)
        assert canonical_json(decode_shard_search(frame)) == (
            canonical_json(payload)
        )

    def test_empty_hit_list_round_trips(self, payload):
        empty = dict(payload, hits=[], count=0)
        assert decode_shard_search(encode_shard_search(empty)) == empty

    def test_unicode_text_round_trips(self, payload):
        hit = dict(payload["hits"][0])
        hit["text"] = "émeute — 事件 🗞 naïve"
        hit["article_id"] = "árticle-0"
        modified = dict(payload, hits=[hit], count=1)
        assert (
            decode_shard_search(encode_shard_search(modified)) == modified
        )

    def test_frames_are_smaller_than_canonical_json(self, payload):
        assert len(encode_shard_search(payload)) < len(
            canonical_json(payload)
        )


class TestCorruption:
    def test_flipped_section_byte_fails_the_checksum(self, payload):
        frame = bytearray(encode_shard_search(payload))
        frame[-1] ^= 0xFF
        with pytest.raises(FrameError, match="checksum"):
            decode_shard_search(bytes(frame))

    def test_truncated_frame_is_rejected(self, payload):
        frame = encode_shard_search(payload)
        with pytest.raises(FrameError):
            decode_shard_search(frame[: len(frame) // 2])

    def test_wrong_magic_is_rejected(self, payload):
        with pytest.raises(FrameError, match="magic"):
            decode_shard_search(b'{"magic":"not-wilson"}\n')

    def test_json_body_is_rejected_as_a_frame(self, payload):
        with pytest.raises(FrameError):
            decode_shard_search(canonical_json(payload))


class TestNegotiation:
    @pytest.fixture(scope="class")
    def server(self, instance):
        system = RealTimeTimelineSystem()
        system.ingest(instance.corpus.articles)
        config = ServeConfig(port=0, batch_window_ms=2.0, workers=2)
        with BackgroundServer(TimelineServer(system, config)) as running:
            yield running

    def _shard_search(self, server, instance, accept=None):
        start, end = instance.corpus.window
        path = "/v1/shard/search?" + urllib.parse.urlencode(
            [
                ("q", " ".join(instance.corpus.query)),
                ("limit", "500"),
                ("start", start.isoformat()),
                ("end", end.isoformat()),
            ]
        )
        conn = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=60
        )
        try:
            headers = {"Accept": accept} if accept else {}
            conn.request("GET", path, headers=headers)
            response = conn.getresponse()
            return (
                response.status,
                response.getheader("Content-Type"),
                response.read(),
            )
        finally:
            conn.close()

    def test_accept_header_negotiates_binary_frames(
        self, server, instance
    ):
        status, content_type, raw = self._shard_search(
            server, instance, accept=RPC_CONTENT_TYPE
        )
        assert status == 200
        assert content_type == RPC_CONTENT_TYPE
        payload = decode_shard_search(raw)
        assert payload["schema"] == WIRE_SCHEMA
        assert payload["hits"]

    def test_no_accept_header_still_gets_json(self, server, instance):
        status, content_type, raw = self._shard_search(server, instance)
        assert status == 200
        assert content_type == "application/json"
        assert json.loads(raw)["schema"] == WIRE_SCHEMA

    def test_both_encodings_carry_identical_payloads(
        self, server, instance
    ):
        _, _, binary_raw = self._shard_search(
            server, instance, accept=RPC_CONTENT_TYPE
        )
        _, _, json_raw = self._shard_search(server, instance)
        assert canonical_json(decode_shard_search(binary_raw)) == (
            canonical_json(json.loads(json_raw))
        )

    def test_schema_constants_are_pinned(self):
        assert RPC_SCHEMA == "wilson.rpc/v1"
        assert RPC_CONTENT_TYPE == "application/x-wilson-rpc"
