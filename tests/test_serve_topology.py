"""Shard topologies: slice planning, export, manifests, introspection.

Pins the invariants the scatter-gather merge depends on:

* date-range planning is contiguous, disjoint and exhaustive;
* exported slices partition the corpus exactly, carry the source's
  ``index_version``, and their snapshot headers expose slice metadata
  without reading any payload;
* the manifest round-trips and its validation catches stale slices;
* ``index-info`` surfaces the slice line for topology snapshots.
"""

import datetime
import json

import pytest

from repro.cli import main as cli_main
from repro.search.engine import SearchEngine
from repro.search.index import InvertedIndex
from repro.search.snapshot import snapshot_info
from repro.serve.topology import (
    TOPOLOGY_MANIFEST,
    Topology,
    TopologyError,
    export_slices,
    plan_date_ranges,
)
from repro.tlsdata.synthetic import make_timeline17_like


def _make_index(num_dates=10, docs_per_date=3):
    index = InvertedIndex()
    base = datetime.date(2021, 3, 1)
    for day in range(num_dates):
        date = base + datetime.timedelta(days=day)
        for i in range(docs_per_date):
            index.add(
                f"event number {day} item {i} happened",
                date=date,
                publication_date=date,
                article_id=f"a{day}",
            )
    return index


@pytest.fixture(scope="module")
def engine():
    corpus = make_timeline17_like(scale=0.02, seed=11).instances[0].corpus
    engine = SearchEngine()
    engine.add_articles(corpus.articles)
    return engine


class TestPlanDateRanges:
    def test_partition_is_contiguous_disjoint_and_exhaustive(self):
        index = _make_index(num_dates=11, docs_per_date=2)
        ranges = plan_date_ranges(index, 3)
        assert len(ranges) == 3
        dates = index.dates()
        covered = []
        for start, end in ranges:
            assert start is not None and start <= end
            covered.extend(d for d in dates if start <= d <= end)
        assert covered == dates  # every date exactly once, in order

    def test_single_shard_spans_everything(self):
        index = _make_index()
        ranges = plan_date_ranges(index, 1)
        assert ranges == [(index.dates()[0], index.dates()[-1])]

    def test_more_shards_than_dates_yields_empty_tail(self):
        index = _make_index(num_dates=2)
        ranges = plan_date_ranges(index, 4)
        assert len(ranges) == 4
        non_empty = [r for r in ranges if r[0] is not None]
        assert len(non_empty) == 2
        assert ranges[2] == (None, None) and ranges[3] == (None, None)

    def test_balances_document_counts(self):
        index = _make_index(num_dates=12, docs_per_date=5)
        ranges = plan_date_ranges(index, 4)
        counts = [
            sum(
                len(index.documents_on(d))
                for d in index.dates()
                if start <= d <= end
            )
            for start, end in ranges
        ]
        assert sum(counts) == len(index)
        # 60 docs over 4 shards: every shard within one date of ideal.
        assert all(10 <= count <= 20 for count in counts)

    def test_empty_index(self):
        assert plan_date_ranges(InvertedIndex(), 2) == [
            (None, None),
            (None, None),
        ]

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            plan_date_ranges(_make_index(), 0)


class TestExportSlices:
    def test_slices_partition_the_corpus_exactly(self, engine, tmp_path):
        topology = export_slices(engine.index, tmp_path, 3)
        assert topology.num_shards == 3
        assert topology.total_documents == len(engine.index)
        assert sum(s.documents for s in topology.shards) == len(
            engine.index
        )
        seen = [g for shard in topology.shards for g in shard.doc_ids]
        assert sorted(seen) == list(range(len(engine.index)))

    def test_doc_id_mapping_points_at_identical_documents(
        self, engine, tmp_path
    ):
        topology = export_slices(engine.index, tmp_path, 2)
        for shard in topology.shards:
            slice_index = InvertedIndex.load_snapshot(shard.path)
            assert len(slice_index) == shard.documents
            for local_id, global_id in enumerate(shard.doc_ids):
                ours = slice_index.document(local_id)
                theirs = engine.index.document(global_id)
                assert ours.text == theirs.text
                assert ours.date == theirs.date
                assert ours.article_id == theirs.article_id
                assert ours.is_reference == theirs.is_reference

    def test_slices_inherit_the_source_index_version(
        self, engine, tmp_path
    ):
        topology = export_slices(engine.index, tmp_path, 2)
        assert (
            topology.source_index_version == engine.index.index_version
        )
        for shard in topology.shards:
            loaded = InvertedIndex.load_snapshot(shard.path)
            assert loaded.index_version == engine.index.index_version

    def test_additive_statistics_reconstruct_the_corpus(
        self, engine, tmp_path
    ):
        topology = export_slices(engine.index, tmp_path, 3)
        slices = [
            InvertedIndex.load_snapshot(s.path) for s in topology.shards
        ]
        assert sum(s.num_documents for s in slices) == (
            engine.index.num_documents
        )
        assert sum(s.total_length for s in slices) == (
            engine.index.total_length
        )
        token = "government"
        assert sum(s.document_frequency(token) for s in slices) == (
            engine.index.document_frequency(token)
        )

    def test_slice_headers_carry_layout_without_payload_reads(
        self, engine, tmp_path
    ):
        topology = export_slices(engine.index, tmp_path, 2)
        for shard in topology.shards:
            header = snapshot_info(shard.path)
            slice_meta = header["slice"]
            assert slice_meta["shard_id"] == shard.shard_id
            assert slice_meta["num_shards"] == 2
            assert slice_meta["start"] == shard.start.isoformat()
            assert slice_meta["end"] == shard.end.isoformat()

    def test_wider_topology_than_corpus_exports_empty_slices(
        self, tmp_path
    ):
        index = _make_index(num_dates=2, docs_per_date=1)
        topology = export_slices(index, tmp_path, 4)
        assert [s.documents for s in topology.shards] == [1, 1, 0, 0]
        empty = InvertedIndex.load_snapshot(topology.shards[3].path)
        assert len(empty) == 0
        assert empty.index_version == index.index_version


class TestManifest:
    def test_round_trip(self, engine, tmp_path):
        exported = export_slices(engine.index, tmp_path, 2)
        loaded = Topology.load(tmp_path)
        assert loaded.num_shards == exported.num_shards
        assert loaded.total_documents == exported.total_documents
        assert (
            loaded.source_index_version == exported.source_index_version
        )
        for ours, theirs in zip(loaded.shards, exported.shards):
            assert ours.doc_ids == theirs.doc_ids
            assert ours.start == theirs.start
            assert ours.end == theirs.end

    def test_window_spans_all_slices(self, engine, tmp_path):
        topology = export_slices(engine.index, tmp_path, 3)
        dates = engine.index.dates()
        assert topology.window() == (dates[0], dates[-1])

    def test_version_mismatch_is_rejected(self, engine, tmp_path):
        export_slices(engine.index, tmp_path, 2)
        manifest = tmp_path / TOPOLOGY_MANIFEST
        payload = json.loads(manifest.read_text())
        payload["source_index_version"] += 1
        manifest.write_text(json.dumps(payload))
        with pytest.raises(TopologyError, match="index_version"):
            Topology.load(tmp_path)

    def test_missing_slice_is_rejected(self, engine, tmp_path):
        topology = export_slices(engine.index, tmp_path, 2)
        (tmp_path / topology.shards[1].path).unlink()
        with pytest.raises(TopologyError, match="unreadable"):
            Topology.load(tmp_path)

    def test_missing_manifest_is_rejected(self, tmp_path):
        with pytest.raises(TopologyError, match="cannot read"):
            Topology.load(tmp_path)


class TestCliIntegration:
    def test_snapshot_shards_writes_a_loadable_topology(
        self, tmp_path, capsys
    ):
        out_dir = tmp_path / "topo"
        rc = cli_main(
            [
                "snapshot",
                "--out",
                str(out_dir),
                "--shards",
                "2",
                "--scale",
                "0.02",
            ]
        )
        assert rc == 0
        output = capsys.readouterr().out
        assert "2 shards" in output
        assert "shard 0:" in output and "shard 1:" in output
        topology = Topology.load(out_dir)
        assert topology.num_shards == 2
        assert topology.total_documents > 0

    def test_index_info_prints_the_slice_line(self, tmp_path, capsys):
        out_dir = tmp_path / "topo"
        cli_main(
            [
                "snapshot",
                "--out",
                str(out_dir),
                "--shards",
                "2",
                "--scale",
                "0.02",
            ]
        )
        capsys.readouterr()
        rc = cli_main(["index-info", str(out_dir / "shard-001.snap")])
        assert rc == 0
        output = capsys.readouterr().out
        assert "slice:         shard 1 of 2," in output

    def test_index_info_has_no_slice_line_for_plain_snapshots(
        self, tmp_path, capsys
    ):
        path = tmp_path / "plain.snap"
        cli_main(
            ["snapshot", "--out", str(path), "--scale", "0.02"]
        )
        capsys.readouterr()
        rc = cli_main(["index-info", str(path)])
        assert rc == 0
        assert "slice:" not in capsys.readouterr().out


class TestParallelDrain:
    """ShardWorkerPool.stop() drains workers concurrently.

    The old sweep waited on workers one by one against a shared
    deadline, so a hung worker burned the whole grace budget and every
    sibling behind it was SIGKILLed after ~0.1 s. The parallel drain
    grants each worker the full grace period and bounds total wall time
    by the slowest worker, not the sum.
    """

    @staticmethod
    def _spawn_worker(shard_id, replica_id, on_term):
        """A subprocess that acknowledges readiness, then acts out
        *on_term* ('exit' after a delay, or 'ignore') on SIGTERM."""
        import subprocess
        import sys

        from repro.serve.topology import ShardWorker

        if on_term == "ignore":
            body = "signal.signal(signal.SIGTERM, signal.SIG_IGN)"
        else:
            delay = float(on_term)
            body = (
                "signal.signal(signal.SIGTERM, lambda *_: ("
                f"time.sleep({delay}), sys.exit(0)))"
            )
        script = (
            "import signal, sys, time\n"
            f"{body}\n"
            "print('ready', flush=True)\n"
            "while True:\n"
            "    time.sleep(0.05)\n"
        )
        process = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            text=True,
        )
        assert process.stdout.readline().strip() == "ready"
        return ShardWorker(
            shard_id=shard_id,
            process=process,
            host="127.0.0.1",
            port=0,
            replica_id=replica_id,
        )

    @staticmethod
    def _empty_pool():
        from repro.serve.topology import ShardWorkerPool

        return ShardWorkerPool(
            Topology(
                shards=(), total_documents=0, source_index_version=0
            )
        )

    @pytest.mark.slow
    def test_drain_time_tracks_the_slowest_worker_not_the_sum(self):
        import time

        pool = self._empty_pool()
        pool.workers = [
            self._spawn_worker(shard_id, 0, on_term="0.9")
            for shard_id in range(3)
        ]
        processes = [worker.process for worker in pool.workers]
        started = time.monotonic()
        pool.stop(timeout_seconds=10.0)
        elapsed = time.monotonic() - started
        assert all(process.returncode == 0 for process in processes)
        # Sequential graceful exits would take >= 2.7 s; parallel drain
        # tracks the slowest single worker (~0.9 s) plus slack.
        assert elapsed < 2.5, f"drain took {elapsed:.2f}s"
        assert pool.workers == []

    @pytest.mark.slow
    def test_hung_worker_does_not_steal_siblings_grace(self):
        import time

        pool = self._empty_pool()
        hung = self._spawn_worker(0, 0, on_term="ignore")
        graceful = self._spawn_worker(1, 0, on_term="1.0")
        pool.workers = [hung, graceful]
        started = time.monotonic()
        pool.stop(timeout_seconds=2.0)
        elapsed = time.monotonic() - started
        # The graceful worker needs ~1.0 s of its 2.0 s grace; under the
        # old shared-deadline sweep the hung worker consumed it all and
        # the graceful sibling was SIGKILLed after ~0.1 s.
        assert graceful.process.returncode == 0
        assert hung.process.returncode != 0  # SIGKILLed past its grace
        assert elapsed < 4.0, f"drain took {elapsed:.2f}s"
