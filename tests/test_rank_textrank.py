"""Tests for TextRank sentence ranking."""

import numpy as np
import pytest

from repro.rank.textrank import textrank_bm25, textrank_scores


class TestTextrankScores:
    def test_scores_sum_to_one(self):
        similarity = np.array(
            [[0.0, 0.5, 0.2], [0.5, 0.0, 0.1], [0.2, 0.1, 0.0]]
        )
        scores = textrank_scores(similarity)
        assert scores.sum() == pytest.approx(1.0)

    def test_diagonal_ignored(self):
        with_diag = np.array([[9.0, 1.0], [1.0, 9.0]])
        without = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert np.allclose(
            textrank_scores(with_diag), textrank_scores(without)
        )

    def test_negative_similarities_clipped(self):
        similarity = np.array([[0.0, -0.5], [1.0, 0.0]])
        scores = textrank_scores(similarity)
        assert (scores >= 0).all()

    def test_central_sentence_wins(self):
        # Sentence 0 is similar to everyone; 1..3 only to 0.
        n = 4
        similarity = np.zeros((n, n))
        similarity[0, 1:] = 1.0
        similarity[1:, 0] = 1.0
        scores = textrank_scores(similarity)
        assert scores[0] == max(scores)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            textrank_scores(np.zeros((2, 3)))


class TestTextrankBm25:
    SENTENCES = [
        "The ceasefire collapsed near the border after artillery fire.",
        "Artillery fire broke the ceasefire along the border.",
        "The ceasefire collapse was confirmed by border officials.",
        "Completely unrelated sports results were announced.",
    ]

    def test_empty_input(self):
        assert textrank_bm25([]) == []

    def test_single_sentence(self):
        assert textrank_bm25(["Only one."]) == [0]

    def test_returns_permutation(self):
        order = textrank_bm25(self.SENTENCES)
        assert sorted(order) == list(range(len(self.SENTENCES)))

    def test_central_theme_ranked_above_outlier(self):
        order = textrank_bm25(self.SENTENCES)
        # The unrelated sentence must rank last.
        assert order[-1] == 3

    def test_deterministic(self):
        assert textrank_bm25(self.SENTENCES) == textrank_bm25(
            self.SENTENCES
        )
