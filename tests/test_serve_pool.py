"""The keep-alive connection pool: reuse, retirement, reaping, retry.

Drives :mod:`repro.serve.pool` against a scriptable in-test asyncio
HTTP server so every keep-alive edge case is deterministic:

* sequential pooled requests reuse one connection (``pool.opens`` /
  ``pool.reuses`` accounting);
* a response without ``Content-Length`` is read to EOF and its
  connection retired, never parked (the keep-alive hang regression);
* a parked connection the server closed is transparently retried on a
  fresh one -- invisible to the caller;
* a failure on a *fresh* connection propagates (real endpoint failure);
* idle connections are reaped past the timeout (injected clock) and
  the per-endpoint idle bound holds.
"""

import asyncio

import pytest

from repro.obs.metrics import Metrics
from repro.serve import ConnectionPool
from repro.serve.pool import request


class ScriptedServer:
    """An asyncio HTTP/1.1 server whose responses the test scripts.

    Each accepted connection serves requests until its script is
    exhausted or the script entry says to close. ``connections`` counts
    accepts -- the number the pool could not avoid.
    """

    def __init__(self):
        self.connections = 0
        self.requests = 0
        self._server = None
        self.port = None
        #: When set, responses omit Content-Length and end with EOF.
        self.chunk_free_mode = False
        #: When set, the server closes each connection after one
        #: response despite answering keep-alive requests.
        self.close_after_response = False

    async def start(self):
        self._server = await asyncio.start_server(
            self._serve, "127.0.0.1", 0
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self):
        self._server.close()
        await self._server.wait_closed()

    async def _serve(self, reader, writer):
        self.connections += 1
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                length = 0
                for line in head.decode("latin-1").split("\r\n"):
                    if line.lower().startswith("content-length:"):
                        length = int(line.split(":", 1)[1])
                if length:
                    await reader.readexactly(length)
                self.requests += 1
                body = b'{"n": %d}' % self.requests
                if self.chunk_free_mode:
                    writer.write(
                        b"HTTP/1.1 200 OK\r\n"
                        b"Content-Type: application/json\r\n"
                        b"Connection: close\r\n\r\n" + body
                    )
                    await writer.drain()
                    writer.close()
                    return
                writer.write(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: %d\r\n\r\n%b" % (len(body), body)
                )
                await writer.drain()
                if self.close_after_response:
                    writer.close()
                    return
        finally:
            try:
                writer.close()
            except ConnectionError:
                pass


def run(coroutine):
    return asyncio.run(coroutine)


async def _with_server(test):
    server = ScriptedServer()
    await server.start()
    try:
        return await test(server)
    finally:
        await server.stop()


class TestKeepAliveReuse:
    def test_sequential_requests_share_one_connection(self):
        async def test(server):
            metrics = Metrics()
            pool = ConnectionPool(metrics=metrics)
            for _ in range(3):
                status, _, body = await request(
                    "127.0.0.1", server.port, "GET", "/x", pool=pool
                )
                assert status == 200
            pool.close()
            assert server.connections == 1
            snapshot = metrics.snapshot()["counters"]
            assert snapshot["pool.opens"] == 1
            assert snapshot["pool.reuses"] == 2

        run(_with_server(test))

    def test_unpooled_requests_open_per_call(self):
        async def test(server):
            for _ in range(2):
                status, _, _ = await request(
                    "127.0.0.1", server.port, "GET", "/x"
                )
                assert status == 200
            assert server.connections == 2

        run(_with_server(test))

    def test_idle_bound_closes_excess_connections(self):
        async def test(server):
            metrics = Metrics()
            pool = ConnectionPool(
                max_idle_per_endpoint=1, metrics=metrics
            )
            # Two concurrent checkouts force two opens; only one may
            # park on release.
            a = await pool.acquire("127.0.0.1", server.port)
            b = await pool.acquire("127.0.0.1", server.port)
            pool.release(a, reusable=True)
            pool.release(b, reusable=True)
            assert pool.idle_connections == 1
            snapshot = metrics.snapshot()["counters"]
            assert snapshot["pool.opens"] == 2
            assert snapshot["pool.retired"] == 1
            pool.close()
            assert pool.idle_connections == 0

        run(_with_server(test))


class TestMissingContentLength:
    def test_body_is_read_to_eof_and_connection_retired(self):
        """The keep-alive hang regression: a delimiter-free response
        must still deliver its body, and its connection must never be
        parked for the next request to hang on."""

        async def test(server):
            server.chunk_free_mode = True
            metrics = Metrics()
            pool = ConnectionPool(metrics=metrics)
            status, headers, body = await request(
                "127.0.0.1", server.port, "GET", "/x", pool=pool
            )
            assert status == 200
            assert body == b'{"n": 1}'
            assert "content-length" not in headers
            assert pool.idle_connections == 0
            snapshot = metrics.snapshot()["counters"]
            assert snapshot["pool.retired"] == 1
            # The next pooled request must open fresh and still work.
            status, _, body = await request(
                "127.0.0.1", server.port, "GET", "/x", pool=pool
            )
            assert status == 200
            assert body == b'{"n": 2}'
            assert server.connections == 2
            pool.close()

        run(_with_server(test))


class TestStaleReuse:
    def test_server_closed_parked_connection_is_retried(self):
        async def test(server):
            server.close_after_response = True
            pool = ConnectionPool()
            status, _, _ = await request(
                "127.0.0.1", server.port, "GET", "/x", pool=pool
            )
            assert status == 200
            # The server hung up after responding, but the close may
            # not have surfaced yet; the parked connection is stale.
            await asyncio.sleep(0.05)
            status, _, _ = await request(
                "127.0.0.1", server.port, "GET", "/x", pool=pool
            )
            assert status == 200
            assert server.requests == 2
            pool.close()

        run(_with_server(test))

    def test_fresh_connection_failure_propagates(self):
        async def test(server):
            port = server.port
            await server.stop()
            pool = ConnectionPool()
            with pytest.raises((ConnectionError, OSError)):
                await request("127.0.0.1", port, "GET", "/x", pool=pool)
            pool.close()
            # _with_server's stop() needs a live server object.
            await server.start()

        run(_with_server(test))


class TestIdleReaping:
    def test_idle_connections_reap_past_the_timeout(self):
        async def test(server):
            now = [0.0]
            metrics = Metrics()
            pool = ConnectionPool(
                idle_timeout_seconds=30.0,
                metrics=metrics,
                clock=lambda: now[0],
            )
            status, _, _ = await request(
                "127.0.0.1", server.port, "GET", "/x", pool=pool
            )
            assert status == 200
            assert pool.idle_connections == 1
            now[0] = 29.0
            assert pool.reap_idle() == 0
            assert pool.idle_connections == 1
            now[0] = 30.0
            assert pool.reap_idle() == 1
            assert pool.idle_connections == 0
            snapshot = metrics.snapshot()["counters"]
            assert snapshot["pool.idle_reaped"] == 1
            gauges = metrics.snapshot()["gauges"]
            assert gauges["pool.idle_connections"] == 0
            pool.close()

        run(_with_server(test))


class TestValidation:
    def test_bad_configuration_is_rejected(self):
        with pytest.raises(ValueError):
            ConnectionPool(max_idle_per_endpoint=0)
        with pytest.raises(ValueError):
            ConnectionPool(idle_timeout_seconds=0.0)
