"""Tests for the simulated journalist panel (Table 9)."""

import pytest

from repro.evaluation.journalist import (
    JournalistPanel,
    JudgeWeights,
    readability_score,
)
from repro.tlsdata.types import Timeline
from tests.conftest import d


def _reference():
    return Timeline(
        {
            d("2020-01-01"): [
                "Rebels seized the stronghold outside the northern city."
            ],
            d("2020-01-10"): [
                "The ceasefire collapsed near the border after artillery fire."
            ],
        }
    )


def _good_copy():
    return Timeline(
        {
            d("2020-01-01"): [
                "Rebels seized the stronghold outside the northern city."
            ],
            d("2020-01-10"): [
                "The ceasefire collapsed near the border after artillery fire."
            ],
        }
    )


def _bad_candidate():
    return Timeline(
        {
            d("2020-03-03"): ["Completely unrelated sports scores today."],
            d("2020-04-04"): ["Weather remained mild across the region."],
        }
    )


class TestReadability:
    def test_empty_timeline(self):
        assert readability_score(Timeline()) == 0.0

    def test_ideal_length_scores_one(self):
        timeline = Timeline(
            {d("2020-01-01"): [
                "Rebels seized the stronghold outside the city on Friday."
            ]}
        )
        assert readability_score(timeline) == pytest.approx(1.0)

    def test_fragment_penalised(self):
        fragment = Timeline({d("2020-01-01"): ["Rebels."]})
        good = Timeline(
            {d("2020-01-01"): [
                "Rebels seized the stronghold outside the city on Friday."
            ]}
        )
        assert readability_score(fragment) < readability_score(good)

    def test_run_on_penalised(self):
        run_on = Timeline(
            {d("2020-01-01"): [" ".join(["word"] * 120)]}
        )
        assert readability_score(run_on) < 0.5


class TestPanel:
    def test_good_copy_ranked_first(self):
        panel = JournalistPanel(seed=1)
        ranks = panel.rank(
            {"good": _good_copy(), "bad": _bad_candidate()},
            _reference(),
        )
        assert ranks["good"] == 1
        assert ranks["bad"] == 2

    def test_ranks_are_permutation(self):
        panel = JournalistPanel(seed=1)
        candidates = {
            "a": _good_copy(),
            "b": _bad_candidate(),
            "c": Timeline({d("2020-01-01"): ["Rebels seized a stronghold."]}),
        }
        ranks = panel.rank(candidates, _reference())
        assert sorted(ranks.values()) == [1, 2, 3]

    def test_deterministic(self):
        candidates = {"a": _good_copy(), "b": _bad_candidate()}
        r1 = JournalistPanel(seed=5).rank(candidates, _reference())
        r2 = JournalistPanel(seed=5).rank(candidates, _reference())
        assert r1 == r2

    def test_empty_candidates(self):
        assert JournalistPanel().rank({}, _reference()) == {}

    def test_study_accumulates_ranks(self):
        panel = JournalistPanel(seed=2)
        evaluations = [
            {"a": _good_copy(), "b": _bad_candidate()},
            {"a": _good_copy(), "b": _bad_candidate()},
        ]
        references = [_reference(), _reference()]
        ranks = panel.evaluate_study(evaluations, references)
        assert len(ranks["a"]) == 2
        assert ranks["a"] == [1, 1]

    def test_study_validates_lengths(self):
        with pytest.raises(ValueError):
            JournalistPanel().evaluate_study([{}], [])

    def test_blended_score_orders_quality(self):
        panel = JournalistPanel(seed=0)
        good = panel.blended_score(_good_copy(), _reference())
        bad = panel.blended_score(_bad_candidate(), _reference())
        assert good > bad

    def test_custom_weights(self):
        weights = JudgeWeights(content=1.0, coverage=0.0, readability=0.0)
        panel = JournalistPanel(weights=weights)
        score = panel.blended_score(_good_copy(), _reference())
        assert score == pytest.approx(1.0)
