"""Failure-injection and degenerate-input robustness tests.

These exercise the paths a downstream user hits with messy data:
corrupted files, unicode text, degenerate corpora (one day, one
sentence, all-identical sentences), and extreme parameter choices.
"""

import json

import pytest

from repro.core.pipeline import Wilson, WilsonConfig
from repro.core.variants import wilson_full
from repro.evaluation.timeline_rouge import concat_rouge
from repro.search.engine import SearchEngine
from repro.search.query import SearchQuery
from repro.tlsdata.loaders import load_corpus, save_corpus
from repro.tlsdata.types import Article, Corpus, DatedSentence, Timeline
from tests.conftest import d


class TestDegeneratePools:
    def test_single_sentence_corpus(self):
        pool = [DatedSentence(d("2020-01-01"), "Only one sentence here.",
                              d("2020-01-01"))]
        timeline = wilson_full(5, 3).summarize(pool)
        assert len(timeline) == 1
        assert timeline.num_sentences() == 1

    def test_all_sentences_same_day(self):
        day = d("2020-01-01")
        pool = [
            DatedSentence(day, f"Distinct sentence number {i} here.", day)
            for i in range(10)
        ]
        timeline = wilson_full(5, 2).summarize(pool)
        assert timeline.dates == [day]
        assert len(timeline.summary(day)) <= 2

    def test_all_identical_sentences(self):
        day1, day2 = d("2020-01-01"), d("2020-01-05")
        text = "The exact same sentence repeats everywhere."
        pool = [
            DatedSentence(day, text, day)
            for day in (day1, day1, day2, day2)
        ]
        timeline = wilson_full(2, 2).summarize(pool)
        # Post-processing must not crash on total redundancy, and must
        # keep at most one copy overall.
        assert timeline.num_sentences() >= 1
        assert timeline.num_sentences() <= 2

    def test_requesting_more_dates_than_exist(self):
        pool = [
            DatedSentence(d("2020-01-01"), "Alpha sentence one.",
                          d("2020-01-01")),
            DatedSentence(d("2020-01-05"), "Beta sentence two.",
                          d("2020-01-05")),
        ]
        timeline = wilson_full(50, 5).summarize(pool)
        assert len(timeline) <= 2

    def test_no_references_at_all(self):
        """A corpus without a single date mention still yields a timeline
        (the graph has nodes but no edges; restart mass decides)."""
        pool = [
            DatedSentence(
                d("2020-01-01") .replace(day=1 + i),
                f"Plain sentence {i} with no dates.",
                d("2020-01-01").replace(day=1 + i),
            )
            for i in range(6)
        ]
        timeline = wilson_full(3, 1).summarize(pool)
        assert 1 <= len(timeline) <= 3


class TestUnicodeAndNoise:
    def test_unicode_text_end_to_end(self):
        corpus = Corpus(
            topic="unicode",
            query=("élysée",),
            start=d("2021-01-01"),
            end=d("2021-01-31"),
            articles=[
                Article(
                    "u1",
                    d("2021-01-05"),
                    text=(
                        "Le sommet de l'Élysée s'est tenu hier — « un "
                        "succès », selon Paris. Das Treffen fand am "
                        "January 4, 2021 statt."
                    ),
                ),
            ],
        )
        timeline = Wilson(
            WilsonConfig(num_dates=2, sentences_per_date=1)
        ).summarize_corpus(corpus)
        assert len(timeline) >= 1

    def test_control_characters_tolerated(self):
        pool = [
            DatedSentence(d("2020-01-01"), "Normal sentence here.",
                          d("2020-01-01")),
            DatedSentence(d("2020-01-01"), "Weird\x00characters\x01here.",
                          d("2020-01-01")),
        ]
        timeline = wilson_full(1, 2).summarize(pool)
        assert len(timeline) == 1

    def test_very_long_sentence(self):
        long_sentence = " ".join(f"token{i}" for i in range(3000)) + "."
        pool = [
            DatedSentence(d("2020-01-01"), long_sentence, d("2020-01-01")),
            DatedSentence(d("2020-01-01"), "A short sentence too.",
                          d("2020-01-01")),
        ]
        timeline = wilson_full(1, 2).summarize(pool)
        assert timeline.num_sentences() >= 1


class TestCorruptFiles:
    def test_corpus_with_blank_lines(self, tmp_path):
        corpus = Corpus(
            topic="x",
            articles=[Article("a", d("2020-01-01"), text="One line.")],
        )
        path = tmp_path / "corpus.jsonl"
        save_corpus(corpus, path)
        content = path.read_text(encoding="utf-8")
        path.write_text("\n" + content + "\n\n", encoding="utf-8")
        loaded = load_corpus(path)
        assert len(loaded.articles) == 1

    def test_corpus_with_garbage_line_raises_cleanly(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text(
            '{"header": {"topic": "x"}}\nNOT JSON AT ALL\n',
            encoding="utf-8",
        )
        with pytest.raises(json.JSONDecodeError):
            load_corpus(path)

    def test_index_load_skips_blank_lines(self, tmp_path):
        from repro.search.index import InvertedIndex

        index = InvertedIndex()
        index.add("A sentence.", d("2020-01-01"), d("2020-01-01"))
        path = tmp_path / "index.jsonl"
        index.save(path)
        path.write_text(
            path.read_text(encoding="utf-8") + "\n\n", encoding="utf-8"
        )
        restored = InvertedIndex.load(path)
        assert restored.num_documents == 1


class TestExtremeParameters:
    def test_threshold_near_zero_still_terminates(self):
        pool = [
            DatedSentence(d("2020-01-01"), "Shared topical words here.",
                          d("2020-01-01")),
            DatedSentence(d("2020-01-05"), "Shared topical words again.",
                          d("2020-01-05")),
        ]
        wilson = Wilson(
            WilsonConfig(
                num_dates=2,
                sentences_per_date=2,
                redundancy_threshold=0.01,
            )
        )
        timeline = wilson.summarize(pool)
        # Nearly everything is "redundant"; the loop must still end.
        assert timeline.num_sentences() >= 1

    def test_huge_sentence_budget(self, tiny_pool):
        timeline = wilson_full(5, 100).summarize(tiny_pool)
        for date in timeline.dates:
            assert len(timeline.summary(date)) <= 100

    def test_empty_query_everywhere(self, tiny_pool):
        timeline = wilson_full(5, 1).summarize(tiny_pool, query=())
        assert len(timeline) >= 1


class TestSearchRobustness:
    def test_query_with_only_punctuation(self):
        engine = SearchEngine()
        engine.add_article(
            Article("a", d("2020-01-01"), text="Something happened.")
        )
        assert engine.search(SearchQuery(keywords=("!!!", "..."))) == []

    def test_evaluation_of_empty_timeline(self, tiny_instance):
        score = concat_rouge(Timeline(), tiny_instance.reference, 2)
        assert score.f1 == 0.0
