"""The replica health state machine and P2C selector.

Unit tests pin the documented lifecycle -- healthy -> suspect -> dead on
consecutive failures, exponential-backoff re-probing, re-admission only
after consecutive probe successes -- and hypothesis property tests pin
the two availability invariants the router's failover rests on:

* the selector never returns a dead replica while a live sibling
  exists, under *any* health history;
* power-of-two-choices keeps load spread across equal-health replicas
  bounded;
* no event sequence (success / failure / probe-ok / probe-fail) can
  drive the machine into an invalid state.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import InflightTracker
from repro.serve.health import (
    DEAD,
    HEALTHY,
    REPLICA_METRIC_NAMES,
    SUSPECT,
    HealthConfig,
    ReplicaHealth,
    replica_keys,
)
from repro.obs.metrics import Metrics


class FakeClock:
    """A manually advanced monotonic clock for deterministic backoff."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _tracker(num_shards=1, replicas=2, config=None, clock=None, seed=0):
    return ReplicaHealth(
        replica_keys(num_shards, replicas),
        config=config,
        clock=clock or FakeClock(),
        rng=random.Random(seed),
    )


class TestStateMachine:
    def test_replicas_start_healthy(self):
        health = _tracker(num_shards=2, replicas=2)
        assert health.counts() == {HEALTHY: 4, SUSPECT: 0, DEAD: 0}

    def test_failures_walk_healthy_suspect_dead(self):
        health = _tracker(config=HealthConfig(dead_after=3))
        key = (0, 0)
        health.record_failure(key)
        assert health.state(key) == SUSPECT
        health.record_failure(key)
        assert health.state(key) == SUSPECT
        health.record_failure(key)
        assert health.state(key) == DEAD

    def test_passive_success_restores_healthy(self):
        health = _tracker()
        key = (0, 0)
        for _ in range(3):
            health.record_failure(key)
        assert health.state(key) == DEAD
        health.record_success(key)
        assert health.state(key) == HEALTHY

    def test_dead_needs_consecutive_probe_successes(self):
        health = _tracker(config=HealthConfig(readmit_after=2))
        key = (0, 0)
        for _ in range(3):
            health.record_failure(key)
        health.record_probe(key, ok=True)
        assert health.state(key) == DEAD  # one win is not re-admission
        health.record_probe(key, ok=False)  # streak broken
        health.record_probe(key, ok=True)
        assert health.state(key) == DEAD
        health.record_probe(key, ok=True)
        assert health.state(key) == HEALTHY

    def test_suspect_recovers_on_one_probe(self):
        health = _tracker()
        key = (0, 0)
        health.record_failure(key)
        assert health.state(key) == SUSPECT
        health.record_probe(key, ok=True)
        assert health.state(key) == HEALTHY

    def test_probe_backoff_doubles_to_the_max(self):
        clock = FakeClock()
        config = HealthConfig(
            probe_backoff_seconds=0.5, probe_backoff_max_seconds=2.0
        )
        health = _tracker(config=config, clock=clock)
        key = (0, 0)
        health.record_failure(key)
        assert health.due_probes() == []  # backoff not yet elapsed
        clock.advance(0.5)
        assert health.due_probes() == [key]
        health.record_probe(key, ok=False)  # backoff doubles to 1.0
        clock.advance(0.5)
        assert health.due_probes() == []
        clock.advance(0.5)
        assert health.due_probes() == [key]
        health.record_probe(key, ok=False)  # 2.0
        health.record_probe(key, ok=False)  # capped at 2.0
        clock.advance(1.99)
        assert health.due_probes() == []
        clock.advance(4.0)
        assert health.due_probes() == [key]

    def test_healthy_replicas_are_never_due_probes(self):
        clock = FakeClock()
        health = _tracker(num_shards=2, replicas=2, clock=clock)
        clock.advance(1000.0)
        assert health.due_probes() == []

    def test_shard_alive_tracks_dead_replicas(self):
        health = _tracker(replicas=2)
        for _ in range(3):
            health.record_failure((0, 0))
        assert health.shard_alive(0)
        for _ in range(3):
            health.record_failure((0, 1))
        assert not health.shard_alive(0)

    def test_duplicate_or_empty_keys_are_rejected(self):
        with pytest.raises(ValueError):
            ReplicaHealth([])
        with pytest.raises(ValueError):
            ReplicaHealth([(0, 0), (0, 0)])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HealthConfig(dead_after=0)
        with pytest.raises(ValueError):
            HealthConfig(suspect_after=0)
        with pytest.raises(ValueError):
            HealthConfig(readmit_after=0)
        with pytest.raises(ValueError):
            HealthConfig(probe_backoff_seconds=0.0)
        with pytest.raises(ValueError):
            HealthConfig(
                probe_backoff_seconds=2.0, probe_backoff_max_seconds=1.0
            )

    def test_metrics_stay_inside_the_registry(self):
        metrics = Metrics()
        health = ReplicaHealth(
            replica_keys(1, 2), metrics=metrics, clock=FakeClock()
        )
        for _ in range(3):
            health.record_failure((0, 0))
        health.record_probe((0, 0), ok=False)
        health.record_probe((0, 0), ok=True)
        health.record_probe((0, 0), ok=True)
        health.record_success((0, 1))
        snapshot = metrics.snapshot()
        emitted = set(snapshot["counters"]) | set(snapshot["gauges"])
        assert emitted <= set(REPLICA_METRIC_NAMES)
        assert snapshot["counters"]["replica.deaths"] == 1
        assert snapshot["counters"]["replica.readmissions"] == 1
        assert snapshot["gauges"]["replica.healthy"] == 2.0


class TestSelection:
    def test_single_replica_is_always_chosen(self):
        health = _tracker(replicas=1)
        for _ in range(3):
            health.record_failure((0, 0))
        assert health.choose(0) == (0, 0)  # last resort beats nothing

    def test_dead_replica_is_avoided(self):
        health = _tracker(replicas=2)
        for _ in range(3):
            health.record_failure((0, 0))
        for _ in range(50):
            assert health.choose(0) == (0, 1)

    def test_suspect_ranks_behind_healthy_but_before_dead(self):
        health = _tracker(replicas=3)
        health.record_failure((0, 0))  # suspect
        for _ in range(3):
            health.record_failure((0, 2))  # dead
        for _ in range(50):
            assert health.choose(0) == (0, 1)
        health.record_failure((0, 1))  # now both 0 and 1 suspect
        for _ in range(50):
            assert health.choose(0) in {(0, 0), (0, 1)}

    def test_exclusion_falls_back_to_none(self):
        health = _tracker(replicas=2)
        assert (
            health.choose(0, frozenset({(0, 0), (0, 1)})) is None
        )
        assert health.choose(0, frozenset({(0, 0)})) == (0, 1)

    def test_p2c_prefers_the_less_loaded_replica(self):
        health = _tracker(replicas=2)
        health.inflight.acquire((0, 0))
        health.inflight.acquire((0, 0))
        for _ in range(50):
            assert health.choose(0) == (0, 1)

    def test_two_replica_spread_is_at_most_one(self):
        # With R=2, P2C degenerates to strict least-loaded: after any
        # number of acquires the counts differ by at most one.
        health = _tracker(replicas=2, seed=3)
        for _ in range(101):
            key = health.choose(0)
            health.inflight.acquire(key)
            counts = health.inflight.snapshot()
            assert abs(counts[(0, 0)] - counts[(0, 1)]) <= 1


class TestInflightTracker:
    def test_acquire_release_roundtrip(self):
        tracker = InflightTracker([(0, 0), (0, 1)])
        tracker.acquire((0, 0))
        tracker.acquire((0, 0))
        assert tracker.get((0, 0)) == 2
        tracker.release((0, 0))
        assert tracker.snapshot() == {(0, 0): 1, (0, 1): 0}

    def test_release_below_zero_is_an_error(self):
        tracker = InflightTracker([(0, 0)])
        with pytest.raises(RuntimeError):
            tracker.release((0, 0))

    def test_empty_or_duplicate_keys_are_rejected(self):
        with pytest.raises(ValueError):
            InflightTracker([])
        with pytest.raises(ValueError):
            InflightTracker([(0, 0), (0, 0)])


# -- hypothesis properties -----------------------------------------------------

#: One replica-health event: (kind, replica index). Indices are mapped
#: onto the tracker's key list modulo its size.
_EVENTS = st.lists(
    st.tuples(
        st.sampled_from(
            ["success", "failure", "probe_ok", "probe_fail", "tick"]
        ),
        st.integers(min_value=0, max_value=63),
    ),
    max_size=80,
)


def _apply(health, clock, event, keys):
    kind, index = event
    key = keys[index % len(keys)]
    if kind == "success":
        health.record_success(key)
    elif kind == "failure":
        health.record_failure(key)
    elif kind == "probe_ok":
        health.record_probe(key, ok=True)
    elif kind == "probe_fail":
        health.record_probe(key, ok=False)
    else:
        clock.advance(0.75)


@settings(deadline=None, max_examples=200)
@given(
    events=_EVENTS,
    replicas=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_any_event_sequence_keeps_the_machine_valid(
    events, replicas, seed
):
    """Invariants hold after every event, whatever the history."""
    clock = FakeClock()
    health = ReplicaHealth(
        replica_keys(2, replicas),
        clock=clock,
        rng=random.Random(seed),
    )
    keys = list(health.replicas)
    for event in events:
        _apply(health, clock, event, keys)
        health.check_invariants()
        counts = health.counts()
        assert sum(counts.values()) == len(keys)


@settings(deadline=None, max_examples=200)
@given(
    events=_EVENTS,
    replicas=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_selection_never_picks_dead_over_a_live_sibling(
    events, replicas, seed
):
    """The availability invariant under arbitrary health histories."""
    clock = FakeClock()
    health = ReplicaHealth(
        replica_keys(1, replicas),
        clock=clock,
        rng=random.Random(seed),
    )
    keys = list(health.replicas)
    for event in events:
        _apply(health, clock, event, keys)
        chosen = health.choose(0)
        assert chosen is not None
        if health.state(chosen) == DEAD:
            assert all(health.state(key) == DEAD for key in keys)


@settings(deadline=None, max_examples=100)
@given(
    replicas=st.integers(min_value=2, max_value=6),
    rounds=st.integers(min_value=1, max_value=300),
)
def test_p2c_load_spread_stays_bounded(replicas, rounds):
    """Equal-health replicas accumulate load within a small band.

    Deterministic given (replicas, rounds): the tracker's RNG is
    seeded, so hypothesis explores shapes, not coin flips. Strict
    least-loaded would give spread <= 1; sampling two of R leaves a
    small slack that stays far below the uniform-random drift.
    """
    health = ReplicaHealth(
        replica_keys(1, replicas), rng=random.Random(1234)
    )
    for _ in range(rounds):
        key = health.choose(0)
        health.inflight.acquire(key)
    counts = health.inflight.snapshot().values()
    assert max(counts) - min(counts) <= 4


@settings(deadline=None, max_examples=100)
@given(
    events=_EVENTS,
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_choose_respects_exclusions_or_returns_none(events, seed):
    clock = FakeClock()
    health = ReplicaHealth(
        replica_keys(1, 3), clock=clock, rng=random.Random(seed)
    )
    keys = list(health.replicas)
    for event in events:
        _apply(health, clock, event, keys)
    for excluded in itertools.chain.from_iterable(
        itertools.combinations(keys, size) for size in range(len(keys) + 1)
    ):
        chosen = health.choose(0, frozenset(excluded))
        if len(excluded) == len(keys):
            assert chosen is None
        else:
            assert chosen is not None and chosen not in excluded
