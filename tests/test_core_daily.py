"""Tests for daily summarisation (Section 2.3)."""

import pytest

from repro.core.daily import DailySummarizer, RankedDay, group_by_date
from repro.tlsdata.types import DatedSentence
from tests.conftest import d


class TestRankedDay:
    def test_peek_and_pop(self):
        day = RankedDay(d("2020-01-01"), ["best", "second"])
        assert day.peek() == "best"
        assert day.pop() == "best"
        assert day.peek() == "second"

    def test_exhaustion(self):
        day = RankedDay(d("2020-01-01"), ["only"])
        day.pop()
        assert day.exhausted
        with pytest.raises(IndexError):
            day.peek()
        with pytest.raises(IndexError):
            day.pop()

    def test_remaining(self):
        day = RankedDay(d("2020-01-01"), ["a", "b", "c"])
        day.pop()
        assert day.remaining() == 2


class TestGroupByDate:
    def test_groups_and_dedupes(self):
        pool = [
            DatedSentence(d("2020-01-01"), "alpha", d("2020-01-01")),
            DatedSentence(d("2020-01-01"), "alpha", d("2020-01-02")),
            DatedSentence(d("2020-01-01"), "beta", d("2020-01-01")),
            DatedSentence(d("2020-01-02"), "alpha", d("2020-01-02")),
        ]
        grouped = group_by_date(pool)
        assert grouped[d("2020-01-01")] == ["alpha", "beta"]
        # Same text may appear on a *different* date (multi-date sentences).
        assert grouped[d("2020-01-02")] == ["alpha"]

    def test_empty(self):
        assert group_by_date([]) == {}


class TestDailySummarizer:
    SENTENCES = [
        "The ceasefire collapsed near the border after artillery fire.",
        "Artillery fire broke the ceasefire along the border.",
        "The ceasefire collapse was confirmed by border officials.",
        "Unrelated sports scores were reported in the capital.",
    ]

    def test_rank_day_orders_best_first(self):
        summarizer = DailySummarizer()
        ranked = summarizer.rank_day(d("2020-01-01"), self.SENTENCES)
        assert ranked.date == d("2020-01-01")
        assert set(ranked.sentences) == set(self.SENTENCES)
        assert ranked.sentences[-1] == self.SENTENCES[3]

    def test_truncates_heavy_days(self):
        summarizer = DailySummarizer(max_sentences_per_day=2)
        ranked = summarizer.rank_day(
            d("2020-01-01"), self.SENTENCES
        )
        assert len(ranked.sentences) == 2

    def test_rank_days_skips_empty_dates(self):
        pool = [
            DatedSentence(d("2020-01-01"), text, d("2020-01-01"))
            for text in self.SENTENCES
        ]
        summarizer = DailySummarizer()
        ranked = summarizer.rank_days(
            pool, [d("2020-01-01"), d("2020-01-05")]
        )
        assert len(ranked) == 1
        assert ranked[0].date == d("2020-01-01")

    def test_rank_days_sorted_by_date(self):
        pool = [
            DatedSentence(d("2020-01-02"), "beta one here.", d("2020-01-02")),
            DatedSentence(d("2020-01-01"), "alpha one here.", d("2020-01-01")),
        ]
        ranked = DailySummarizer().rank_days(
            pool, [d("2020-01-02"), d("2020-01-01")]
        )
        assert [r.date for r in ranked] == [
            d("2020-01-01"), d("2020-01-02"),
        ]


class TestParallelRankDays:
    def _pool(self):
        sentences = [
            "The ceasefire collapsed near the border after artillery fire.",
            "Artillery fire broke the ceasefire along the border.",
            "Rebels seized the stronghold outside the northern city.",
            "The stronghold fell after a night of heavy shelling.",
            "The vaccine rollout reached rural clinics this week.",
            "Clinics received fresh vaccine shipments for the rollout.",
        ]
        pool = []
        for index, text in enumerate(sentences):
            date = d("2020-01-01") if index < 2 else (
                d("2020-01-05") if index < 4 else d("2020-01-09")
            )
            pool.append(DatedSentence(date, text, date))
        return pool

    def test_parallel_matches_sequential(self):
        pool = self._pool()
        dates = [d("2020-01-01"), d("2020-01-05"), d("2020-01-09")]
        sequential = DailySummarizer(workers=1).rank_days(pool, dates)
        parallel = DailySummarizer(workers=4).rank_days(pool, dates)
        assert [r.date for r in sequential] == [r.date for r in parallel]
        assert [r.sentences for r in sequential] == [
            r.sentences for r in parallel
        ]

    def test_parallel_single_day_short_circuits(self):
        pool = self._pool()
        ranked = DailySummarizer(workers=8).rank_days(
            pool, [d("2020-01-01")]
        )
        assert len(ranked) == 1

    def test_wilson_parallel_config(self, tiny_pool, tiny_instance):
        from repro.core.pipeline import Wilson, WilsonConfig

        sequential = Wilson(
            WilsonConfig(num_dates=6, sentences_per_date=1)
        ).summarize(tiny_pool, query=tiny_instance.corpus.query)
        parallel = Wilson(
            WilsonConfig(num_dates=6, sentences_per_date=1,
                         daily_workers=4)
        ).summarize(tiny_pool, query=tiny_instance.corpus.query)
        assert sequential == parallel
