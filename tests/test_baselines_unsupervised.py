"""Tests for the unsupervised baselines (Random, Chieu, MEAD, ETS, etc.)."""

import pytest

from repro.baselines import (
    ChieuBaseline,
    EtsBaseline,
    EvolutionBaseline,
    MeadBaseline,
    RandomBaseline,
    UniformDateBaseline,
)
from repro.baselines.base import date_volumes, group_texts_by_date
from repro.tlsdata.types import DatedSentence
from tests.conftest import d

ALL_UNSUPERVISED = [
    RandomBaseline(seed=1),
    ChieuBaseline(),
    MeadBaseline(),
    EtsBaseline(seed=1),
    EvolutionBaseline(),
    UniformDateBaseline(),
]


class TestBaseHelpers:
    def test_group_texts_dedupes_within_date(self):
        pool = [
            DatedSentence(d("2020-01-01"), "x", d("2020-01-01")),
            DatedSentence(d("2020-01-01"), "x", d("2020-01-02")),
        ]
        assert group_texts_by_date(pool) == {d("2020-01-01"): ["x"]}

    def test_date_volumes_sorted_heaviest_first(self):
        pool = [
            DatedSentence(d("2020-01-01"), "a", d("2020-01-01")),
            DatedSentence(d("2020-01-02"), "b", d("2020-01-02")),
            DatedSentence(d("2020-01-02"), "c", d("2020-01-02")),
        ]
        volumes = date_volumes(pool)
        assert volumes[0] == (d("2020-01-02"), 2)


class TestContracts:
    """Every baseline must satisfy the generation contract."""

    @pytest.mark.parametrize(
        "method", ALL_UNSUPERVISED, ids=lambda m: m.name
    )
    def test_respects_date_budget(self, method, tiny_pool):
        timeline = method.generate(tiny_pool, 5, 1)
        assert len(timeline) <= 5

    @pytest.mark.parametrize(
        "method", ALL_UNSUPERVISED, ids=lambda m: m.name
    )
    def test_respects_sentence_budget(self, method, tiny_pool):
        timeline = method.generate(tiny_pool, 4, 2)
        for date in timeline.dates:
            assert len(timeline.summary(date)) <= 2

    @pytest.mark.parametrize(
        "method", ALL_UNSUPERVISED, ids=lambda m: m.name
    )
    def test_empty_pool(self, method):
        assert len(method.generate([], 3, 1)) == 0

    @pytest.mark.parametrize(
        "method", ALL_UNSUPERVISED, ids=lambda m: m.name
    )
    def test_sentences_come_from_pool(self, method, tiny_pool):
        texts = {s.text for s in tiny_pool}
        timeline = method.generate(tiny_pool, 4, 1)
        for sentence in timeline.all_sentences():
            assert sentence in texts

    @pytest.mark.parametrize(
        "method", ALL_UNSUPERVISED, ids=lambda m: m.name
    )
    def test_deterministic(self, method, tiny_pool):
        a = method.generate(tiny_pool, 4, 1)
        b = method.generate(tiny_pool, 4, 1)
        assert a == b


class TestRandomBaseline:
    def test_different_seeds_differ(self, tiny_pool):
        a = RandomBaseline(seed=1).generate(tiny_pool, 5, 1)
        b = RandomBaseline(seed=2).generate(tiny_pool, 5, 1)
        assert a != b


class TestMeadBaseline:
    def test_selects_heaviest_dates(self, tiny_pool):
        timeline = MeadBaseline().generate(tiny_pool, 3, 1)
        heaviest = {date for date, _ in date_volumes(tiny_pool)[:3]}
        assert set(timeline.dates) <= heaviest


class TestEtsBaseline:
    def test_improves_over_random_seed_selection(self, tiny_pool):
        """The substitution search must produce corpus-relevant content."""
        from repro.evaluation.rouge import rouge_n

        ets = EtsBaseline(seed=3, max_rounds=2)
        timeline = ets.generate(tiny_pool, 4, 2)
        assert timeline.num_sentences() >= 4


class TestEvolutionBaseline:
    def test_validation(self):
        with pytest.raises(ValueError):
            EvolutionBaseline(decay=0.0)
        with pytest.raises(ValueError):
            EvolutionBaseline(novelty_weight=2.0)
