"""Binary index snapshots: round-trip exactness, corruption handling.

The contract under test (docs/serving.md "Cold start & snapshots"):

* loading a snapshot reconstructs the *identical* index state the JSONL
  path produces -- postings, documents, date buckets, ``index_version``
  -- and therefore identical search hits and served timeline JSON;
* a fresh :class:`~repro.text.analysis.TokenCache` passed to the loader
  is pre-seeded so the first query pays zero tokenisation;
* any corruption (bad magic, truncated header, flipped payload byte,
  wrong format version, analyzer mismatch) raises
  :class:`~repro.search.snapshot.SnapshotError` -- never a crash, never
  a silently wrong index.
"""

import datetime

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.search.engine import SearchEngine
from repro.search.index import InvertedIndex
from repro.search.query import SearchQuery
from repro.search.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SNAPSHOT_MAGIC,
    SnapshotError,
    load_snapshot,
    save_snapshot,
    snapshot_info,
)
from repro.serve import canonical_json
from repro.search.realtime import RealTimeTimelineSystem
from repro.text.analysis import TokenCache
from repro.tlsdata.synthetic import SyntheticConfig, SyntheticCorpusGenerator
from tests.conftest import d


@pytest.fixture(scope="module")
def instance():
    config = SyntheticConfig(
        topic="snapshot-test",
        theme="conflict",
        seed=13,
        duration_days=45,
        num_events=8,
        num_major_events=4,
        num_articles=14,
        sentences_per_article=6,
    )
    return SyntheticCorpusGenerator(config).generate()


@pytest.fixture(scope="module")
def engine(instance):
    engine = SearchEngine(cache=TokenCache())
    engine.add_articles(instance.corpus.articles)
    return engine


@pytest.fixture(scope="module")
def snapshot_path(engine, tmp_path_factory):
    path = tmp_path_factory.mktemp("snap") / "index.snap"
    engine.save_snapshot(path)
    return path


@pytest.fixture(scope="module")
def jsonl_path(engine, tmp_path_factory):
    path = tmp_path_factory.mktemp("snap") / "index.jsonl"
    engine.save(path)
    return path


def _assert_same_index(restored: InvertedIndex, reference: InvertedIndex):
    assert len(restored) == len(reference)
    assert restored.index_version == reference.index_version
    assert restored._postings == reference._postings
    assert restored._by_date == reference._by_date
    assert restored._doc_lengths == reference._doc_lengths
    assert restored._total_length == reference._total_length
    for doc_id in range(len(reference)):
        assert restored.document(doc_id) == reference.document(doc_id)


class TestRoundTrip:
    def test_index_state_identical_to_jsonl_load(
        self, snapshot_path, jsonl_path
    ):
        from_snapshot = InvertedIndex.load_snapshot(snapshot_path)
        from_jsonl = InvertedIndex.load(jsonl_path)
        _assert_same_index(from_snapshot, from_jsonl)

    def test_search_hits_identical(self, engine, snapshot_path):
        restored = SearchEngine.load_snapshot(snapshot_path)
        assert restored.num_articles == engine.num_articles
        query = SearchQuery(keywords=("clash", "government"), limit=20)
        expected = engine.search(query)
        actual = restored.search(query)
        assert [h.document.doc_id for h in actual] == [
            h.document.doc_id for h in expected
        ]
        assert [h.score for h in actual] == pytest.approx(
            [h.score for h in expected]
        )

    def test_fresh_cache_is_fully_seeded(self, engine, snapshot_path):
        cache = TokenCache()
        index = load_snapshot(snapshot_path, cache=cache)
        stats = cache.stats()
        assert stats.misses == 0
        # Every indexed text tokenises from the cache, and the streams
        # match what the analyzer would produce from scratch.
        reference = TokenCache()
        for doc_id in range(len(index)):
            text = index.document(doc_id).text
            assert cache.tokens(text) == reference.tokens(text)
        assert cache.stats().misses == 0

    def test_served_timeline_json_identical(
        self, instance, snapshot_path, jsonl_path
    ):
        def serve(engine):
            system = RealTimeTimelineSystem(
                engine=engine, cache=engine.cache
            )
            start, end = instance.corpus.window
            return canonical_json(
                system.generate_timeline(
                    instance.corpus.query, start=start, end=end,
                    num_dates=5, num_sentences=2,
                ).timeline.to_dict()
            )

        assert serve(SearchEngine.load_snapshot(snapshot_path)) == serve(
            SearchEngine.load(jsonl_path)
        )

    def test_empty_index_preserves_version(self, tmp_path):
        empty = InvertedIndex()
        empty._version = 11
        path = tmp_path / "empty.snap"
        save_snapshot(empty, path)
        restored = load_snapshot(path)
        assert len(restored) == 0
        assert restored.index_version == 11
        restored.add("Late news.", d("2020-03-01"), d("2020-03-01"))
        assert restored.index_version == 12

    def test_info_reads_header_only(self, engine, snapshot_path):
        info = snapshot_info(snapshot_path)
        assert info["meta"] == SNAPSHOT_MAGIC
        assert info["format_version"] == SNAPSHOT_FORMAT_VERSION
        assert info["documents"] == len(engine.index)
        assert info["vocabulary"] == engine.index.vocabulary_size()
        assert info["index_version"] == engine.index_version
        assert info["articles"] == engine.num_articles

    @given(
        docs=st.lists(
            st.tuples(
                st.lists(
                    st.sampled_from(
                        "ceasefire collapse rebels seized border talks "
                        "storm flood rescue aid".split()
                    ),
                    min_size=1,
                    max_size=8,
                ),
                st.integers(min_value=0, max_value=40),
            ),
            min_size=0,
            max_size=12,
        )
    )
    @settings(
        max_examples=20,
        deadline=None,
        # tmp_path is reused across examples; distinct filenames below
        # keep the examples independent anyway.
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_property_round_trip_matches_jsonl(self, docs, tmp_path):
        index = InvertedIndex()
        base = d("2021-05-01")
        for tokens, offset in docs:
            date = base + datetime.timedelta(days=offset)
            index.add(
                " ".join(tokens).capitalize() + ".",
                date,
                base,
                article_id=f"a{offset % 3}",
                is_reference=offset % 2 == 0,
            )
        snap = tmp_path / "prop.snap"
        jsonl = tmp_path / "prop.jsonl"
        save_snapshot(index, snap)
        index.save(jsonl)
        _assert_same_index(
            load_snapshot(snap), InvertedIndex.load(jsonl)
        )


class TestCorruption:
    def _bytes(self, snapshot_path):
        return snapshot_path.read_bytes()

    def test_wrong_magic(self, snapshot_path, tmp_path):
        raw = self._bytes(snapshot_path)
        bad = tmp_path / "magic.snap"
        bad.write_bytes(
            raw.replace(SNAPSHOT_MAGIC.encode(), b"wilson.other/v9", 1)
        )
        with pytest.raises(SnapshotError, match="not a wilson.snapshot"):
            load_snapshot(bad)

    def test_unsupported_format_version(self, snapshot_path, tmp_path):
        raw = self._bytes(snapshot_path)
        header, _, payload = raw.partition(b"\n")
        import json

        meta = json.loads(header)
        meta["format_version"] = SNAPSHOT_FORMAT_VERSION + 1
        bad = tmp_path / "version.snap"
        bad.write_bytes(json.dumps(meta).encode() + b"\n" + payload)
        with pytest.raises(SnapshotError, match="format_version"):
            load_snapshot(bad)

    def test_truncated_header(self, tmp_path):
        bad = tmp_path / "truncated.snap"
        bad.write_bytes(b'{"meta": "wilson.snapshot/v1"')
        with pytest.raises(SnapshotError, match="header"):
            load_snapshot(bad)

    def test_header_not_json(self, tmp_path):
        bad = tmp_path / "garbage.snap"
        bad.write_bytes(b"\x00\x01garbage\n more garbage")
        with pytest.raises(SnapshotError):
            load_snapshot(bad)

    def test_flipped_payload_byte_fails_checksum(
        self, snapshot_path, tmp_path
    ):
        raw = bytearray(self._bytes(snapshot_path))
        raw[-10] ^= 0xFF
        bad = tmp_path / "flipped.snap"
        bad.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="checksum|sha256"):
            load_snapshot(bad)

    def test_truncated_payload(self, snapshot_path, tmp_path):
        raw = self._bytes(snapshot_path)
        bad = tmp_path / "short.snap"
        bad.write_bytes(raw[: len(raw) - 64])
        with pytest.raises(SnapshotError):
            load_snapshot(bad)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError):
            load_snapshot(tmp_path / "absent.snap")
        with pytest.raises(SnapshotError):
            snapshot_info(tmp_path / "absent.snap")

    def test_analyzer_mismatch_rejected(self, snapshot_path):
        with pytest.raises(SnapshotError, match="analyzer"):
            load_snapshot(snapshot_path, cache=TokenCache(stem=False))

    def test_corruption_never_partially_loads(
        self, snapshot_path, tmp_path
    ):
        # JSONL fallback stays available: the reference engine loads
        # fine while the corrupt snapshot refuses -- the serve boot
        # pattern (try snapshot, fall back) never sees a broken index.
        raw = bytearray(self._bytes(snapshot_path))
        raw[len(raw) // 2] ^= 0x55
        bad = tmp_path / "half.snap"
        bad.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError):
            SearchEngine.load_snapshot(bad)
