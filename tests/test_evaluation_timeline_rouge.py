"""Tests for timeline-aware ROUGE (concat / agreement / align)."""

import pytest

from repro.evaluation.timeline_rouge import (
    agreement_rouge,
    align_rouge,
    concat_rouge,
    timeline_rouge,
)
from repro.tlsdata.types import Timeline
from tests.conftest import d


def _reference():
    return Timeline(
        {
            d("2020-01-01"): ["rebels seized stronghold"],
            d("2020-01-10"): ["ceasefire collapsed near border"],
        }
    )


class TestConcatRouge:
    def test_perfect_copy(self):
        reference = _reference()
        assert concat_rouge(reference, reference, 1).f1 == pytest.approx(1.0)

    def test_ignores_date_placement(self):
        reference = _reference()
        shifted = Timeline(
            {
                d("2020-02-01"): ["rebels seized stronghold"],
                d("2020-02-10"): ["ceasefire collapsed near border"],
            }
        )
        assert concat_rouge(shifted, reference, 1).f1 == pytest.approx(1.0)

    def test_empty_system(self):
        assert concat_rouge(Timeline(), _reference(), 1).f1 == 0.0


class TestAgreementRouge:
    def test_perfect_copy(self):
        reference = _reference()
        assert agreement_rouge(
            reference, reference, 1
        ).f1 == pytest.approx(1.0)

    def test_wrong_dates_score_zero(self):
        reference = _reference()
        shifted = Timeline(
            {
                d("2020-02-01"): ["rebels seized stronghold"],
                d("2020-02-10"): ["ceasefire collapsed near border"],
            }
        )
        assert agreement_rouge(shifted, reference, 1).f1 == 0.0

    def test_partial_date_overlap(self):
        reference = _reference()
        system = Timeline(
            {
                d("2020-01-01"): ["rebels seized stronghold"],  # match
                d("2020-03-03"): ["ceasefire collapsed near border"],
            }
        )
        score = agreement_rouge(system, reference, 1)
        # Hits only from 01-01 (3 content tokens); both totals 6.
        assert score.precision == pytest.approx(3 / 6)
        assert score.recall == pytest.approx(3 / 6)

    def test_right_date_wrong_text(self):
        reference = _reference()
        system = Timeline(
            {d("2020-01-01"): ["vaccine reached clinics"]}
        )
        assert agreement_rouge(system, reference, 1).f1 == 0.0


class TestAlignRouge:
    def test_perfect_copy(self):
        reference = _reference()
        assert align_rouge(reference, reference, 1).f1 == pytest.approx(1.0)

    def test_near_miss_discounted_not_zero(self):
        reference = _reference()
        one_day_off = Timeline(
            {
                d("2020-01-02"): ["rebels seized stronghold"],
                d("2020-01-11"): ["ceasefire collapsed near border"],
            }
        )
        agreement = agreement_rouge(one_day_off, reference, 1).f1
        align = align_rouge(one_day_off, reference, 1).f1
        assert agreement == 0.0
        assert 0.0 < align < 1.0
        # Discount is 1/(1+1) = 0.5 on all hits.
        assert align == pytest.approx(0.5)

    def test_discount_grows_with_distance(self):
        import datetime

        reference = _reference()

        def shifted(days):
            return Timeline(
                {
                    date + datetime.timedelta(days=days): sentences
                    for date, sentences in reference.items()
                }
            )

        close = align_rouge(shifted(1), reference, 1).f1
        far = align_rouge(shifted(4), reference, 1).f1
        assert close > far > 0.0

    def test_many_to_one_allowed(self):
        reference = Timeline({d("2020-01-05"): ["rebels seized stronghold"]})
        system = Timeline(
            {
                d("2020-01-04"): ["rebels seized stronghold"],
                d("2020-01-06"): ["rebels seized stronghold"],
            }
        )
        score = align_rouge(system, reference, 1)
        # Both system dates align to the single reference date.
        assert score.precision > 0.0
        assert score.recall > 0.0


class TestTimelineRougeBundle:
    def test_row_keys(self):
        result = timeline_rouge(_reference(), _reference())
        row = result.row()
        assert set(row) == {
            "concat_r1", "concat_r2", "agreement_r1",
            "agreement_r2", "align_r1", "align_r2",
        }
        assert row["concat_r1"] == pytest.approx(1.0)

    def test_metric_ordering_invariant(self):
        """align credit >= agreement credit (it includes exact matches)."""
        reference = _reference()
        system = Timeline(
            {
                d("2020-01-01"): ["rebels seized stronghold"],
                d("2020-01-12"): ["ceasefire collapsed near border"],
            }
        )
        agreement = agreement_rouge(system, reference, 1).f1
        align = align_rouge(system, reference, 1).f1
        assert align >= agreement
