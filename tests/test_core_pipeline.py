"""Tests for the end-to-end WILSON pipeline."""

import pytest

from repro.core.pipeline import Wilson, WilsonConfig
from repro.tlsdata.types import DatedSentence
from tests.conftest import d


class TestWilsonConfig:
    def test_defaults(self):
        config = WilsonConfig()
        assert config.num_dates is None
        assert config.postprocess

    def test_validation(self):
        with pytest.raises(ValueError):
            WilsonConfig(num_dates=0)
        with pytest.raises(ValueError):
            WilsonConfig(sentences_per_date=0)

    def test_edge_weight_string_accepted(self):
        config = WilsonConfig(edge_weight="w1")
        assert config.edge_weight.value == "W1"


class TestSummarize:
    def test_empty_pool(self):
        assert len(Wilson().summarize([])) == 0

    def test_respects_preset_dates(self, tiny_pool):
        wilson = Wilson(WilsonConfig(num_dates=5, sentences_per_date=1))
        timeline = wilson.summarize(tiny_pool)
        assert len(timeline) <= 5

    def test_respects_sentences_per_date(self, tiny_pool):
        wilson = Wilson(WilsonConfig(num_dates=4, sentences_per_date=2))
        timeline = wilson.summarize(tiny_pool)
        for date in timeline.dates:
            assert len(timeline.summary(date)) <= 2

    def test_call_arguments_override_config(self, tiny_pool):
        wilson = Wilson(WilsonConfig(num_dates=3, sentences_per_date=1))
        timeline = wilson.summarize(
            tiny_pool, num_dates=6, num_sentences=2
        )
        assert len(timeline) <= 6

    def test_fixed_dates_override(self, tiny_pool, tiny_instance):
        reference_dates = tiny_instance.reference.dates
        wilson = Wilson(
            WilsonConfig(fixed_dates=reference_dates, sentences_per_date=1)
        )
        timeline = wilson.summarize(tiny_pool)
        assert set(timeline.dates) <= set(reference_dates)
        # Most reference dates have sentences in the corpus.
        assert len(timeline) >= len(reference_dates) // 2

    def test_auto_date_compression_runs(self, tiny_pool):
        wilson = Wilson(WilsonConfig(num_dates=None, sentences_per_date=1))
        timeline = wilson.summarize(tiny_pool)
        assert len(timeline) >= 1

    def test_deterministic(self, tiny_pool):
        config = WilsonConfig(num_dates=5, sentences_per_date=1)
        a = Wilson(config).summarize(tiny_pool)
        b = Wilson(config).summarize(tiny_pool)
        assert a == b

    def test_summarize_corpus(self, tiny_instance):
        wilson = Wilson(WilsonConfig(num_dates=4, sentences_per_date=1))
        timeline = wilson.summarize_corpus(tiny_instance.corpus)
        assert 1 <= len(timeline) <= 4


class TestUniformDates:
    def test_snaps_to_candidate_dates(self):
        pool = [
            DatedSentence(d("2020-01-01"), "a one.", d("2020-01-01")),
            DatedSentence(d("2020-01-02"), "b two.", d("2020-01-02")),
            DatedSentence(d("2020-03-01"), "c three.", d("2020-03-01")),
        ]
        selected = Wilson._uniform_dates(pool, 2)
        assert selected == [d("2020-01-01"), d("2020-03-01")]

    def test_fewer_candidates_than_requested(self):
        pool = [DatedSentence(d("2020-01-01"), "a.", d("2020-01-01"))]
        assert Wilson._uniform_dates(pool, 5) == [d("2020-01-01")]

    def test_no_duplicates(self, tiny_pool):
        selected = Wilson._uniform_dates(tiny_pool, 10)
        assert len(selected) == len(set(selected))

    def test_empty(self):
        assert Wilson._uniform_dates([], 5) == []


class TestQualityOnSyntheticInstance:
    def test_beats_uniform_on_date_f1(self, tiny_pool, tiny_instance):
        from repro.core.variants import wilson_full, wilson_uniform
        from repro.evaluation.date_metrics import date_f1

        T = tiny_instance.target_num_dates
        N = tiny_instance.target_sentences_per_date
        full = wilson_full(T, N).summarize(tiny_pool)
        uniform = wilson_uniform(T, N).summarize(tiny_pool)
        reference = tiny_instance.reference.dates
        assert date_f1(full.dates, reference) >= date_f1(
            uniform.dates, reference
        )
