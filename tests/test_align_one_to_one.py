"""Tests for the 1:1 align-ROUGE variant."""

import pytest

from repro.evaluation.timeline_rouge import align_rouge
from repro.tlsdata.types import Timeline
from tests.conftest import d


def _reference():
    return Timeline(
        {
            d("2020-01-01"): ["rebels seized stronghold"],
            d("2020-01-10"): ["ceasefire collapsed near border"],
        }
    )


class TestOneToOneAlign:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            align_rouge(_reference(), _reference(), 1, mode="2:2")

    def test_perfect_copy(self):
        score = align_rouge(_reference(), _reference(), 1, mode="1:1")
        assert score.f1 == pytest.approx(1.0)

    def test_one_to_one_at_most_m_to_one(self):
        """1:1 cannot exceed m:1 — it is a constrained assignment."""
        system = Timeline(
            {
                d("2020-01-02"): ["rebels seized stronghold"],
                d("2020-01-03"): ["rebels seized stronghold"],
                d("2020-01-11"): ["ceasefire collapsed near border"],
            }
        )
        m1 = align_rouge(system, _reference(), 1, mode="m:1")
        one = align_rouge(system, _reference(), 1, mode="1:1")
        assert one.f1 <= m1.f1 + 1e-12

    def test_duplicate_system_dates_penalised(self):
        """Two system dates chasing one reference date: only one counts."""
        duplicated = Timeline(
            {
                d("2020-01-01"): ["rebels seized stronghold"],
                d("2020-01-02"): ["rebels seized stronghold"],
            }
        )
        reference = Timeline(
            {d("2020-01-01"): ["rebels seized stronghold"]}
        )
        m1 = align_rouge(duplicated, reference, 1, mode="m:1")
        one = align_rouge(duplicated, reference, 1, mode="1:1")
        assert one.recall < m1.recall or one.precision < m1.precision

    def test_optimal_assignment_swaps_when_better(self):
        """Hungarian assignment picks the globally best pairing."""
        system = Timeline(
            {
                d("2020-01-01"): ["ceasefire collapsed near border"],
                d("2020-01-10"): ["rebels seized stronghold"],
            }
        )
        score = align_rouge(system, _reference(), 1, mode="1:1")
        # Both summaries exist in the reference, 9 days off when matched
        # by content; the assignment still recovers positive credit.
        assert score.f1 > 0.0

    def test_empty_system(self):
        score = align_rouge(Timeline(), _reference(), 1, mode="1:1")
        assert score.f1 == 0.0

    def test_near_miss_discounted(self):
        import datetime

        shifted = Timeline(
            {
                date + datetime.timedelta(days=1): sentences
                for date, sentences in _reference().items()
            }
        )
        score = align_rouge(shifted, _reference(), 1, mode="1:1")
        assert score.f1 == pytest.approx(0.5)
