"""End-to-end sharded smoke: ``serve --shards 2``, kill a shard, drain.

Mirrors the CI router-smoke drill: boot the sharded topology as real
subprocesses, probe the router over HTTP, kill one shard worker and
confirm the router degrades (HTTP 200 + ``X-Wilson-Degraded``) instead
of failing, then SIGTERM the router and confirm a clean drain.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from tests.conftest import wait_until

_ROUTER_BANNER = re.compile(r"routing on http://127\.0\.0\.1:(\d+)")
_SHARD_BANNER = re.compile(r"shard (\d+): pid (\d+) on http://")


@pytest.fixture()
def sharded_process():
    env = dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--shards", "2", "--port", "0",
            "--scale", "0.02", "--batch-window-ms", "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    try:
        port = None
        shard_pids = {}
        deadline = time.monotonic() + 120
        assert process.stdout is not None
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if not line:
                break
            shard = _SHARD_BANNER.search(line)
            if shard:
                shard_pids[int(shard.group(1))] = int(shard.group(2))
            match = _ROUTER_BANNER.search(line)
            if match:
                port = int(match.group(1))
                break
        assert port is not None, "router never printed its banner"
        assert sorted(shard_pids) == [0, 1], shard_pids
        yield process, port, shard_pids
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)


def _get(port, path, timeout=60):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=timeout
    ) as response:
        return response.status, dict(response.getheaders()), response.read()


def _post_json(port, path, payload, timeout=120):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, dict(response.getheaders()), response.read()


@pytest.mark.slow
def test_sharded_serve_degrades_and_drains(sharded_process):
    process, port, shard_pids = sharded_process

    status, _, body = _get(port, "/healthz")
    assert status == 200
    health = json.loads(body)
    assert health["status"] == "ok"
    assert health["shards"] == 2
    assert health["shards_healthy"] == 2

    status, _, body = _get(port, "/metrics")
    assert status == 200
    assert b"wilson_router_requests_total" in body

    payload = {"keywords": ["released"], "num_dates": 3}
    status, headers, body = _post_json(port, "/v1/timeline", payload)
    assert status == 200
    envelope = json.loads(body)
    assert envelope["schema"] == "wilson.serve/v1"
    assert "X-Wilson-Degraded" not in headers

    # Kill shard 1 and wait until the router sees the outage. (Polling
    # the pid would hang: the worker stays a zombie until the serve
    # process reaps it at drain, and ``os.kill(pid, 0)`` still
    # succeeds on a zombie.)
    os.kill(shard_pids[1], signal.SIGKILL)
    wait_until(
        lambda: json.loads(_get(port, "/healthz")[2])["shards_healthy"] == 1,
        timeout_seconds=30,
        message="the router to notice the dead shard",
    )

    # A fresh query (the earlier one is now served from the healthy
    # merge cache) must scatter, notice the outage, and degrade.
    degraded_payload = {"keywords": ["released"], "num_dates": 4}
    status, headers, body = _post_json(
        port, "/v1/timeline", degraded_payload
    )
    assert status == 200
    assert headers.get("X-Wilson-Degraded") == "1"
    envelope = json.loads(body)
    assert envelope["degraded_shards"] == [1]
    assert envelope["cache"] == "miss"

    status, _, body = _get(port, "/healthz")
    assert status == 200
    assert json.loads(body)["shards_healthy"] == 1

    process.send_signal(signal.SIGTERM)
    assert process.wait(timeout=30) == 0
    output = process.stdout.read()
    assert "shutdown: drained cleanly" in output
