"""The v2 (page-aligned, mmap-able) snapshot layout end to end.

Three contracts, per docs/architecture.md "Snapshot memory model":

* **exactness** -- a v2 snapshot loaded any way (``mode="copy"`` or
  ``mode="mmap"``) reconstructs exactly the state the v1 copy path
  produces: postings, positions, dates, documents, search hits, and the
  canonical served-timeline JSON are byte-identical across all three;
* **read-only views** -- the mmap path hands out an index backed by
  ``MAP_SHARED`` read-only pages: mutation is refused up front, and the
  mapped index can itself be re-snapshotted losslessly;
* **corruption is loud** -- a truncated section, a flipped payload
  byte, or a tampered header descriptor raises
  :class:`~repro.search.snapshot.SnapshotError`, and a failed load
  never leaves partial state behind.
"""

import json

import numpy as np
import pytest

from repro.search.engine import SearchEngine
from repro.search.index import InvertedIndex
from repro.search.mapped import MappedSnapshotIndex
from repro.search.query import SearchQuery
from repro.search.realtime import RealTimeTimelineSystem
from repro.search.snapshot import (
    SNAPSHOT_MAGIC_V2,
    SNAPSHOT_FORMAT_VERSION_V2,
    SectionTable,
    SnapshotError,
    load_snapshot,
    save_snapshot,
    snapshot_info,
)
from repro.serve import canonical_json
from repro.text.analysis import TokenCache
from repro.tlsdata.synthetic import SyntheticConfig, SyntheticCorpusGenerator


@pytest.fixture(scope="module")
def instance():
    config = SyntheticConfig(
        topic="snapshot-v2-test",
        theme="disaster",
        seed=29,
        duration_days=40,
        num_events=8,
        num_major_events=4,
        num_articles=12,
        sentences_per_article=6,
    )
    return SyntheticCorpusGenerator(config).generate()


@pytest.fixture(scope="module")
def engine(instance):
    engine = SearchEngine(cache=TokenCache())
    engine.add_articles(instance.corpus.articles)
    return engine


@pytest.fixture(scope="module")
def v1_path(engine, tmp_path_factory):
    path = tmp_path_factory.mktemp("snapv2") / "index.v1.snap"
    engine.save_snapshot(path, snapshot_format="v1")
    return path


@pytest.fixture(scope="module")
def v2_path(engine, tmp_path_factory):
    path = tmp_path_factory.mktemp("snapv2") / "index.v2.snap"
    engine.save_snapshot(path, snapshot_format="v2")
    return path


def _corrupt_copy(v2_path, tmp_path, mutate):
    """A private copy of the v2 snapshot with *mutate(bytearray)* applied."""
    raw = bytearray(v2_path.read_bytes())
    mutate(raw)
    path = tmp_path / "corrupt.snap"
    path.write_bytes(bytes(raw))
    return path


def _flip_section_byte(v2_path, tmp_path, section):
    """A private copy with one payload byte of *section* inverted.

    Section offsets in the header are relative to ``data_start`` (the
    first 4096-byte boundary past the header line), so the absolute
    file position has to account for it.
    """
    raw = bytearray(v2_path.read_bytes())
    header_len = raw.index(b"\n") + 1
    data_start = -(-header_len // 4096) * 4096
    offset = snapshot_info(v2_path)["sections"][section]["offset"]
    raw[data_start + offset] ^= 0x01
    path = tmp_path / f"corrupt-{section}.snap"
    path.write_bytes(bytes(raw))
    return path


def _header_copy(v2_path, tmp_path, edit):
    """A private copy with *edit(header_dict)* applied to the JSON header."""
    raw = v2_path.read_bytes()
    newline = raw.index(b"\n")
    header = json.loads(raw[:newline].decode("utf-8"))
    edit(header)
    line = json.dumps(header, separators=(",", ":")).encode("utf-8") + b"\n"
    # Pad with spaces before the newline so every section offset is
    # preserved -- only the edited descriptor changes meaning.
    if len(line) > newline + 1:
        pytest.skip("edited header does not fit in the original slot")
    padded = line[:-1] + b" " * (newline + 1 - len(line)) + b"\n"
    path = tmp_path / "tampered.snap"
    path.write_bytes(padded + raw[newline + 1:])
    return path


def _index_state(index):
    """Everything observable about an index, as plain JSON-able data."""
    docs = [
        (
            doc.text,
            doc.date.isoformat(),
            doc.publication_date.isoformat(),
            doc.article_id,
            doc.is_reference,
        )
        for doc in (index.document(i) for i in range(len(index)))
    ]
    tokens = sorted(index.postings_map())
    return {
        "version": index.index_version,
        "num_documents": index.num_documents,
        "total_length": index.total_length,
        "vocabulary_size": index.vocabulary_size(),
        "documents": docs,
        "postings": {
            token: sorted(index.postings(token).items()) for token in tokens
        },
        "positions": {
            token: {
                doc_id: index.positions(token, doc_id)
                for doc_id in index.postings(token)
            }
            for token in tokens
        },
        "dates": [day.isoformat() for day in index.dates()],
        "histogram": {
            day.isoformat(): count
            for day, count in index.date_histogram().items()
        },
    }


def _served_bytes(engine, instance):
    system = RealTimeTimelineSystem(engine=engine, cache=engine.cache)
    start, end = instance.corpus.window
    timeline = system.generate_timeline(
        instance.corpus.query, start=start, end=end,
        num_dates=5, num_sentences=2,
    )
    return canonical_json(timeline.timeline.to_dict())


class TestExactness:
    def test_header_describes_v2(self, engine, v2_path):
        info = snapshot_info(v2_path)
        assert info["meta"] == SNAPSHOT_MAGIC_V2
        assert info["format_version"] == SNAPSHOT_FORMAT_VERSION_V2
        assert info["documents"] == len(engine.index)
        for descriptor in info["sections"].values():
            assert descriptor["offset"] % np.dtype(descriptor["dtype"]).itemsize == 0
            assert len(descriptor["sha256"]) == 64

    def test_state_identical_across_all_load_paths(self, v1_path, v2_path):
        reference = _index_state(load_snapshot(v1_path))
        assert _index_state(load_snapshot(v2_path, mode="copy")) == reference
        assert _index_state(load_snapshot(v2_path, mode="mmap")) == reference

    def test_mmap_load_is_a_mapped_view(self, v2_path):
        index = load_snapshot(v2_path, mode="mmap")
        assert isinstance(index, MappedSnapshotIndex)
        assert index.mapped_sections > 0
        assert index.mapped_bytes > 0

    def test_search_hits_identical(self, engine, v2_path):
        mapped = SearchEngine.load_snapshot(v2_path, mode="mmap")
        query = SearchQuery(keywords=("flood", "rescue"), limit=20)
        expected = engine.search(query)
        actual = mapped.search(query)
        assert [h.document.doc_id for h in actual] == [
            h.document.doc_id for h in expected
        ]
        assert [h.score for h in actual] == pytest.approx(
            [h.score for h in expected]
        )

    def test_served_bytes_identical_across_tiers(
        self, instance, v1_path, v2_path
    ):
        reference = _served_bytes(
            SearchEngine.load_snapshot(v1_path), instance
        )
        for path, mode in ((v2_path, "copy"), (v2_path, "mmap")):
            assert (
                _served_bytes(
                    SearchEngine.load_snapshot(path, mode=mode), instance
                )
                == reference
            ), f"served JSON diverged for {mode} load"

    def test_mapped_index_resnapshots_losslessly(self, v2_path, tmp_path):
        mapped = load_snapshot(v2_path, mode="mmap")
        again = tmp_path / "again.snap"
        save_snapshot(mapped, again, snapshot_format="v2")
        assert _index_state(load_snapshot(again, mode="copy")) == _index_state(
            mapped
        )

    def test_fresh_cache_seeded_on_v2_copy_load(self, v2_path):
        cache = TokenCache()
        index = load_snapshot(v2_path, mode="copy", cache=cache)
        assert cache.stats().misses == 0
        for doc_id in range(len(index)):
            cache.tokens(index.document(doc_id).text)
        assert cache.stats().misses == 0


class TestReadOnlySemantics:
    def test_mapped_index_refuses_mutation(self, v2_path):
        mapped = load_snapshot(v2_path, mode="mmap")
        import datetime

        day = datetime.date(2024, 1, 1)
        with pytest.raises(TypeError, match="read-only"):
            mapped.add("New sentence.", day, day)

    def test_v1_snapshot_falls_back_to_copy_path(self, v1_path):
        # A fleet-wide --snapshot-mode mmap must still boot a worker
        # whose shard is a v1 file: v1 always takes the copy path.
        index = load_snapshot(v1_path, mode="mmap")
        assert not isinstance(index, MappedSnapshotIndex)
        assert len(index) > 0

    def test_section_table_refuses_v1(self, v1_path):
        with pytest.raises(SnapshotError, match="wilson.snapshot/v2"):
            SectionTable(v1_path)

    def test_unknown_mode_rejected(self, v2_path):
        with pytest.raises(ValueError, match="mode"):
            load_snapshot(v2_path, mode="slurp")

    def test_v1_loads_regardless_of_requested_mode_validity(self, v1_path):
        # v1 files always take the copy path; mode="copy" is explicit.
        index = load_snapshot(v1_path, mode="copy")
        assert len(index) > 0


class TestCorruption:
    def test_truncated_section_rejected(self, v2_path, tmp_path):
        truncated = tmp_path / "truncated.snap"
        raw = v2_path.read_bytes()
        truncated.write_bytes(raw[: len(raw) - 4096])
        with pytest.raises(SnapshotError, match="overruns|truncated"):
            load_snapshot(truncated, mode="mmap")

    def test_flipped_payload_byte_fails_checksum_eagerly_on_copy(
        self, v2_path, tmp_path
    ):
        path = _flip_section_byte(v2_path, tmp_path, "texts_buf")
        with pytest.raises(SnapshotError, match="checksum"):
            load_snapshot(path, mode="copy")

    def test_flipped_payload_byte_fails_checksum_with_verify(
        self, v2_path, tmp_path
    ):
        path = _flip_section_byte(v2_path, tmp_path, "doc_dates")
        with pytest.raises(SnapshotError, match="checksum"):
            load_snapshot(path, mode="mmap", verify=True)

    def test_lazy_mmap_detects_corruption_on_section_access(
        self, v2_path, tmp_path
    ):
        path = _flip_section_byte(v2_path, tmp_path, "doc_lengths")
        # Lazy mode maps fine; the checksum trips on first access of the
        # damaged section.
        mapped = load_snapshot(path, mode="mmap")
        with pytest.raises(SnapshotError, match="doc_lengths"):
            mapped.total_length

    def test_tampered_offset_rejected(self, v2_path, tmp_path):
        def push_section_past_eof(header):
            descriptor = header["sections"]["doc_dates"]
            descriptor["offset"] = header["payload_bytes"] * 8

        path = _header_copy(v2_path, tmp_path, push_section_past_eof)
        with pytest.raises(SnapshotError, match="overruns"):
            load_snapshot(path, mode="mmap")

    def test_misaligned_offset_rejected(self, v2_path, tmp_path):
        def nudge(header):
            header["sections"]["doc_dates"]["offset"] += 1

        path = _header_copy(v2_path, tmp_path, nudge)
        with pytest.raises(SnapshotError, match="misaligned"):
            load_snapshot(path, mode="mmap")

    def test_missing_section_rejected(self, v2_path, tmp_path):
        def drop(header):
            del header["sections"]["doc_dates"]

        path = _header_copy(v2_path, tmp_path, drop)
        with pytest.raises(SnapshotError, match="missing sections"):
            load_snapshot(path, mode="mmap")

    def test_malformed_descriptor_rejected(self, v2_path, tmp_path):
        def mangle(header):
            header["sections"]["doc_dates"] = {"offset": 0}

        path = _header_copy(v2_path, tmp_path, mangle)
        with pytest.raises(SnapshotError, match="malformed"):
            load_snapshot(path, mode="mmap")

    def test_failed_load_leaves_no_partial_state(self, v2_path, tmp_path):
        # A corrupt payload must not seed the cache it was given.
        path = _flip_section_byte(v2_path, tmp_path, "tok_ids")
        cache = TokenCache()
        with pytest.raises(SnapshotError):
            load_snapshot(path, mode="copy", cache=cache)
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 0

    def test_section_table_verify_is_memoized(self, v2_path):
        table = SectionTable(v2_path)
        try:
            table.verify("doc_dates")
            assert "doc_dates" in table._verified
            table.verify("doc_dates")  # second call is a no-op
            array = table.array("doc_dates")
            assert not array.flags.writeable
            # Views alias the mapping: drop them before close() (which
            # would otherwise refuse with BufferError).
            del array
        finally:
            table.close()
