"""Property-based tests (hypothesis) for core invariants."""

import datetime
import string

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.date_selection import (
    DateSelector,
    uniformity,
    uniformity_score,
)
from repro.evaluation.date_metrics import date_coverage, date_f1
from repro.evaluation.rouge import (
    rouge_n,
    rouge_s_star,
    skip_bigram_counts,
)
from repro.evaluation.significance import approximate_randomization_test
from repro.graph.pagerank import pagerank_matrix
from repro.rank.mmr import mmr_rerank
from repro.search.index import InvertedIndex
from repro.text.bm25 import BM25
from repro.text.stem import stem_token
from repro.text.tokenize import sentence_split, tokenize
from repro.tlsdata.types import Timeline

words = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=10)
token_lists = st.lists(words, min_size=0, max_size=20)
dates = st.dates(
    min_value=datetime.date(2000, 1, 1),
    max_value=datetime.date(2030, 12, 31),
)


class TestPageRankProperties:
    @given(st.integers(min_value=1, max_value=12), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_distribution_properties(self, n, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.random((n, n)) * (rng.random((n, n)) < 0.5)
        np.fill_diagonal(matrix, 0.0)
        scores = pagerank_matrix(matrix)
        assert scores.shape == (n,)
        assert (scores >= 0).all()
        assert scores.sum() == pytest.approx(1.0)

    @given(st.integers(min_value=2, max_value=12), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_invariant_to_node_relabeling(self, n, seed):
        """Permuting node labels permutes scores, nothing more.

        PageRank is a function of graph structure alone: relabeling the
        nodes by any permutation P must satisfy
        ``pagerank(P A P^T) == P pagerank(A)``.
        """
        rng = np.random.default_rng(seed)
        matrix = rng.random((n, n)) * (rng.random((n, n)) < 0.6)
        np.fill_diagonal(matrix, 0.0)
        permutation = rng.permutation(n)
        relabeled = matrix[np.ix_(permutation, permutation)]
        original = pagerank_matrix(matrix)
        assert pagerank_matrix(relabeled) == pytest.approx(
            original[permutation], abs=1e-8
        )


class TestBM25Properties:
    @given(st.lists(token_lists, min_size=1, max_size=8), token_lists)
    @settings(max_examples=30, deadline=None)
    def test_scores_non_negative(self, corpus, query):
        bm25 = BM25(corpus)
        assert (bm25.scores(query) >= 0).all()

    @given(st.lists(token_lists, min_size=2, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_adding_query_terms_never_decreases_score(self, corpus):
        bm25 = BM25(corpus)
        base_query = corpus[0][:2]
        extended = base_query + corpus[1][:2]
        for index in range(len(corpus)):
            assert bm25.score(extended, index) >= bm25.score(
                base_query, index
            ) - 1e-12


class TestRougeProperties:
    @given(token_lists, token_lists)
    @settings(max_examples=50, deadline=None)
    def test_f1_bounded_and_symmetric_swap(self, a, b):
        sys_text = " ".join(a)
        ref_text = " ".join(b)
        forward = rouge_n(sys_text, ref_text, 1,
                          stem=False, drop_stopwords=False)
        backward = rouge_n(ref_text, sys_text, 1,
                           stem=False, drop_stopwords=False)
        assert 0.0 <= forward.f1 <= 1.0
        # Swapping system and reference swaps precision and recall.
        assert forward.precision == pytest.approx(backward.recall)
        assert forward.f1 == pytest.approx(backward.f1)

    @given(token_lists)
    @settings(max_examples=50, deadline=None)
    def test_self_similarity_perfect(self, tokens):
        text = " ".join(tokens)
        if not tokens:
            return
        assert rouge_n(text, text, 1, stem=False,
                       drop_stopwords=False).f1 == pytest.approx(1.0)

    @given(st.lists(words, min_size=2, max_size=25))
    @settings(max_examples=30, deadline=None)
    def test_skip_bigram_count_quadratic(self, tokens):
        counts = skip_bigram_counts(tokens)
        n = len(tokens)
        assert sum(counts.values()) == n * (n - 1) // 2

    @given(token_lists, token_lists)
    @settings(max_examples=20, deadline=None)
    def test_s_star_bounded(self, a, b):
        score = rouge_s_star(" ".join(a), " ".join(b),
                             stem=False, drop_stopwords=False)
        assert 0.0 <= score.f1 <= 1.0


class TestStemProperties:
    @given(words)
    @settings(max_examples=100, deadline=None)
    def test_deterministic_lower_nonempty(self, word):
        stemmed = stem_token(word)
        assert stemmed
        assert stemmed == stemmed.lower()
        assert stem_token(word) == stemmed

    @given(words)
    @settings(max_examples=100, deadline=None)
    def test_never_longer_than_input_plus_one(self, word):
        # Porter steps can append at most one 'e' after truncation.
        assert len(stem_token(word)) <= len(word) + 1


class TestTokenizeProperties:
    @given(st.text(max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_tokens_have_no_whitespace(self, text):
        for token in tokenize(text):
            assert not any(c.isspace() for c in token)

    @given(st.text(alphabet=string.printable, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_sentence_split_preserves_content(self, text):
        pieces = sentence_split(text)
        # No characters invented: every piece appears in the source
        # (modulo whitespace normalisation).
        normalized = " ".join(text.split())
        for piece in pieces:
            assert piece in normalized


class TestDateMetricProperties:
    @given(st.lists(dates, min_size=1, max_size=15),
           st.lists(dates, min_size=1, max_size=15))
    @settings(max_examples=50, deadline=None)
    def test_f1_bounded(self, selected, reference):
        assert 0.0 <= date_f1(selected, reference) <= 1.0

    @given(st.lists(dates, min_size=1, max_size=15),
           st.lists(dates, min_size=1, max_size=15),
           st.integers(0, 5))
    @settings(max_examples=50, deadline=None)
    def test_coverage_monotone_in_tolerance(
        self, selected, reference, tolerance
    ):
        tight = date_coverage(selected, reference, tolerance)
        loose = date_coverage(selected, reference, tolerance + 2)
        assert loose >= tight

    @given(st.lists(dates, min_size=0, max_size=15))
    @settings(max_examples=50, deadline=None)
    def test_uniformity_non_negative(self, selection):
        assert uniformity(selection) >= 0.0

    @given(st.lists(dates, min_size=0, max_size=15), st.randoms())
    @settings(max_examples=50, deadline=None)
    def test_uniformity_permutation_invariant(self, selection, rng):
        """Definition 3 depends on the date *set*, not presentation order."""
        shuffled = list(selection)
        rng.shuffle(shuffled)
        assert uniformity(shuffled) == pytest.approx(uniformity(selection))
        assert uniformity_score(shuffled) == pytest.approx(
            uniformity_score(selection)
        )

    @given(st.lists(dates, min_size=0, max_size=15))
    @settings(max_examples=50, deadline=None)
    def test_uniformity_score_bounded(self, selection):
        assert 0.0 <= uniformity_score(selection) <= 1.0

    @given(
        dates,
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=50, deadline=None)
    def test_uniformity_score_perfect_for_even_spacing(
        self, start, gap_days, count
    ):
        try:
            selection = [
                start + datetime.timedelta(days=gap_days * i)
                for i in range(count)
            ]
        except OverflowError:
            return  # spacing ran past date.max; nothing to assert
        assert uniformity_score(selection) == pytest.approx(1.0)
        assert uniformity(selection) == pytest.approx(0.0)

    @given(st.lists(dates, min_size=2, max_size=15))
    @settings(max_examples=50, deadline=None)
    def test_uniformity_score_agrees_with_raw_uniformity(self, selection):
        """Score 1.0 exactly when the raw dispersion is 0."""
        score = uniformity_score(selection)
        if uniformity(selection) == pytest.approx(0.0):
            assert score == pytest.approx(1.0)
        else:
            assert score < 1.0

    @given(st.lists(dates, min_size=2, max_size=10, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_recency_personalization_normalised(self, selection):
        weights = DateSelector.recency_personalization(selection, 0.9)
        assert max(weights.values()) == pytest.approx(1.0)
        # Very long windows underflow old dates to 0.0, which is a
        # valid restart distribution as long as some mass remains.
        assert all(0.0 <= w <= 1.0 for w in weights.values())


class TestMmrProperties:
    @given(
        st.lists(
            st.dictionaries(st.integers(0, 5),
                            st.floats(0.01, 1.0), max_size=4),
            min_size=1, max_size=8,
        ),
        st.integers(1, 10),
    )
    @settings(max_examples=50, deadline=None)
    def test_selection_is_unique_subset(self, vectors, limit):
        relevance = [float(len(v)) for v in vectors]
        order = mmr_rerank(vectors, relevance, limit=limit)
        assert len(order) == min(limit, len(vectors))
        assert len(set(order)) == len(order)
        assert all(0 <= i < len(vectors) for i in order)


class TestTimelineProperties:
    @given(
        st.dictionaries(
            dates,
            st.lists(words, min_size=1, max_size=4),
            max_size=8,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_dict_roundtrip(self, entries):
        timeline = Timeline(entries)
        assert Timeline.from_dict(timeline.to_dict()) == timeline

    @given(
        st.dictionaries(
            dates,
            st.lists(words, min_size=1, max_size=4),
            min_size=1, max_size=8,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_dates_sorted_and_counts_consistent(self, entries):
        timeline = Timeline(entries)
        assert timeline.dates == sorted(timeline.dates)
        assert timeline.num_sentences() == len(timeline.all_sentences())


class TestIndexProperties:
    @given(st.lists(st.tuples(token_lists, dates), min_size=1, max_size=15))
    @settings(max_examples=30, deadline=None)
    def test_document_frequency_bounded(self, docs):
        index = InvertedIndex()
        for tokens, date in docs:
            index.add(" ".join(tokens), date, date)
        assert index.num_documents == len(docs)
        for tokens, _ in docs:
            for token in tokens:
                assert index.document_frequency(token) <= len(docs)


class TestSignificanceProperties:
    @given(
        st.lists(st.floats(0.0, 1.0), min_size=2, max_size=12),
        st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_p_value_valid(self, scores, seed):
        result = approximate_randomization_test(
            scores, list(reversed(scores)), num_shuffles=50, seed=seed
        )
        assert 0.0 < result.p_value <= 1.0


class TestKMeansProperties:
    @given(
        st.integers(1, 5),
        st.integers(2, 30),
        st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_labels_valid_and_deterministic(self, k, n, seed):
        from repro.graph.kmeans import KMeans

        rng = np.random.default_rng(seed)
        points = rng.random((n, 3))
        first = KMeans(num_clusters=k, seed=seed).fit(points)
        second = KMeans(num_clusters=k, seed=seed).fit(points)
        assert first.labels.shape == (n,)
        assert (first.labels >= 0).all()
        assert (first.labels < min(k, n)).all()
        assert np.array_equal(first.labels, second.labels)
        assert first.inertia >= 0.0


class TestCompressionProperties:
    @given(
        st.lists(
            st.text(alphabet=string.ascii_letters + " ,.",
                    min_size=1, max_size=80),
            min_size=1, max_size=5,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_compression_only_deletes(self, sentences):
        from repro.text.compress import compress_sentence

        for sentence in sentences:
            compressed = compress_sentence(sentence)
            source = sentence.lower().replace(",", " ").replace(
                ".", " "
            ).split()
            for word in compressed.lower().replace(",", " ").replace(
                ".", " "
            ).split():
                assert word in source

    @given(st.text(alphabet=string.printable, max_size=160))
    @settings(max_examples=50, deadline=None)
    def test_compression_never_longer(self, sentence):
        from repro.text.compress import compress_sentence

        assert len(compress_sentence(sentence)) <= len(sentence) + 1


class TestSubmodularProperties:
    @given(st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_selection_within_budget_and_pool(self, seed):
        import datetime as _dt

        from repro.baselines.submodular import tls_constraints
        from repro.tlsdata.types import DatedSentence

        rng = np.random.default_rng(seed)
        vocab = ["alpha", "beta", "gamma", "delta", "sigma", "omega"]
        pool = []
        for i in range(20):
            words = " ".join(
                rng.choice(vocab, size=4, replace=True).tolist()
            )
            date = _dt.date(2020, 1, 1) + _dt.timedelta(
                days=int(rng.integers(0, 10))
            )
            pool.append(DatedSentence(date, f"{words} {i}.", date))
        timeline = tls_constraints().generate(pool, 3, 2)
        assert len(timeline) <= 3
        texts = {s.text for s in pool}
        for sentence in timeline.all_sentences():
            assert sentence in texts


class TestPostprocessProperties:
    @given(
        st.lists(
            st.lists(words, min_size=1, max_size=6),
            min_size=1,
            max_size=6,
        ),
        st.integers(1, 4),
        st.floats(0.1, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_assembly_invariants(self, day_token_lists, n, threshold):
        """Algorithm 1's loop terminates and respects every budget."""
        import datetime as _dt

        from repro.core.daily import RankedDay
        from repro.core.postprocess import assemble_timeline

        days = []
        for index, tokens in enumerate(day_token_lists):
            sentences = [
                f"{token} marker{index} filler{j}"
                for j, token in enumerate(tokens)
            ]
            days.append(
                RankedDay(
                    _dt.date(2020, 1, 1) + _dt.timedelta(days=index),
                    sentences,
                )
            )
        all_candidates = {
            sentence for day in days for sentence in day.sentences
        }
        timeline = assemble_timeline(
            days, n, redundancy_threshold=threshold
        )
        for date in timeline.dates:
            summary = timeline.summary(date)
            assert len(summary) <= n
            assert len(summary) == len(set(summary))
            for sentence in summary:
                assert sentence in all_candidates


class TestRecencyGridProperties:
    @given(st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_selection_subset_of_candidates(self, seed):
        """Date selection returns existing dates, sorted, within budget."""
        import datetime as _dt
        import random as _random

        from repro.core.date_selection import DateSelector
        from repro.tlsdata.types import DatedSentence

        rng = _random.Random(seed)
        pool = []
        base = _dt.date(2020, 1, 1)
        for _ in range(40):
            pub = base + _dt.timedelta(days=rng.randrange(60))
            pool.append(
                DatedSentence(pub, f"pub {rng.random()}.", pub)
            )
            if rng.random() < 0.5:
                mentioned = base + _dt.timedelta(days=rng.randrange(60))
                pool.append(
                    DatedSentence(
                        mentioned, f"ref {rng.random()}.", pub,
                        is_reference=True,
                    )
                )
        budget = rng.randint(1, 10)
        selected = DateSelector().select(pool, budget)
        candidates = {s.date for s in pool}
        assert len(selected) <= budget
        assert selected == sorted(selected)
        assert set(selected) <= candidates
