"""Tests for the WILSON ablation variants (Table 7)."""

from repro.core.variants import (
    wilson_full,
    wilson_tran,
    wilson_uniform,
    wilson_without_post,
)


class TestVariantConfigs:
    def test_full(self):
        wilson = wilson_full(10, 2)
        assert wilson.config.recency_adjustment
        assert wilson.config.postprocess
        assert not wilson.config.uniform_dates
        assert wilson.config.num_dates == 10
        assert wilson.config.sentences_per_date == 2

    def test_without_post(self):
        wilson = wilson_without_post(10, 2)
        assert wilson.config.recency_adjustment
        assert not wilson.config.postprocess

    def test_tran(self):
        wilson = wilson_tran(10, 2)
        assert not wilson.config.recency_adjustment
        assert wilson.config.postprocess
        assert not wilson.config.uniform_dates

    def test_uniform(self):
        wilson = wilson_uniform(10, 2)
        assert wilson.config.uniform_dates
        assert not wilson.config.recency_adjustment

    def test_auto_dates_default(self):
        assert wilson_full().config.num_dates is None


class TestVariantBehaviour:
    def test_all_variants_run(self, tiny_pool, tiny_instance):
        T = tiny_instance.target_num_dates
        for factory in (
            wilson_full, wilson_tran, wilson_uniform, wilson_without_post
        ):
            timeline = factory(T, 1).summarize(tiny_pool)
            assert 1 <= len(timeline) <= T

    def test_post_reduces_or_keeps_sentences(self, tiny_pool, tiny_instance):
        T = tiny_instance.target_num_dates
        with_post = wilson_full(T, 2).summarize(tiny_pool)
        without = wilson_without_post(T, 2).summarize(tiny_pool)
        assert with_post.num_sentences() <= without.num_sentences()

    def test_uniform_differs_from_graph_selection(
        self, tiny_pool, tiny_instance
    ):
        T = tiny_instance.target_num_dates
        uniform = wilson_uniform(T, 1).summarize(tiny_pool)
        graph = wilson_tran(T, 1).summarize(tiny_pool)
        assert uniform.dates != graph.dates
