"""Tests for word and sentence tokenisation."""

from repro.text.tokenize import (
    normalize_token,
    sentence_split,
    tokenize,
    tokenize_for_matching,
    word_count,
)


class TestTokenize:
    def test_simple_sentence(self):
        assert tokenize("Trump agrees to meet Kim.") == [
            "Trump", "agrees", "to", "meet", "Kim", ".",
        ]

    def test_iso_date_stays_whole(self):
        assert "2018-06-12" in tokenize("Summit on 2018-06-12 confirmed.")

    def test_numbers_with_separators(self):
        tokens = tokenize("Over 1,000 people and 3.5 percent")
        assert "1,000" in tokens
        assert "3.5" in tokens

    def test_contractions_kept_together(self):
        assert "won't" in tokenize("It won't happen")

    def test_hyphenated_words(self):
        assert "北" not in tokenize("North-South summit")
        assert "North-South" in tokenize("North-South summit")

    def test_punctuation_isolated(self):
        tokens = tokenize('He said: "never again!"')
        assert ":" in tokens
        assert "!" in tokens

    def test_empty_string(self):
        assert tokenize("") == []

    def test_percentage(self):
        assert "45%" in tokenize("supported by 45% of voters")


class TestNormalizeToken:
    def test_lowercases(self):
        assert normalize_token("Trump") == "trump"

    def test_strips_possessive(self):
        assert normalize_token("Jackson's") == "jackson"

    def test_strips_unicode_possessive(self):
        assert normalize_token("Jackson’s") == "jackson"


class TestTokenizeForMatching:
    def test_removes_stopwords_and_stems(self):
        tokens = tokenize_for_matching("The rebels were seizing strongholds")
        assert "the" not in tokens
        assert "rebel" in tokens
        assert "seiz" in tokens  # Porter stem of seizing

    def test_drops_pure_punctuation(self):
        tokens = tokenize_for_matching("Hello, world!")
        assert "," not in tokens
        assert "!" not in tokens

    def test_no_stem_option(self):
        tokens = tokenize_for_matching(
            "rebels seizing", stem=False, drop_stopwords=False
        )
        assert tokens == ["rebels", "seizing"]

    def test_deterministic(self):
        text = "Artillery fire struck the garrison at dawn."
        assert tokenize_for_matching(text) == tokenize_for_matching(text)


class TestSentenceSplit:
    def test_basic_split(self):
        result = sentence_split("One sentence here. Another one there.")
        assert result == ["One sentence here.", "Another one there."]

    def test_abbreviation_not_split(self):
        result = sentence_split("Dr. Murray was at home. Police raided it.")
        assert result == ["Dr. Murray was at home.", "Police raided it."]

    def test_month_abbreviation(self):
        result = sentence_split("It happened on Jan. 15 in Cairo. Crowds gathered.")
        assert len(result) == 2
        assert result[0].startswith("It happened")

    def test_initials_not_split(self):
        result = sentence_split("Michael J. Fox spoke. The crowd cheered.")
        assert result[0] == "Michael J. Fox spoke."

    def test_dotted_acronym(self):
        result = sentence_split("The U.S. Senate voted. It passed.")
        assert result == ["The U.S. Senate voted.", "It passed."]

    def test_question_and_exclamation(self):
        result = sentence_split("Will they meet? Yes! Talks are set.")
        assert len(result) == 3

    def test_paragraph_breaks(self):
        result = sentence_split("First paragraph\n\nSecond paragraph")
        assert result == ["First paragraph", "Second paragraph"]

    def test_quote_after_period(self):
        result = sentence_split('He said "stop." Then he left.')
        assert len(result) == 2

    def test_decimal_not_split(self):
        result = sentence_split("Growth hit 3.5 percent. Markets rallied.")
        assert result[0] == "Growth hit 3.5 percent."

    def test_empty_text(self):
        assert sentence_split("") == []

    def test_whitespace_only(self):
        assert sentence_split("   \n\n   ") == []


class TestWordCount:
    def test_counts_tokens_across_sentences(self):
        assert word_count(["One two.", "Three."]) == 5
