"""End-to-end integration tests crossing module boundaries.

These tests exercise the claims of the paper on a small synthetic
instance: the full raw-articles -> timeline path, the relative quality
ordering of the ablation variants, the speed gap against the submodular
framework, and the search-engine-backed real-time flow.
"""

import time

import pytest

from repro.baselines.submodular import tls_constraints
from repro.core.pipeline import Wilson, WilsonConfig
from repro.core.variants import wilson_full, wilson_uniform
from repro.evaluation.date_metrics import date_f1
from repro.evaluation.timeline_rouge import agreement_rouge, concat_rouge
from repro.search.realtime import RealTimeTimelineSystem
from repro.tlsdata.synthetic import SyntheticConfig, SyntheticCorpusGenerator


@pytest.fixture(scope="module")
def medium_instance():
    config = SyntheticConfig(
        topic="integration",
        theme="conflict",
        seed=42,
        duration_days=120,
        num_events=24,
        num_major_events=12,
        num_articles=120,
        sentences_per_article=14,
    )
    return SyntheticCorpusGenerator(config).generate()


@pytest.fixture(scope="module")
def medium_pool(medium_instance):
    return medium_instance.corpus.dated_sentences()


class TestEndToEnd:
    def test_raw_articles_to_timeline(self, medium_instance):
        wilson = Wilson(WilsonConfig(num_dates=10, sentences_per_date=2))
        timeline = wilson.summarize_corpus(medium_instance.corpus)
        assert 5 <= len(timeline) <= 10
        assert timeline.num_sentences() >= 5
        corpus_texts = set()
        for article in medium_instance.corpus.articles:
            corpus_texts.update(article.split_sentences())
        for sentence in timeline.all_sentences():
            assert sentence in corpus_texts

    def test_better_date_selection_better_rouge(
        self, medium_instance, medium_pool
    ):
        """The paper's core claim: accurate date selection drives quality."""
        T = medium_instance.target_num_dates
        N = medium_instance.target_sentences_per_date
        reference = medium_instance.reference

        full = wilson_full(T, N).summarize(
            medium_pool, query=medium_instance.corpus.query
        )
        uniform = wilson_uniform(T, N).summarize(
            medium_pool, query=medium_instance.corpus.query
        )

        full_f1 = date_f1(full.dates, reference.dates)
        uniform_f1 = date_f1(uniform.dates, reference.dates)
        assert full_f1 > uniform_f1

        full_agreement = agreement_rouge(full, reference, 2).f1
        uniform_agreement = agreement_rouge(uniform, reference, 2).f1
        assert full_agreement > uniform_agreement

    def test_wilson_faster_than_submodular(self, medium_instance, medium_pool):
        """Figure 2's claim at small scale: WILSON wins on wall time."""
        T = medium_instance.target_num_dates
        N = medium_instance.target_sentences_per_date

        start = time.perf_counter()
        wilson_full(T, N).summarize(medium_pool)
        wilson_seconds = time.perf_counter() - start

        start = time.perf_counter()
        tls_constraints().generate(medium_pool, T, N)
        submodular_seconds = time.perf_counter() - start

        assert wilson_seconds < submodular_seconds

    def test_wilson_competitive_with_submodular_on_quality(
        self, medium_instance, medium_pool
    ):
        T = medium_instance.target_num_dates
        N = medium_instance.target_sentences_per_date
        reference = medium_instance.reference
        wilson = wilson_full(T, N).summarize(medium_pool)
        submodular = tls_constraints().generate(medium_pool, T, N)
        wilson_r2 = concat_rouge(wilson, reference, 2).f1
        submodular_r2 = concat_rouge(submodular, reference, 2).f1
        assert wilson_r2 >= submodular_r2 * 0.9

    def test_realtime_query_subsecond(self, medium_instance):
        system = RealTimeTimelineSystem()
        system.ingest(medium_instance.corpus.articles)
        start, end = medium_instance.corpus.window
        response = system.generate_timeline(
            medium_instance.corpus.query, start, end,
            num_dates=10, num_sentences=1,
        )
        assert len(response.timeline) >= 3
        # "generate timelines by event keywords in seconds" (Section 5);
        # at this corpus scale it is far below one second.
        assert response.total_seconds < 5.0

    def test_pipeline_deterministic_end_to_end(self, medium_instance):
        wilson_a = Wilson(WilsonConfig(num_dates=8, sentences_per_date=1))
        wilson_b = Wilson(WilsonConfig(num_dates=8, sentences_per_date=1))
        assert wilson_a.summarize_corpus(
            medium_instance.corpus
        ) == wilson_b.summarize_corpus(medium_instance.corpus)
