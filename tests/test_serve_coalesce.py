"""Single-flight coalescing: the thundering-herd and its race windows.

Over real sockets: N identical concurrent cold requests produce
exactly one computation (one ``miss``, the rest served from the flight
or the cache). Then, with a scripted batcher for deterministic timing,
the three races docs/architecture.md promises are closed:

* a **failing leader** never poisons its followers -- they retry
  independently and succeed;
* an **invalidation between leader start and finish** discards the
  leader's result for followers too (the generation-guarded put is the
  flight's validity), so nobody serves a stale timeline;
* **drain while followers wait** resolves them with a clean 503 --
  no hang, no late work started on a draining server.
"""

import asyncio
import json
import threading

import pytest

from repro.search.realtime import RealTimeTimelineSystem
from repro.serve import (
    BackgroundServer,
    ServeConfig,
    TimelineServer,
)
from repro.serve.app import _Request
from repro.tlsdata.synthetic import make_timeline17_like
from tests.test_serve_app import _request, _timeline_payload


@pytest.fixture(scope="module")
def instance():
    return make_timeline17_like(scale=0.02, seed=11).instances[0]


@pytest.fixture(scope="module")
def system(instance):
    system = RealTimeTimelineSystem()
    system.ingest(instance.corpus.articles)
    return system


class TestHerdCollapse:
    def test_identical_concurrent_misses_compute_once(
        self, system, instance
    ):
        config = ServeConfig(port=0, batch_window_ms=2.0, workers=2)
        with BackgroundServer(TimelineServer(system, config)) as server:
            payload = _timeline_payload(instance)
            outcomes = []
            lock = threading.Lock()

            def fire():
                status, _, raw = _request(
                    server, "POST", "/v1/timeline", payload
                )
                with lock:
                    outcomes.append((status, raw))

            threads = [
                threading.Thread(target=fire) for _ in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert [status for status, _ in outcomes] == [200] * 8
            states = [
                json.loads(raw)["cache"] for _, raw in outcomes
            ]
            assert states.count("miss") == 1
            bodies = {
                json.dumps(
                    json.loads(raw)["result"], sort_keys=True
                )
                for _, raw in outcomes
            }
            assert len(bodies) == 1
            snapshot = server.metrics.snapshot()["counters"]
            assert snapshot.get("serve.coalesced_requests", 0) >= 1


class _ScriptedBatcher:
    """Stands in for the micro-batcher: the test scripts each submit."""

    def __init__(self):
        self.calls = 0
        self.entered = asyncio.Event()
        self.release = asyncio.Event()
        #: Outcomes consumed per call: "fail" or a result payload dict.
        self.script = []

    async def submit(self, query):
        self.calls += 1
        first = self.calls == 1
        if first:
            self.entered.set()
            await self.release.wait()
        outcome = self.script.pop(0)

        class Shard:
            pass

        shard = Shard()
        if outcome == "fail":
            shard.ok = False
            shard.error = "scripted failure"
            shard.value = None
        else:
            shard.ok = True
            shard.error = None

            class Value:
                @staticmethod
                def to_dict():
                    return outcome

            shard.value = Value()
        return shard


def _timeline_request(instance):
    start, end = instance.corpus.window
    body = json.dumps(
        {
            "keywords": list(instance.corpus.query),
            "start": start.isoformat(),
            "end": end.isoformat(),
            "num_dates": 5,
            "num_sentences": 1,
        }
    ).encode()
    return _Request(
        method="POST",
        path="/v1/timeline",
        query={},
        headers={"content-type": "application/json"},
        body=body,
        keep_alive=False,
    )


async def _race(system, instance, script, during_flight=None):
    """One leader (blocked in its scripted submit) plus two followers.

    Starts the leader, waits until it is inside the batcher, starts the
    followers, lets them join the flight, runs *during_flight*, then
    releases the leader. Returns ``(server, [leader, f1, f2])``
    responses, all resolved within a hard timeout (a hang is a fail,
    not a stuck suite).
    """
    server = TimelineServer(system, ServeConfig(port=0))
    batcher = _ScriptedBatcher()
    batcher.script = script
    server.batcher = batcher

    leader = asyncio.create_task(
        server._handle_timeline(_timeline_request(instance))
    )
    await asyncio.wait_for(batcher.entered.wait(), timeout=10)
    followers = [
        asyncio.create_task(
            server._handle_timeline(_timeline_request(instance))
        )
        for _ in range(2)
    ]
    # Let the followers reach their flight wait.
    for _ in range(10):
        await asyncio.sleep(0)
    counters = server.metrics.snapshot()["counters"]
    assert counters.get("serve.coalesced_requests", 0) == 2
    if during_flight is not None:
        during_flight(server)
    batcher.release.set()
    responses = await asyncio.wait_for(
        asyncio.gather(leader, *followers), timeout=10
    )
    return server, batcher, responses


class TestLeaderFailure:
    def test_followers_retry_independently_after_a_failed_leader(
        self, system, instance
    ):
        async def test():
            fresh = {"timeline": {"x": 1}, "num_candidates": 1}
            server, batcher, responses = await _race(
                system,
                instance,
                script=["fail", fresh, fresh],
            )
            leader, f1, f2 = responses
            assert leader.status == 500
            assert json.loads(leader.body)["error"] == "degraded"
            for follower in (f1, f2):
                assert follower.status == 200
                envelope = json.loads(follower.body)
                assert envelope["result"] == fresh
            # One failed leader computation plus at least one
            # independent recomputation (a follower that recomputes
            # fast enough legitimately serves its sibling from the
            # cache) -- no daisy-chained second flight, no poisoned
            # wait.
            assert batcher.calls in (2, 3)

        asyncio.run(test())


class TestMidFlightInvalidation:
    def test_followers_recompute_after_invalidation(
        self, system, instance
    ):
        async def test():
            stale = {"timeline": {"stale": True}, "num_candidates": 1}
            fresh = {"timeline": {"fresh": True}, "num_candidates": 1}
            server = TimelineServer(system, ServeConfig(port=0))
            # Ingest mode arms the generation guard (any non-None
            # sentinel: _handle_timeline only checks ``is not None``).
            server.ingest = object()
            batcher = _ScriptedBatcher()
            batcher.script = [stale, fresh, fresh]
            server.batcher = batcher
            leader = asyncio.create_task(
                server._handle_timeline(_timeline_request(instance))
            )
            await asyncio.wait_for(batcher.entered.wait(), timeout=10)
            followers = [
                asyncio.create_task(
                    server._handle_timeline(_timeline_request(instance))
                )
                for _ in range(2)
            ]
            for _ in range(10):
                await asyncio.sleep(0)
            server.cache.invalidate_where(lambda key: True)
            batcher.release.set()
            leader_response, f1, f2 = await asyncio.wait_for(
                asyncio.gather(leader, *followers), timeout=10
            )
            # The leader still answers its own request with the result
            # it computed; the *flight* is what the invalidation voids.
            assert leader_response.status == 200
            stale_result = json.loads(leader_response.body)["result"]
            assert stale_result["timeline"] == {"stale": True}
            for follower in (f1, f2):
                assert follower.status == 200
                envelope = json.loads(follower.body)
                assert envelope["result"]["timeline"] == {"fresh": True}
            # One leader computation plus at least one independent
            # recomputation; the invalidated result was never cached.
            assert batcher.calls in (2, 3)
            assert len(server.cache) <= 2

        asyncio.run(test())


class TestDrainWhileWaiting:
    def test_followers_get_a_clean_503_when_draining(
        self, system, instance
    ):
        async def test():
            def drain(server):
                server.admission.begin_drain()

            server, batcher, responses = await _race(
                system,
                instance,
                script=["fail"],
                during_flight=drain,
            )
            leader, f1, f2 = responses
            assert leader.status == 500
            for follower in (f1, f2):
                assert follower.status == 503
                envelope = json.loads(follower.body)
                assert envelope["error"] == "draining"
                assert dict(follower.extra_headers).get("Retry-After")
            # Followers never started late work on the draining server.
            assert batcher.calls == 1

        asyncio.run(test())
