"""Tests for cosine similarity helpers."""

import numpy as np
import pytest
from scipy import sparse

from repro.text.similarity import (
    cosine_similarity,
    cosine_similarity_matrix,
    max_similarity_to_set,
    sparse_cosine,
)


class TestSparseCosine:
    def test_identical_vectors(self):
        v = {0: 0.6, 1: 0.8}
        assert sparse_cosine(v, v) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert sparse_cosine({0: 1.0}, {1: 1.0}) == 0.0

    def test_empty_vector(self):
        assert sparse_cosine({}, {0: 1.0}) == 0.0

    def test_symmetry(self):
        a = {0: 0.3, 2: 0.9}
        b = {0: 0.5, 1: 0.5, 2: 0.1}
        assert sparse_cosine(a, b) == pytest.approx(sparse_cosine(b, a))

    def test_unnormalized_inputs(self):
        a = {0: 2.0}
        b = {0: 5.0}
        assert sparse_cosine(a, b) == pytest.approx(1.0)

    def test_normalized_fast_path_agrees(self):
        # On unit vectors the fast path (dot only) must agree with the
        # norm-dividing default.
        import math

        raw = [
            ({0: 0.3, 2: 0.9}, {0: 0.5, 1: 0.5, 2: 0.1}),
            ({1: 1.0}, {1: 0.4, 3: 0.6}),
            ({0: 0.25, 4: 0.75, 7: 0.5}, {4: 1.0}),
        ]
        for a, b in raw:
            norm_a = math.sqrt(sum(v * v for v in a.values()))
            norm_b = math.sqrt(sum(v * v for v in b.values()))
            a = {k: v / norm_a for k, v in a.items()}
            b = {k: v / norm_b for k, v in b.items()}
            assert sparse_cosine(a, b, normalized=True) == pytest.approx(
                sparse_cosine(a, b)
            )

    def test_normalized_fast_path_skips_norms(self):
        # normalized=True trusts the caller: it returns the raw dot.
        assert sparse_cosine({0: 2.0}, {0: 5.0}, normalized=True) == 10.0


class TestDenseCosine:
    def test_known_value(self):
        a = np.array([1.0, 0.0])
        b = np.array([1.0, 1.0])
        assert cosine_similarity(a, b) == pytest.approx(1 / np.sqrt(2))

    def test_zero_vector(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0


class TestSimilarityMatrix:
    def test_dense_input(self):
        matrix = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        result = cosine_similarity_matrix(matrix)
        assert result.shape == (3, 3)
        assert np.allclose(np.diag(result), 1.0)
        assert result[0, 1] == pytest.approx(0.0)
        assert result[0, 2] == pytest.approx(1 / np.sqrt(2))

    def test_sparse_input_matches_dense(self):
        dense = np.array([[1.0, 2.0, 0.0], [0.0, 1.0, 3.0]])
        from_dense = cosine_similarity_matrix(dense)
        from_sparse = cosine_similarity_matrix(sparse.csr_matrix(dense))
        assert np.allclose(from_dense, from_sparse)

    def test_zero_rows_yield_zero_similarity(self):
        matrix = np.array([[1.0, 0.0], [0.0, 0.0]])
        result = cosine_similarity_matrix(matrix)
        assert result[1, 0] == 0.0
        assert result[0, 1] == 0.0
        assert result[1, 1] == 0.0

    def test_values_clipped_to_unit_interval(self):
        rng = np.random.default_rng(0)
        matrix = rng.random((10, 4))
        result = cosine_similarity_matrix(matrix)
        assert result.max() <= 1.0
        assert result.min() >= -1.0


class TestMaxSimilarityToSet:
    def test_empty_set(self):
        assert max_similarity_to_set({0: 1.0}, []) == 0.0

    def test_picks_maximum(self):
        vector = {0: 1.0}
        pool = [{1: 1.0}, {0: 0.5, 1: 0.5}]
        expected = sparse_cosine(vector, pool[1])
        assert max_similarity_to_set(vector, pool) == pytest.approx(expected)
