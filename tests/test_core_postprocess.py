"""Tests for cross-date post-processing (Algorithm 1, lines 15-21)."""

import pytest

from repro.core.daily import RankedDay
from repro.core.postprocess import assemble_timeline, take_top_sentences
from tests.conftest import d


def _days():
    return [
        RankedDay(
            d("2020-01-01"),
            [
                "The ceasefire collapsed near the border after artillery fire.",
                "Officials announced emergency measures in the capital.",
            ],
        ),
        RankedDay(
            d("2020-01-05"),
            [
                "The ceasefire collapsed near the border after artillery fire.",
                "Rebels seized the stronghold outside the northern city.",
            ],
        ),
    ]


class TestTakeTopSentences:
    def test_takes_n_per_day(self):
        timeline = take_top_sentences(_days(), 1)
        assert len(timeline) == 2
        assert timeline.num_sentences() == 2

    def test_keeps_duplicates_across_days(self):
        timeline = take_top_sentences(_days(), 1)
        assert (
            timeline.summary(d("2020-01-01"))
            == timeline.summary(d("2020-01-05"))
        )

    def test_validates_n(self):
        with pytest.raises(ValueError):
            take_top_sentences(_days(), 0)


class TestAssembleTimeline:
    def test_removes_cross_date_duplicate(self):
        timeline = assemble_timeline(_days(), 1)
        first = timeline.summary(d("2020-01-01"))
        second = timeline.summary(d("2020-01-05"))
        assert first != second
        # Day 2 falls back to its second-ranked sentence.
        assert second == [
            "Rebels seized the stronghold outside the northern city."
        ]

    def test_respects_sentence_budget(self):
        timeline = assemble_timeline(_days(), 2)
        for date in timeline.dates:
            assert len(timeline.summary(date)) <= 2

    def test_high_threshold_keeps_everything(self):
        timeline = assemble_timeline(
            _days(), 1, redundancy_threshold=1.0
        )
        # Exact duplicates have cosine 1.0 which is not < 1.0... the
        # threshold test uses >=, so 1.0 still blocks exact duplicates;
        # near-but-not-exact duplicates pass.
        assert timeline.num_sentences() >= 1

    def test_terminates_when_heaps_exhaust(self):
        days = [RankedDay(d("2020-01-01"), ["Only sentence here."])]
        timeline = assemble_timeline(days, 5)
        assert timeline.num_sentences() == 1

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            assemble_timeline(_days(), 0)
        with pytest.raises(ValueError):
            assemble_timeline(_days(), 1, redundancy_threshold=0.0)

    def test_empty_days(self):
        timeline = assemble_timeline([], 2)
        assert len(timeline) == 0

    def test_within_round_redundancy_blocked(self):
        """Two days offering near-identical sentences in the same round."""
        days = [
            RankedDay(d("2020-01-01"),
                      ["The ceasefire collapsed near the border."]),
            RankedDay(d("2020-01-02"),
                      ["The ceasefire collapsed near the border again."]),
        ]
        timeline = assemble_timeline(days, 1, redundancy_threshold=0.5)
        assert timeline.num_sentences() == 1

    def test_distinct_content_all_kept(self):
        days = [
            RankedDay(d("2020-01-01"),
                      ["Artillery fire struck the garrison at dawn."]),
            RankedDay(d("2020-01-02"),
                      ["The vaccine rollout reached rural clinics."]),
        ]
        timeline = assemble_timeline(days, 1)
        assert timeline.num_sentences() == 2
