"""Cold-path query pruning: date cap, neighbour truncation, day cache.

Three serving-latency optimisations with one shared contract: at their
*defaults* they must not change a single served byte (the date cap is a
no-op below 512 candidates, neighbour truncation is a no-op below 128
neighbours, and the day-matrix cache replays bit-identical rankings).
These tests pin both halves -- the pruning fires when asked, and the
defaults stay exact.
"""

import datetime

import numpy as np
import pytest

from repro.core.daily import (
    DEFAULT_DAY_MATRIX_BYTES,
    DailySummarizer,
    DayMatrixCache,
)
from repro.core.date_selection import (
    DEFAULT_MAX_GRAPH_DATES,
    DateReferenceGraph,
    DateSelector,
)
from repro.core.pipeline import Wilson, WilsonConfig
from repro.obs.trace import Tracer
from repro.rank.textrank import DEFAULT_TEXTRANK_NEIGHBORS, truncate_neighbors
from repro.serve import canonical_json
from repro.tlsdata.synthetic import SyntheticConfig, SyntheticCorpusGenerator
from repro.tlsdata.types import DatedSentence
from tests.conftest import d


@pytest.fixture(scope="module")
def corpus():
    config = SyntheticConfig(
        topic="prune-test",
        theme="disaster",
        seed=7,
        duration_days=50,
        num_events=9,
        num_major_events=4,
        num_articles=16,
        sentences_per_article=6,
    )
    return SyntheticCorpusGenerator(config).generate().corpus


@pytest.fixture(scope="module")
def dated(corpus):
    return corpus.dated_sentences()


def _spread_sentences(num_dates, per_date=2):
    """Candidate dates with strictly decreasing mention mass."""
    base = d("2021-06-01")
    sentences = []
    for i in range(num_dates):
        date = base + datetime.timedelta(days=i)
        # Earlier dates get more mentions: mass(date_i) > mass(date_j)
        # for i < j, so top-K by mass is the chronological prefix.
        for j in range(per_date + (num_dates - i)):
            sentences.append(
                DatedSentence(
                    date=date,
                    text=f"Event {i} update {j} reported.",
                    publication_date=base + datetime.timedelta(days=i + j),
                    article_id=f"a{j}",
                )
            )
    return sentences


class TestTruncateNeighbors:
    def _matrix(self, n, seed=3):
        rng = np.random.default_rng(seed)
        matrix = rng.random((n, n))
        np.fill_diagonal(matrix, 0.0)
        return matrix

    def test_none_cap_is_identity(self):
        matrix = self._matrix(6)
        assert truncate_neighbors(matrix, None) is matrix

    def test_below_cap_is_identity(self):
        matrix = self._matrix(6)
        assert truncate_neighbors(matrix, 5) is matrix
        assert truncate_neighbors(matrix, 50) is matrix

    def test_keeps_each_rows_strongest_edges(self):
        matrix = self._matrix(8)
        k = 3
        truncated = truncate_neighbors(matrix, k)
        for row in range(8):
            kept = np.nonzero(truncated[row])[0]
            assert len(kept) == k
            threshold = np.sort(matrix[row])[-k]
            assert (matrix[row][kept] >= threshold).all()
            np.testing.assert_array_equal(
                truncated[row][kept], matrix[row][kept]
            )

    def test_counters_record_truncation(self):
        tracer = Tracer()
        matrix = self._matrix(8)
        truncated = truncate_neighbors(matrix, 3, tracer=tracer)
        assert tracer.counters["prune.textrank_rows_truncated"] == 8
        dropped = np.count_nonzero(matrix) - np.count_nonzero(truncated)
        assert tracer.counters["prune.textrank_edges_dropped"] == dropped
        assert dropped == 8 * (7 - 3)

    def test_no_counters_when_noop(self):
        tracer = Tracer()
        truncate_neighbors(self._matrix(4), 10, tracer=tracer)
        assert "prune.textrank_rows_truncated" not in tracer.counters

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError, match="neighbor_top_k"):
            truncate_neighbors(self._matrix(4), 0)


class TestDateCap:
    def test_top_dates_by_mass_picks_heaviest(self):
        sentences = _spread_sentences(6)
        graph = DateReferenceGraph(sentences)
        top = graph.top_dates_by_mass(3)
        assert len(top) == 3
        mass = graph.mention_mass()
        kept_floor = min(mass[date] for date in top)
        dropped_ceiling = max(
            mass[date] for date in mass if date not in top
        )
        assert kept_floor >= dropped_ceiling

    def test_cap_below_candidates_restricts_graph(self):
        sentences = _spread_sentences(8)
        tracer = Tracer()
        capped = DateSelector(max_graph_dates=3)
        selected = capped.select(sentences, num_dates=3, tracer=tracer)
        considered = tracer.counters["prune.graph_dates_considered"]
        pruned = tracer.counters["prune.graph_dates_pruned"]
        assert considered > 3
        assert pruned == considered - 3
        graph = DateReferenceGraph(sentences)
        assert set(selected) <= graph.top_dates_by_mass(3)

    def test_default_cap_is_noop_and_exact(self, dated):
        tracer = Tracer()
        default = DateSelector()
        unlimited = DateSelector(max_graph_dates=None)
        assert default.select(
            dated, num_dates=6, tracer=tracer
        ) == unlimited.select(dated, num_dates=6)
        assert tracer.counters["prune.graph_dates_pruned"] == 0
        assert (
            tracer.counters["prune.graph_dates_considered"]
            < DEFAULT_MAX_GRAPH_DATES
        )

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError, match="max_graph_dates"):
            DateSelector(max_graph_dates=0)
        with pytest.raises(ValueError, match="max_graph_dates"):
            WilsonConfig(max_graph_dates=-1)


class TestDayMatrixCache:
    _POOL = [
        "Rebels seized the border town at dawn.",
        "Government forces shelled the outskirts.",
        "Aid convoys reached the besieged district.",
        "Ceasefire talks resumed in the capital.",
    ]

    def test_hit_replays_identical_ranking(self):
        cache = DayMatrixCache()
        cache.sync_version(1)
        summarizer = DailySummarizer(matrix_cache=cache)
        tracer = Tracer()
        date = d("2021-06-01")
        first = summarizer.rank_day(date, self._POOL, tracer=tracer)
        assert tracer.counters["prune.day_matrix_misses"] == 1
        assert "prune.day_matrix_hits" not in tracer.counters
        second = summarizer.rank_day(date, self._POOL, tracer=tracer)
        assert tracer.counters["prune.day_matrix_hits"] == 1
        assert second.sentences == first.sentences
        # And identical to a cache-free summarizer, bit for bit.
        bare = DailySummarizer().rank_day(date, self._POOL)
        assert second.sentences == bare.sentences

    def test_sync_version_invalidates(self):
        cache = DayMatrixCache()
        cache.sync_version(1)
        summarizer = DailySummarizer(matrix_cache=cache)
        summarizer.rank_day(d("2021-06-01"), self._POOL)
        assert len(cache) == 1
        cache.sync_version(2)
        assert len(cache) == 0
        cache.sync_version(2)  # same version: no-op, entries survive
        summarizer.rank_day(d("2021-06-01"), self._POOL)
        cache.sync_version(2)
        assert len(cache) == 1

    def test_day_scoped_sync_evicts_only_touched_days(self):
        cache = DayMatrixCache()
        cache.sync_version(1)
        summarizer = DailySummarizer(matrix_cache=cache)
        tracer = Tracer()
        quiet, busy = d("2021-06-01"), d("2021-06-02")
        summarizer.rank_day(quiet, self._POOL, tracer=tracer)
        summarizer.rank_day(busy, self._POOL, tracer=tracer)
        assert len(cache) == 2
        assert tracer.counters["prune.day_matrix_misses"] == 2

        # An ingest seal touching only `busy` re-keys the survivors to
        # the new version instead of flushing everything.
        cache.sync_version(2, touched_dates={busy})
        assert cache.version == 2
        assert len(cache) == 1
        summarizer.rank_day(quiet, self._POOL, tracer=tracer)
        assert tracer.counters["prune.day_matrix_hits"] == 1
        summarizer.rank_day(busy, self._POOL, tracer=tracer)
        assert tracer.counters["prune.day_matrix_misses"] == 3

    def test_sync_with_no_touched_days_keeps_every_entry(self):
        cache = DayMatrixCache()
        cache.sync_version(1)
        summarizer = DailySummarizer(matrix_cache=cache)
        summarizer.rank_day(d("2021-06-01"), self._POOL)
        summarizer.rank_day(d("2021-06-02"), self._POOL)
        # A version bump whose seals touched no cached day (e.g. only
        # brand-new dates) costs zero evictions.
        cache.sync_version(2, touched_dates=frozenset())
        assert len(cache) == 2
        tracer = Tracer()
        summarizer.rank_day(d("2021-06-01"), self._POOL, tracer=tracer)
        assert tracer.counters["prune.day_matrix_hits"] == 1

    def test_sync_without_touched_dates_still_flushes(self):
        cache = DayMatrixCache()
        assert cache.version == -1
        cache.sync_version(1)
        assert cache.version == 1
        summarizer = DailySummarizer(matrix_cache=cache)
        summarizer.rank_day(d("2021-06-01"), self._POOL)
        # touched_dates=None is the conservative path: a full flush.
        cache.sync_version(2, touched_dates=None)
        assert len(cache) == 0

    def test_key_covers_ranking_parameters(self):
        cache = DayMatrixCache()
        cache.sync_version(1)
        date = d("2021-06-01")
        from repro.text.bm25 import BM25Parameters

        params = BM25Parameters()
        key = cache.make_key(date, self._POOL, params, None, 0.85)
        assert key != cache.make_key(date, self._POOL, params, None, 0.9)
        assert key != cache.make_key(date, self._POOL, params, 16, 0.85)
        assert key != cache.make_key(
            date, self._POOL[:-1], params, None, 0.85
        )
        cache.sync_version(2)
        assert key != cache.make_key(date, self._POOL, params, None, 0.85)

    def test_byte_budget_evicts_lru(self):
        order = tuple(range(100))  # 800 bytes each
        cache = DayMatrixCache(max_bytes=2000)
        for i in range(4):
            cache.put(("key", i), order)
        assert len(cache) == 2
        assert cache.nbytes <= 2000
        assert cache.get(("key", 3)) == order  # newest survives
        assert cache.get(("key", 0)) is None  # oldest evicted

    def test_oversized_entry_still_cached_alone(self):
        cache = DayMatrixCache(max_bytes=100)
        cache.put(("big",), tuple(range(50)))
        assert len(cache) == 1  # never evicts below one entry

    def test_query_bias_bypasses_cache(self):
        cache = DayMatrixCache()
        cache.sync_version(1)
        summarizer = DailySummarizer(query_bias=0.3, matrix_cache=cache)
        summarizer.rank_day(
            d("2021-06-01"), self._POOL, query=("rebels",)
        )
        assert len(cache) == 0

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError, match="max_bytes"):
            DayMatrixCache(max_bytes=0)
        assert DEFAULT_DAY_MATRIX_BYTES == 4 * 1024 * 1024


class TestPipelineEquivalence:
    def test_defaults_match_pruning_disabled_bytes(self, corpus):
        disabled = Wilson(
            WilsonConfig(
                max_graph_dates=None,
                textrank_neighbors=None,
                day_matrix_cache=False,
            )
        )
        defaults = Wilson(WilsonConfig())
        assert defaults.config.max_graph_dates == DEFAULT_MAX_GRAPH_DATES
        assert (
            defaults.config.textrank_neighbors
            == DEFAULT_TEXTRANK_NEIGHBORS
        )
        expected = canonical_json(
            disabled.summarize_corpus(
                corpus, num_dates=6, num_sentences=2
            ).to_dict()
        )
        actual = canonical_json(
            defaults.summarize_corpus(
                corpus, num_dates=6, num_sentences=2
            ).to_dict()
        )
        assert actual == expected

    def test_repeat_query_hits_day_cache_identically(self, corpus):
        wilson = Wilson(WilsonConfig())
        first = wilson.summarize_corpus(corpus, num_dates=6, num_sentences=2)
        tracer = Tracer()
        second = wilson.summarize_corpus(
            corpus, num_dates=6, num_sentences=2, tracer=tracer
        )
        assert tracer.counters.get("prune.day_matrix_hits", 0) > 0
        assert tracer.counters.get("prune.day_matrix_misses", 0) == 0
        assert canonical_json(second.to_dict()) == canonical_json(
            first.to_dict()
        )

    def test_tight_caps_still_produce_a_timeline(self, corpus):
        tight = Wilson(
            WilsonConfig(max_graph_dates=3, textrank_neighbors=2)
        )
        timeline = tight.summarize_corpus(
            corpus, num_dates=3, num_sentences=1
        )
        assert 0 < len(timeline.to_dict()) <= 3
