"""Tests for the temporal tagger and calendar helpers."""

import datetime

import pytest

from repro.temporal.calendar_utils import (
    clamp_day,
    month_number,
    most_recent_weekday,
    parse_iso,
    resolve_year,
    safe_date,
)
from repro.temporal.tagger import TemporalTagger

PUB = datetime.date(2018, 6, 1)


class TestCalendarUtils:
    def test_month_number_full_and_abbrev(self):
        assert month_number("June") == 6
        assert month_number("jun") == 6
        assert month_number("Sept.") == 9
        assert month_number("notamonth") is None

    def test_safe_date_invalid(self):
        assert safe_date(2018, 2, 31) is None
        assert safe_date(2018, 2, 28) == datetime.date(2018, 2, 28)

    def test_clamp_day(self):
        assert clamp_day(2018, 2, 31) == datetime.date(2018, 2, 28)
        assert clamp_day(2020, 2, 31) == datetime.date(2020, 2, 29)

    def test_resolve_year_picks_nearest(self):
        anchor = datetime.date(2018, 1, 10)
        assert resolve_year(12, 25, anchor) == datetime.date(2017, 12, 25)
        assert resolve_year(2, 1, anchor) == datetime.date(2018, 2, 1)

    def test_most_recent_weekday_directions(self):
        friday = datetime.date(2018, 6, 1)
        assert most_recent_weekday(0, friday, "past") == datetime.date(2018, 5, 28)
        assert most_recent_weekday(0, friday, "future") == datetime.date(2018, 6, 4)
        assert most_recent_weekday(3, friday, "nearest") == datetime.date(2018, 5, 31)

    def test_most_recent_weekday_bad_direction(self):
        with pytest.raises(ValueError):
            most_recent_weekday(0, PUB, "sideways")

    def test_parse_iso(self):
        assert parse_iso("2018-06-12") == datetime.date(2018, 6, 12)
        assert parse_iso("June 12") is None


class TestTagSentence:
    def test_mentioned_dates_extracted(self):
        tagger = TemporalTagger()
        tagged = tagger.tag_sentence(
            "The summit on June 12, 2018 was confirmed.", PUB
        )
        assert tagged.mentioned_dates == (datetime.date(2018, 6, 12),)
        assert tagged.publication_date == PUB

    def test_duplicate_dates_deduplicated(self):
        tagger = TemporalTagger()
        tagged = tagger.tag_sentence(
            "On June 12, 2018 -- yes, June 12, 2018 -- they met.", PUB
        )
        assert tagged.mentioned_dates.count(datetime.date(2018, 6, 12)) == 1

    def test_window_filtering(self):
        tagger = TemporalTagger(
            window=(datetime.date(2018, 5, 1), datetime.date(2018, 6, 30))
        )
        tagged = tagger.tag_sentence(
            "Events of March 1, 2017 and June 12, 2018 were compared.",
            PUB,
        )
        assert tagged.mentioned_dates == (datetime.date(2018, 6, 12),)

    def test_relative_disabled(self):
        tagger = TemporalTagger(include_relative=False)
        tagged = tagger.tag_sentence("It happened yesterday.", PUB)
        assert tagged.mentioned_dates == ()

    def test_relative_enabled(self):
        tagger = TemporalTagger()
        tagged = tagger.tag_sentence("It happened yesterday.", PUB)
        assert tagged.mentioned_dates == (PUB - datetime.timedelta(days=1),)

    def test_all_dates_puts_publication_first(self):
        tagger = TemporalTagger()
        tagged = tagger.tag_sentence(
            "The summit on June 12, 2018 was confirmed.", PUB
        )
        assert tagged.all_dates[0] == PUB
        assert datetime.date(2018, 6, 12) in tagged.all_dates

    def test_all_dates_dedupes_publication(self):
        tagger = TemporalTagger()
        tagged = tagger.tag_sentence(
            "The decision came today, June 1, 2018.", PUB
        )
        assert tagged.all_dates.count(PUB) == 1

    def test_tag_sentences_batch(self):
        tagger = TemporalTagger()
        tagged = tagger.tag_sentences(
            ["First sentence.", "Second on June 12, 2018."], PUB
        )
        assert len(tagged) == 2
        assert tagged[0].mentioned_dates == ()
        assert tagged[1].mentioned_dates == (datetime.date(2018, 6, 12),)
