"""Tests for the query-biased daily summarisation extension."""

import pytest

from repro.core.daily import DailySummarizer
from repro.core.pipeline import Wilson, WilsonConfig
from repro.rank.textrank import textrank_bm25
from tests.conftest import d

SENTENCES = [
    "The ceasefire collapsed near the border after artillery fire.",
    "Artillery fire broke the ceasefire along the border region.",
    "The vaccine rollout reached rural clinics this week, officials said.",
    "Clinics received new vaccine shipments for the rollout campaign.",
]


class TestTextrankQueryBias:
    def test_zero_bias_matches_plain(self):
        plain = textrank_bm25(SENTENCES)
        biased = textrank_bm25(
            SENTENCES, query=("vaccine",), query_bias=0.0
        )
        assert plain == biased

    def test_bias_lifts_query_relevant_cluster(self):
        strong = textrank_bm25(
            SENTENCES, query=("vaccine", "clinics"), query_bias=0.9
        )
        # With a strong vaccine bias the top sentence is a vaccine one.
        assert strong[0] in (2, 3)

    def test_bias_without_query_is_plain(self):
        assert textrank_bm25(SENTENCES, query=(), query_bias=0.9) == (
            textrank_bm25(SENTENCES)
        )

    def test_oov_query_falls_back_to_uniform(self):
        order = textrank_bm25(
            SENTENCES, query=("zzzz",), query_bias=0.9
        )
        assert sorted(order) == list(range(len(SENTENCES)))

    def test_invalid_bias_rejected(self):
        with pytest.raises(ValueError):
            textrank_bm25(SENTENCES, query=("x",), query_bias=1.5)


class TestDailySummarizerBias:
    def test_rank_day_accepts_query(self):
        summarizer = DailySummarizer(query_bias=0.8)
        ranked = summarizer.rank_day(
            d("2020-01-01"), SENTENCES, query=("vaccine",)
        )
        assert ranked.sentences[0] in (SENTENCES[2], SENTENCES[3])

    def test_default_bias_ignores_query(self):
        plain = DailySummarizer().rank_day(d("2020-01-01"), SENTENCES)
        with_query = DailySummarizer().rank_day(
            d("2020-01-01"), SENTENCES, query=("vaccine",)
        )
        assert plain.sentences == with_query.sentences


class TestPipelineBias:
    def test_config_plumbs_through(self, tiny_pool, tiny_instance):
        biased = Wilson(
            WilsonConfig(num_dates=5, sentences_per_date=1,
                         query_bias=0.5)
        )
        timeline = biased.summarize(
            tiny_pool, query=tiny_instance.corpus.query
        )
        assert 1 <= len(timeline) <= 5

    def test_bias_changes_selection_somewhere(self, tiny_pool, tiny_instance):
        plain = Wilson(
            WilsonConfig(num_dates=8, sentences_per_date=2)
        ).summarize(tiny_pool, query=tiny_instance.corpus.query)
        biased = Wilson(
            WilsonConfig(num_dates=8, sentences_per_date=2,
                         query_bias=0.9)
        ).summarize(tiny_pool, query=tiny_instance.corpus.query)
        assert plain.dates == biased.dates  # date stage unaffected
        # Sentence stage may (and in practice does) differ somewhere.
        assert plain != biased or plain.num_sentences() == 0
