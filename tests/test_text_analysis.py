"""Tests for the shared text-analysis cache (repro.text.analysis)."""

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.pipeline import Wilson, WilsonConfig
from repro.obs.trace import Tracer
from repro.text.analysis import (
    AnalyzedCorpus,
    CacheStats,
    TokenCache,
    tokenize_with,
)
from repro.text.tokenize import tokenize_for_matching

TEXTS = [
    "The ceasefire collapsed near the border.",
    "Rebels seized the stronghold outside the city.",
    "The ceasefire collapsed near the border.",
    "A truce was signed after lengthy talks.",
]


class TestTokenCache:
    def test_matches_direct_tokenization(self):
        cache = TokenCache()
        for text in TEXTS:
            assert list(cache.tokens(text)) == tokenize_for_matching(text)

    def test_tokenizes_each_distinct_text_once(self):
        cache = TokenCache()
        for text in TEXTS * 3:
            cache.tokens(text)
        stats = cache.stats()
        assert stats.misses == len(set(TEXTS))
        assert stats.hits == len(TEXTS) * 3 - len(set(TEXTS))
        assert len(cache) == len(set(TEXTS))

    def test_repeat_lookup_returns_same_object(self):
        cache = TokenCache()
        first = cache.tokens(TEXTS[0])
        second = cache.tokens(TEXTS[0])
        assert first is second

    def test_tokens_many_aligned(self):
        cache = TokenCache()
        streams = cache.tokens_many(TEXTS)
        assert len(streams) == len(TEXTS)
        assert streams[0] is streams[2]

    def test_respects_normalization_configuration(self):
        cache = TokenCache(stem=False, drop_stopwords=False)
        assert list(cache.tokens(TEXTS[0])) == tokenize_for_matching(
            TEXTS[0], stem=False, drop_stopwords=False
        )

    def test_token_ids_round_trip(self):
        cache = TokenCache()
        ids = cache.token_ids(TEXTS[0])
        assert ids.dtype == np.int32
        tokens = [cache.vocabulary.token(int(i)) for i in ids]
        assert tokens == list(cache.tokens(TEXTS[0]))
        assert cache.token_ids(TEXTS[0]) is ids

    def test_contains_and_clear(self):
        cache = TokenCache()
        cache.tokens(TEXTS[0])
        assert TEXTS[0] in cache
        cache.clear()
        assert TEXTS[0] not in cache
        assert len(cache) == 0

    def test_stats_delta(self):
        cache = TokenCache()
        cache.tokens(TEXTS[0])
        before = cache.stats()
        cache.tokens(TEXTS[0])
        cache.tokens(TEXTS[1])
        delta = cache.stats().delta(before)
        assert delta.hits == 1
        assert delta.misses == 1
        assert delta.tokenize_seconds >= 0.0

    def test_report_emits_analysis_counters(self):
        cache = TokenCache()
        before = cache.stats()
        cache.tokens_many(TEXTS)
        tracer = Tracer()
        cache.report(tracer, before)
        assert tracer.counters["analysis.cache_hits"] == 1
        assert tracer.counters["analysis.cache_misses"] == 3
        assert tracer.counters["analysis.tokenize_seconds"] >= 0.0

    def test_thread_safe_under_concurrent_lookups(self):
        cache = TokenCache()
        texts = TEXTS * 50
        with ThreadPoolExecutor(max_workers=8) as executor:
            list(executor.map(cache.tokens, texts))
        stats = cache.stats()
        assert len(cache) == len(set(TEXTS))
        assert stats.hits + stats.misses == len(texts)
        # Races may double-tokenise, but the cache never stores twice.
        assert stats.hits >= len(texts) - 2 * len(set(TEXTS))


class TestTokenizeWith:
    def test_none_matches_cache(self):
        cache = TokenCache()
        uncached = tokenize_with(None, TEXTS)
        cached = tokenize_with(cache, TEXTS)
        assert [list(t) for t in cached] == [list(t) for t in uncached]


class TestAnalyzedCorpus:
    def test_token_lists_align_with_sentences(self):
        analyzed = AnalyzedCorpus(TEXTS)
        assert len(analyzed) == len(TEXTS)
        for text, tokens in zip(analyzed.sentences, analyzed.token_lists):
            assert list(tokens) == tokenize_for_matching(text)

    def test_duplicates_share_one_stream(self):
        analyzed = AnalyzedCorpus(TEXTS)
        assert analyzed.num_distinct == len(set(TEXTS))
        assert analyzed.token_lists[0] is analyzed.token_lists[2]

    def test_distinct_order_is_first_seen(self):
        analyzed = AnalyzedCorpus(TEXTS)
        assert analyzed.distinct_texts() == [
            TEXTS[0], TEXTS[1], TEXTS[3],
        ]
        assert analyzed.index_of(TEXTS[1]) == 1
        assert analyzed.tokens_of(TEXTS[3]) == analyzed.token_lists[3]

    def test_uses_shared_cache(self):
        cache = TokenCache()
        AnalyzedCorpus(TEXTS, cache=cache)
        assert cache.stats().misses == len(set(TEXTS))
        AnalyzedCorpus(TEXTS, cache=cache)
        assert cache.stats().misses == len(set(TEXTS))


class TestPipelineCacheSmoke:
    """Tier-1 perf smoke test: counter-based, no wall clocks (satellite 4)."""

    def test_pipeline_reuses_tokenization(self, tiny_pool):
        wilson = Wilson(WilsonConfig(num_dates=5))
        tracer = Tracer()
        wilson.summarize(tiny_pool, tracer=tracer)
        assert wilson.cache is not None
        # Stages overlap on the same sentence texts, so the shared cache
        # must serve hits within a single run...
        assert tracer.counters["analysis.cache_hits"] > 0
        # ...and tokenise each distinct text at most once overall.
        assert tracer.counters["analysis.cache_misses"] == len(wilson.cache)

    def test_second_run_is_fully_warm(self, tiny_pool):
        wilson = Wilson(WilsonConfig(num_dates=5))
        wilson.summarize(tiny_pool)
        tracer = Tracer()
        wilson.summarize(tiny_pool, tracer=tracer)
        assert tracer.counters["analysis.cache_misses"] == 0
        assert tracer.counters["analysis.cache_hits"] > 0

    def test_cache_disabled_leaves_no_cache(self, tiny_pool):
        wilson = Wilson(WilsonConfig(num_dates=5, analysis_cache=False))
        tracer = Tracer()
        wilson.summarize(tiny_pool, tracer=tracer)
        assert wilson.cache is None
        assert "analysis.cache_hits" not in tracer.counters


def test_cache_stats_defaults():
    stats = CacheStats()
    assert stats.hits == 0 and stats.misses == 0
    assert stats.tokenize_seconds == 0.0
