"""The HTTP timeline service: equivalence, wire schema, shedding, drain.

Drives a real :class:`~repro.serve.TimelineServer` over actual sockets
(:class:`~repro.serve.BackgroundServer`) and pins the service contract:

* a timeline served over HTTP is **byte-identical** to the direct
  library call, on both the cold and the cache-hit path;
* the wire schema cannot drift silently (exact key sets);
* admission control sheds with 429 + ``Retry-After`` and drains with 503;
* a poisoned query degrades its own response, not its batchmates';
* the ``serve.*`` telemetry stays inside the documented name registry.
"""

import http.client
import json

import pytest

from repro.search.realtime import RealTimeTimelineSystem
from repro.serve import (
    SERVE_METRIC_NAMES,
    WIRE_SCHEMA,
    BackgroundServer,
    ServeConfig,
    TimelineServer,
    canonical_json,
)
from repro.tlsdata.synthetic import make_timeline17_like


@pytest.fixture(scope="module")
def instance():
    return make_timeline17_like(scale=0.02, seed=11).instances[0]


@pytest.fixture(scope="module")
def system(instance):
    system = RealTimeTimelineSystem()
    system.ingest(instance.corpus.articles)
    return system


@pytest.fixture()
def server(system):
    config = ServeConfig(port=0, batch_window_ms=2.0, workers=2)
    with BackgroundServer(TimelineServer(system, config)) as running:
        yield running


def _request(server, method, path, payload=None):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        conn.request(
            method, path, body=body,
            headers={"Content-Type": "application/json"} if body else {},
        )
        response = conn.getresponse()
        raw = response.read()
        return response.status, dict(response.getheaders()), raw
    finally:
        conn.close()


def _timeline_payload(instance, **overrides):
    start, end = instance.corpus.window
    payload = {
        "keywords": list(instance.corpus.query),
        "start": start.isoformat(),
        "end": end.isoformat(),
        "num_dates": 5,
        "num_sentences": 1,
    }
    payload.update(overrides)
    return payload


class TestByteEquivalence:
    def test_served_equals_direct_cold_and_warm(
        self, server, system, instance
    ):
        payload = _timeline_payload(instance)
        start, end = instance.corpus.window
        direct = system.generate_timeline(
            keywords=tuple(payload["keywords"]),
            start=start,
            end=end,
            num_dates=5,
            num_sentences=1,
        )
        expected = canonical_json(direct.timeline.to_dict())

        status, _, raw = _request(
            server, "POST", "/v1/timeline", payload
        )
        assert status == 200
        cold = json.loads(raw)
        assert cold["cache"] == "miss"
        assert canonical_json(cold["result"]["timeline"]) == expected
        assert cold["result"]["num_candidates"] == direct.num_candidates

        status, _, raw = _request(
            server, "POST", "/v1/timeline", payload
        )
        assert status == 200
        warm = json.loads(raw)
        assert warm["cache"] == "hit"
        assert canonical_json(warm["result"]["timeline"]) == expected

    def test_normalized_queries_share_the_cache_entry(
        self, server, instance
    ):
        payload = _timeline_payload(instance)
        _request(server, "POST", "/v1/timeline", payload)
        shouted = dict(
            payload, keywords=[k.upper() for k in payload["keywords"]]
        )
        status, _, raw = _request(server, "POST", "/v1/timeline", shouted)
        assert status == 200
        assert json.loads(raw)["cache"] == "hit"


class TestWireSchema:
    def test_timeline_envelope_is_stable(self, server, instance):
        status, headers, raw = _request(
            server, "POST", "/v1/timeline", _timeline_payload(instance)
        )
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        envelope = json.loads(raw)
        assert set(envelope) == {
            "schema", "cache", "index_version", "result",
        }
        assert envelope["schema"] == WIRE_SCHEMA
        assert envelope["cache"] in ("hit", "miss")
        assert isinstance(envelope["index_version"], int)
        result = envelope["result"]
        assert set(result) == {"timeline", "num_candidates", "telemetry"}
        assert set(result["telemetry"]) == {
            "retrieval_seconds", "generation_seconds", "total_seconds",
        }
        for date, sentences in result["timeline"].items():
            assert date == date[:10]  # ISO YYYY-MM-DD keys
            assert isinstance(sentences, list)
            assert all(isinstance(s, str) for s in sentences)

    def test_response_to_dict_matches_cli_json(self, system, instance):
        # The CLI --json path and the HTTP layer serialise through the
        # same TimelineResponse.to_dict(); pin its shape once here.
        start, end = instance.corpus.window
        response = system.generate_timeline(
            instance.corpus.query, start, end, num_dates=4
        )
        payload = response.to_dict()
        assert set(payload) == {"timeline", "num_candidates", "telemetry"}
        assert payload["timeline"] == response.timeline.to_dict()

    def test_search_envelope_is_stable(self, server, instance):
        terms = "+".join(instance.corpus.query)
        status, _, raw = _request(
            server, "GET", f"/v1/search?q={terms}&limit=3"
        )
        assert status == 200
        envelope = json.loads(raw)
        assert set(envelope) == {"schema", "index_version", "count", "hits"}
        assert envelope["count"] == len(envelope["hits"]) <= 3
        for hit in envelope["hits"]:
            assert set(hit) == {
                "text", "date", "publication_date", "article_id",
                "is_reference", "score",
            }

    def test_healthz(self, server, system):
        status, _, raw = _request(server, "GET", "/healthz")
        assert status == 200
        health = json.loads(raw)
        assert health["status"] == "ok"
        assert health["indexed_sentences"] == (
            system.engine.num_indexed_sentences
        )
        assert health["index_version"] == system.index_version


class TestErrors:
    def test_unknown_route_404(self, server):
        status, _, raw = _request(server, "GET", "/nope")
        assert status == 404
        assert json.loads(raw)["schema"] == WIRE_SCHEMA

    def test_wrong_method_405(self, server):
        status, _, _ = _request(server, "GET", "/v1/timeline")
        assert status == 405
        status, _, _ = _request(server, "POST", "/v1/search")
        assert status == 405

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"keywords": []},
            {"keywords": ["ok"], "start": "not-a-date"},
            {"keywords": ["ok"], "num_dates": 0},
            {"keywords": ["ok"], "num_dates": "five"},
            {"keywords": ["ok"], "start": "2021-02-01", "end": "2021-01-01"},
            {"keywords": [42]},
        ],
    )
    def test_bad_timeline_requests_400(self, server, payload):
        status, _, raw = _request(server, "POST", "/v1/timeline", payload)
        assert status == 400
        assert "detail" in json.loads(raw)

    def test_invalid_json_body_400(self, server):
        conn = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=60
        )
        try:
            conn.request("POST", "/v1/timeline", body=b"{nope")
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_search_without_q_400(self, server):
        status, _, _ = _request(server, "GET", "/v1/search")
        assert status == 400

    def test_oversized_body_413(self, server):
        conn = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=60
        )
        try:
            # Declare an over-limit body without sending it: the server
            # must answer 413 from the header alone and close.
            conn.putrequest("POST", "/v1/timeline")
            conn.putheader("Content-Length", str((1 << 20) + 1))
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 413
            assert json.loads(response.read())["error"] == (
                "payload too large"
            )
        finally:
            conn.close()


class TestAdmissionOverHttp:
    def test_saturated_server_sheds_with_429(self, server, instance):
        # Fill the admission limit by hand: deterministic saturation
        # without racing real slow requests.
        admitted = 0
        while server.admission.try_admit():
            admitted += 1
        try:
            payload = _timeline_payload(instance, num_dates=3)
            status, headers, raw = _request(
                server, "POST", "/v1/timeline", payload
            )
            assert status == 429
            assert "Retry-After" in headers
            assert json.loads(raw)["error"] == "overloaded"
        finally:
            for _ in range(admitted):
                server.admission.release()

    def test_cache_hits_bypass_admission(self, server, instance):
        payload = _timeline_payload(instance, num_dates=4)
        status, _, _ = _request(server, "POST", "/v1/timeline", payload)
        assert status == 200
        admitted = 0
        while server.admission.try_admit():
            admitted += 1
        try:
            status, _, raw = _request(
                server, "POST", "/v1/timeline", payload
            )
            assert status == 200
            assert json.loads(raw)["cache"] == "hit"
        finally:
            for _ in range(admitted):
                server.admission.release()

    def test_draining_server_rejects_with_503(self, server, instance):
        server.admission.begin_drain()
        status, headers, raw = _request(
            server, "POST", "/v1/timeline",
            _timeline_payload(instance, num_dates=2),
        )
        assert status == 503
        assert "Retry-After" in headers
        assert json.loads(raw)["error"] == "draining"
        status, _, _ = _request(server, "GET", "/healthz")
        assert status == 503


class TestFaultIsolation:
    def test_poisoned_query_degrades_only_itself(self, system, instance):
        original = system._serve_query

        def poisoned(query):
            if "poison" in query.keywords:
                raise RuntimeError("poisoned query")
            return original(query)

        config = ServeConfig(
            port=0, batch_window_ms=50.0, workers=2, batch_retries=0
        )
        system._serve_query = poisoned
        try:
            with BackgroundServer(TimelineServer(system, config)) as server:
                import threading

                results = {}

                def fire(name, payload):
                    results[name] = _request(
                        server, "POST", "/v1/timeline", payload
                    )

                good = _timeline_payload(instance, num_dates=3)
                bad = _timeline_payload(
                    instance, keywords=["poison"], num_dates=3
                )
                threads = [
                    threading.Thread(target=fire, args=("good", good)),
                    threading.Thread(target=fire, args=("bad", bad)),
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()

                good_status, _, good_raw = results["good"]
                bad_status, _, bad_raw = results["bad"]
                assert good_status == 200
                assert json.loads(good_raw)["result"]["timeline"]
                assert bad_status == 500
                assert json.loads(bad_raw)["error"] == "degraded"
                assert "poisoned" in json.loads(bad_raw)["detail"]
        finally:
            system._serve_query = original


class TestTelemetryRegistry:
    def test_emitted_serve_metrics_stay_in_the_registry(
        self, system, instance
    ):
        config = ServeConfig(port=0, batch_window_ms=2.0)
        with BackgroundServer(TimelineServer(system, config)) as server:
            _request(server, "POST", "/v1/timeline", {"keywords": []})
            _request(
                server, "POST", "/v1/timeline",
                _timeline_payload(instance, num_dates=3),
            )
            _request(
                server, "POST", "/v1/timeline",
                _timeline_payload(instance, num_dates=3),
            )
            terms = "+".join(instance.corpus.query)
            _request(server, "GET", f"/v1/search?q={terms}")
            _request(server, "GET", "/missing")
            status, _, raw = _request(server, "GET", "/metrics")
            assert status == 200
            snapshot = server.metrics.snapshot()

        emitted = set()
        for kind in ("counters", "gauges", "histograms"):
            emitted.update(
                name
                for name in snapshot[kind]
                if name.startswith("serve.")
            )
        assert emitted  # the exercise actually recorded serve metrics
        assert emitted <= set(SERVE_METRIC_NAMES), (
            "serve layer emitted metrics outside SERVE_METRIC_NAMES: "
            f"{sorted(emitted - set(SERVE_METRIC_NAMES))}"
        )
        # The load-bearing instruments all fired.
        for name in (
            "serve.requests",
            "serve.timeline_requests",
            "serve.cache_hits",
            "serve.cache_misses",
            "serve.bad_requests",
            "serve.not_found",
            "serve.search_requests",
            "serve.batches",
        ):
            assert snapshot["counters"][name] >= 1, name
        assert snapshot["histograms"]["serve.request_seconds"]["count"] >= 5

        text = raw.decode("utf-8")
        assert "# TYPE wilson_serve_requests_total counter" in text
        assert 'wilson_serve_request_seconds{quantile="0.5"}' in text
        assert "wilson_serve_request_seconds_count" in text


class TestGracefulShutdown:
    def test_background_server_drains_cleanly(self, system, instance):
        config = ServeConfig(port=0, batch_window_ms=2.0)
        harness = BackgroundServer(TimelineServer(system, config))
        server = harness.__enter__()
        status, _, _ = _request(
            server, "POST", "/v1/timeline",
            _timeline_payload(instance, num_dates=3),
        )
        assert status == 200
        harness.__exit__(None, None, None)
        assert server.admission.draining
        assert server.admission.inflight == 0
