"""Tests for JSONL persistence."""

from repro.tlsdata.loaders import (
    load_corpus,
    load_dataset,
    load_timeline,
    save_corpus,
    save_dataset,
    save_timeline,
)
from repro.tlsdata.synthetic import SyntheticConfig, SyntheticCorpusGenerator
from repro.tlsdata.types import Dataset, Timeline
from tests.conftest import d


def _instance(seed=1):
    config = SyntheticConfig(
        topic="io-test",
        theme="economy",
        seed=seed,
        duration_days=40,
        num_events=8,
        num_major_events=4,
        num_articles=12,
        sentences_per_article=6,
    )
    return SyntheticCorpusGenerator(config).generate()


class TestTimelineIO:
    def test_roundtrip(self, tmp_path):
        timeline = Timeline(
            {d("2020-01-01"): ["alpha"], d("2020-02-02"): ["beta", "gamma"]}
        )
        path = tmp_path / "timeline.json"
        save_timeline(timeline, path)
        assert load_timeline(path) == timeline

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "nested" / "deep" / "timeline.json"
        save_timeline(Timeline({d("2020-01-01"): ["x"]}), path)
        assert path.exists()


class TestCorpusIO:
    def test_roundtrip(self, tmp_path):
        corpus = _instance().corpus
        path = tmp_path / "corpus.jsonl"
        save_corpus(corpus, path)
        loaded = load_corpus(path)
        assert loaded.topic == corpus.topic
        assert loaded.query == corpus.query
        assert loaded.window == corpus.window
        assert len(loaded.articles) == len(corpus.articles)
        assert loaded.articles[0].text == corpus.articles[0].text
        assert (
            loaded.articles[0].publication_date
            == corpus.articles[0].publication_date
        )

    def test_sentences_preserved(self, tmp_path):
        corpus = _instance().corpus
        path = tmp_path / "corpus.jsonl"
        save_corpus(corpus, path)
        loaded = load_corpus(path)
        assert (
            loaded.articles[0].split_sentences()
            == corpus.articles[0].split_sentences()
        )


class TestDatasetIO:
    def test_roundtrip(self, tmp_path):
        dataset = Dataset("mini", [_instance(1), _instance(2)])
        save_dataset(dataset, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert loaded.name == "mini"
        assert len(loaded) == 2
        for original, restored in zip(dataset, loaded):
            assert restored.name == original.name
            assert restored.reference == original.reference
            assert len(restored.corpus.articles) == len(
                original.corpus.articles
            )

    def test_instance_names_with_slashes(self, tmp_path):
        instance = _instance()
        instance.name = "topic/agency0"
        dataset = Dataset("mini", [instance])
        save_dataset(dataset, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert loaded.instances[0].name == "topic/agency0"
