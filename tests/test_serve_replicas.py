"""Replica failover kill drills: availability without degradation.

Drives a real :class:`~repro.serve.TimelineRouter` over sockets against
in-process replica workers (each a :class:`~repro.serve.TimelineServer`
booted from the same topology slice) and pins the replicated-serving
contract of docs/serving.md:

* (a) a dead replica costs an in-flight retry on a sibling -- every
  response stays 200 with **no** ``X-Wilson-Degraded`` header;
* (b) a whole slice down (every replica dead) degrades exactly like the
  unreplicated tier: 200 + degraded header, never a 5xx;
* (c) a recovered replica is re-admitted after consecutive probe
  successes and serves traffic again;
* (d) routed bytes stay identical to single-index serving under every
  mix of live replicas that keeps each shard covered.
"""

import http.client
import itertools
import json
import socket

import pytest

from repro.core.pipeline import Wilson, WilsonConfig
from repro.obs.metrics import Metrics
from repro.search.engine import SearchEngine
from repro.search.realtime import RealTimeTimelineSystem
from repro.serve import (
    DEAD,
    DEGRADED_HEADER,
    HEALTHY,
    BackgroundServer,
    HealthConfig,
    RouterConfig,
    ServeConfig,
    TimelineRouter,
    TimelineServer,
    canonical_json,
    export_slices,
)
from repro.tlsdata.synthetic import make_timeline17_like
from tests.conftest import wait_until

NUM_SHARDS = 2
REPLICAS = 2


@pytest.fixture(scope="module")
def instance():
    return make_timeline17_like(scale=0.02, seed=11).instances[0]


@pytest.fixture(scope="module")
def system(instance):
    system = RealTimeTimelineSystem()
    system.ingest(instance.corpus.articles)
    return system


@pytest.fixture(scope="module")
def topology(system, tmp_path_factory):
    return export_slices(
        system.engine.index,
        tmp_path_factory.mktemp("topology"),
        NUM_SHARDS,
    )


def _shard_system(slice_path):
    wilson = Wilson(WilsonConfig())
    engine = SearchEngine.load_snapshot(slice_path, cache=wilson.cache)
    return RealTimeTimelineSystem(
        engine=engine, wilson=wilson, cache=wilson.cache
    )


def _replica_server(slice_path, port=0):
    return TimelineServer(
        _shard_system(slice_path),
        ServeConfig(port=port, batch_window_ms=2.0),
    )


@pytest.fixture(scope="module")
def replica_fleet(topology):
    """R live BackgroundServers per slice, grouped by shard id."""
    groups = []
    contexts = []
    for shard in topology.shards:
        group = []
        for _ in range(REPLICAS):
            context = BackgroundServer(_replica_server(shard.path))
            group.append(context.__enter__())
            contexts.append(context)
        groups.append(group)
    yield groups
    for context in contexts:
        context.__exit__(None, None, None)


@pytest.fixture()
def single_server(system):
    config = ServeConfig(port=0, batch_window_ms=2.0, workers=2)
    with BackgroundServer(TimelineServer(system, config)) as running:
        yield running


def _free_port():
    """A port with nothing listening (for the dead-replica cases)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _router(topology, groups, **config_overrides):
    """A background router over explicit endpoint URL groups."""
    defaults = dict(port=0, shard_timeout_seconds=30.0)
    defaults.update(config_overrides)
    return BackgroundServer(
        TimelineRouter(
            topology,
            groups,
            config=RouterConfig(**defaults),
            metrics=Metrics(),
        )
    )


def _live_groups(replica_fleet):
    return [
        [f"http://127.0.0.1:{server.port}" for server in group]
        for group in replica_fleet
    ]


def _request(server, method, path, payload=None):
    conn = http.client.HTTPConnection(
        "127.0.0.1", server.port, timeout=120
    )
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        conn.request(
            method, path, body=body,
            headers={"Content-Type": "application/json"} if body else {},
        )
        response = conn.getresponse()
        raw = response.read()
        return response.status, dict(response.getheaders()), raw
    finally:
        conn.close()


def _timeline_payload(instance, **overrides):
    start, end = instance.corpus.window
    payload = {
        "keywords": list(instance.corpus.query),
        "start": start.isoformat(),
        "end": end.isoformat(),
        "num_dates": 5,
        "num_sentences": 1,
    }
    payload.update(overrides)
    return payload


def _without_telemetry(raw):
    """Canonical bytes minus the timing-valued telemetry block and the
    cache marker (repeat requests legitimately flip miss -> hit)."""
    envelope = json.loads(raw)
    envelope["result"].pop("telemetry")
    envelope.pop("cache", None)
    return canonical_json(envelope)


class TestReplicaFailover:
    """Drill (a): one dead replica per slice is absorbed by siblings."""

    def test_dead_replica_never_degrades_the_response(
        self, topology, replica_fleet, single_server
    ):
        groups = _live_groups(replica_fleet)
        # Kill one replica per slice: point it at a closed port.
        for group in groups:
            group[0] = f"http://127.0.0.1:{_free_port()}"
        reference_status, _, reference_raw = _request(
            single_server, "GET", "/v1/search?q=government&limit=5"
        )
        assert reference_status == 200
        with _router(topology, groups, shard_retries=0) as router:
            saw_failover = False
            for _ in range(40):
                status, headers, raw = _request(
                    router, "GET", "/v1/search?q=government&limit=5"
                )
                assert status == 200
                assert DEGRADED_HEADER not in headers
                assert raw == reference_raw
                counters = router.metrics.snapshot()["counters"]
                if counters.get("replica.failovers", 0) >= 1:
                    saw_failover = True
                    break
            # P2C picks the dead replica first within a few requests
            # (probability 2^-40 of never sampling it).
            assert saw_failover
            text = _request(router, "GET", "/metrics")[2].decode("utf-8")
            assert "wilson_replica_failovers_total" in text

    def test_timeline_bytes_survive_a_replica_kill(
        self, topology, replica_fleet, single_server, instance
    ):
        groups = _live_groups(replica_fleet)
        groups[0][1] = f"http://127.0.0.1:{_free_port()}"
        payload = _timeline_payload(instance)
        _, _, reference_raw = _request(
            single_server, "POST", "/v1/timeline", payload
        )
        with _router(topology, groups, shard_retries=0) as router:
            for _ in range(10):
                status, headers, raw = _request(
                    router, "POST", "/v1/timeline", payload
                )
                assert status == 200
                assert DEGRADED_HEADER not in headers
                assert _without_telemetry(raw) == _without_telemetry(
                    reference_raw
                )


class TestSliceDeath:
    """Drill (b): every replica of a slice dead == the PR 6 contract."""

    def test_whole_slice_down_degrades_but_stays_200(
        self, topology, replica_fleet, instance
    ):
        groups = _live_groups(replica_fleet)
        groups[1] = [
            f"http://127.0.0.1:{_free_port()}" for _ in range(REPLICAS)
        ]
        with _router(
            topology, groups, shard_timeout_seconds=5.0, shard_retries=0
        ) as router:
            status, headers, raw = _request(
                router, "POST", "/v1/timeline", _timeline_payload(instance)
            )
            assert status == 200
            assert headers[DEGRADED_HEADER] == "1"
            envelope = json.loads(raw)
            assert envelope["degraded_shards"] == [1]
            # Degraded merges are never cached.
            _, _, raw = _request(
                router, "POST", "/v1/timeline", _timeline_payload(instance)
            )
            assert json.loads(raw)["cache"] == "miss"

    def test_every_slice_down_is_a_503(self, topology, instance):
        groups = [
            [f"http://127.0.0.1:{_free_port()}" for _ in range(REPLICAS)]
            for _ in range(NUM_SHARDS)
        ]
        with _router(
            topology, groups, shard_timeout_seconds=5.0, shard_retries=0
        ) as router:
            status, _, raw = _request(
                router, "POST", "/v1/timeline", _timeline_payload(instance)
            )
            assert status == 503
            assert json.loads(raw)["schema"] == "wilson.serve/v1"


class TestRecovery:
    """Drill (c): a recovered replica is re-admitted and serves again."""

    def test_replica_readmission_after_consecutive_probe_successes(
        self, topology, replica_fleet
    ):
        groups = _live_groups(replica_fleet)
        revival_port = _free_port()
        groups[0][1] = f"http://127.0.0.1:{revival_port}"
        dead_key = (0, 1)
        running = TimelineRouter(
            topology,
            groups,
            config=RouterConfig(
                port=0,
                shard_timeout_seconds=5.0,
                shard_retries=0,
                # Keep the background probe loop quiet enough that the
                # /healthz-driven re-admission below is what we observe.
                probe_interval_seconds=60.0,
            ),
            metrics=Metrics(),
            health_config=HealthConfig(
                dead_after=2, readmit_after=2, probe_backoff_seconds=0.01
            ),
        )
        with BackgroundServer(running) as router:
            # Each /healthz sweep probes every replica; two failing
            # probes (dead_after=2) declare the down replica dead.
            # (Traffic alone only reaches "suspect": once a replica
            # fails, the selector prefers its healthy sibling, so
            # active probing is what escalates and what re-admits.)
            status, _, raw = _request(router, "GET", "/healthz")
            assert json.loads(raw)["status"] == "impaired"
            assert running.health.state(dead_key) != HEALTHY
            _request(router, "GET", "/healthz")
            assert running.health.state(dead_key) == DEAD

            # Revive the worker on the very port the router knows.
            revived = BackgroundServer(
                _replica_server(topology.shards[0].path, port=revival_port)
            )
            with revived:
                replica = revived.server
                # Each /healthz sweep probes every replica and feeds the
                # state machine: readmit_after=2 consecutive successes.
                status, _, raw = _request(router, "GET", "/healthz")
                assert status == 200
                assert running.health.state(dead_key) == DEAD
                status, _, raw = _request(router, "GET", "/healthz")
                assert running.health.state(dead_key) == HEALTHY
                payload = json.loads(raw)
                assert payload["status"] == "ok"
                assert payload["replicas_healthy"] == payload["replicas"]

                # ... and it serves real traffic again.
                before = replica.metrics.snapshot()["counters"].get(
                    "serve.requests", 0
                )

                def replica_served():
                    _request(
                        router, "GET", "/v1/search?q=government&limit=3"
                    )
                    counters = replica.metrics.snapshot()["counters"]
                    return counters.get("serve.requests", 0) > before

                wait_until(
                    replica_served, message="revived replica serving"
                )

    def test_healthz_reports_impaired_while_a_replica_is_down(
        self, topology, replica_fleet
    ):
        groups = _live_groups(replica_fleet)
        groups[1][0] = f"http://127.0.0.1:{_free_port()}"
        with _router(
            topology, groups, shard_timeout_seconds=5.0
        ) as router:
            status, _, raw = _request(router, "GET", "/healthz")
            assert status == 200
            payload = json.loads(raw)
            assert payload["status"] == "impaired"
            assert payload["shards_healthy"] == NUM_SHARDS
            assert payload["replicas_healthy"] == NUM_SHARDS * REPLICAS - 1
            assert payload["replica_states"]["1/0"] != HEALTHY


class TestByteIdentityUnderReplicaMixes:
    """Drill (d): identical bytes under every covering mix of replicas."""

    @pytest.mark.parametrize(
        "alive",
        list(
            itertools.product(
                [(0,), (1,), (0, 1)], repeat=NUM_SHARDS
            )
        ),
        ids=lambda alive: "+".join(
            "".join(map(str, shard)) for shard in alive
        ),
    )
    def test_search_bytes_match_single_index(
        self, topology, replica_fleet, single_server, alive
    ):
        _, _, reference_raw = _request(
            single_server, "GET", "/v1/search?q=government&limit=10"
        )
        groups = _live_groups(replica_fleet)
        for shard_id, live in enumerate(alive):
            for replica_id in range(REPLICAS):
                if replica_id not in live:
                    groups[shard_id][replica_id] = (
                        f"http://127.0.0.1:{_free_port()}"
                    )
        with _router(topology, groups) as router:
            for _ in range(3):
                status, headers, raw = _request(
                    router, "GET", "/v1/search?q=government&limit=10"
                )
                assert status == 200
                assert DEGRADED_HEADER not in headers
                assert raw == reference_raw
