"""Concurrency stress: hammer the shared TokenCache and realtime index.

These tests (marked ``slow``; the CI fast lane skips them) drive the two
shared mutable structures the runtime's thread backend relies on from
many concurrent workers and assert both *correctness* (every caller sees
identical results; concurrent query batches match the sequential
reference exactly) and *accounting* (cache hit/miss counters stay
consistent under racing writers -- the double-checked-locking design
promises misses == distinct texts, exactly).
"""

from __future__ import annotations

import datetime
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.runtime import ShardPolicy
from repro.search.realtime import RealTimeTimelineSystem, TimelineQuery
from repro.text.analysis import TokenCache
from repro.tlsdata.synthetic import SyntheticConfig, SyntheticCorpusGenerator

pytestmark = pytest.mark.slow

THREADS = 16
ROUNDS = 30


class TestTokenCacheStress:
    def _texts(self, count: int = 200):
        return [
            f"sentence number {i} reports flooding near district {i % 17} "
            f"while rescue teams deployed pumps and sandbags"
            for i in range(count)
        ]

    def test_racing_readers_agree_and_accounting_is_exact(self):
        cache = TokenCache()
        texts = self._texts()

        def hammer(worker_id: int):
            seen = []
            for round_index in range(ROUNDS):
                # Interleave orders per worker so writers race on
                # different keys at different times.
                ordered = (
                    texts if (worker_id + round_index) % 2 == 0
                    else list(reversed(texts))
                )
                seen.append([cache.tokens(text) for text in ordered])
            return seen

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            outcomes = list(pool.map(hammer, range(THREADS)))

        reference = [tuple(cache.tokens(text)) for text in texts]
        for worker_outcome in outcomes:
            for round_tokens in worker_outcome:
                straight = (
                    round_tokens
                    if round_tokens[0] == reference[0]
                    else list(reversed(round_tokens))
                )
                assert [tuple(t) for t in straight] == reference

        stats = cache.stats()
        total_lookups = THREADS * ROUNDS * len(texts) + len(texts)
        # The double-checked-locking contract: every distinct text is
        # tokenised at most once; a lost race counts as a hit.
        assert stats.misses == len(texts)
        assert stats.hits == total_lookups - len(texts)
        assert len(cache) == len(texts)

    def test_racing_token_ids_share_one_vocabulary(self):
        cache = TokenCache()
        texts = self._texts(100)

        def hammer(worker_id: int):
            return [tuple(cache.token_ids(text)) for text in texts]

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            outcomes = list(pool.map(hammer, range(THREADS)))

        reference = outcomes[0]
        for outcome in outcomes[1:]:
            assert outcome == reference
        # Round-tripping ids through the shared vocabulary recovers the
        # token streams -- no id was clobbered by a racing intern.
        for text, ids in zip(texts, reference):
            tokens = cache.tokens(text)
            assert tuple(
                cache.vocabulary.token(i) for i in ids
            ) == tokens


class TestRealtimeConcurrencyStress:
    @pytest.fixture(scope="class")
    def system(self):
        instance = SyntheticCorpusGenerator(
            SyntheticConfig(
                topic="stress",
                theme="disaster",
                seed=11,
                duration_days=40,
                num_events=8,
                num_major_events=4,
                num_articles=20,
                sentences_per_article=6,
            )
        ).generate()
        system = RealTimeTimelineSystem()
        system.ingest(instance.corpus.articles)
        dates = [
            article.publication_date
            for article in instance.corpus.articles
        ]
        return system, min(dates), max(dates)

    def _queries(self, start, end, repeat: int = 4):
        keyword_sets = (
            ("flood",), ("rescue",), ("storm", "damage"), ("relief",),
            ("evacuation",), ("flood", "relief"),
        )
        half = start + datetime.timedelta(days=(end - start).days // 2)
        windows = ((start, end), (start, half), (half, end))
        queries = []
        for index in range(repeat * len(keyword_sets)):
            keywords = keyword_sets[index % len(keyword_sets)]
            window = windows[index % len(windows)]
            queries.append(
                TimelineQuery(
                    keywords=keywords,
                    start=window[0],
                    end=window[1],
                    num_dates=4,
                )
            )
        return queries

    def test_concurrent_batch_matches_sequential_reference(self, system):
        system, start, end = system
        queries = self._queries(start, end)
        sequential = system.generate_timelines(
            queries, ShardPolicy(backend="inline")
        )
        concurrent = system.generate_timelines(
            queries, ShardPolicy(workers=THREADS, backend="thread")
        )
        assert concurrent.num_degraded == 0
        seq_responses = sequential.values()
        conc_responses = concurrent.values()
        assert len(seq_responses) == len(conc_responses) == len(queries)
        for seq_response, conc_response in zip(
            seq_responses, conc_responses
        ):
            assert conc_response.timeline == seq_response.timeline
            assert (
                conc_response.num_candidates
                == seq_response.num_candidates
            )

    def test_repeated_concurrent_batches_stay_stable(self, system):
        system, start, end = system
        queries = self._queries(start, end, repeat=2)
        policy = ShardPolicy(workers=8, backend="thread")
        first = system.generate_timelines(queries, policy)
        for _ in range(3):
            again = system.generate_timelines(queries, policy)
            assert again.num_degraded == 0
            for response_a, response_b in zip(
                first.values(), again.values()
            ):
                assert response_a.timeline == response_b.timeline
