"""Tests for the span tracer (repro.obs.trace)."""

import json
import time

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    SCHEMA_VERSION,
    NullTracer,
    Span,
    Tracer,
    ensure_tracer,
    stage_breakdown,
    validate_trace,
)


class TestSpanNesting:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner_a"):
                pass
            with tracer.span("inner_b"):
                with tracer.span("leaf"):
                    pass
        assert [s.name for s in tracer.spans] == ["outer"]
        outer = tracer.spans[0]
        assert [c.name for c in outer.children] == ["inner_a", "inner_b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]

    def test_parent_duration_covers_children(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.01)
        outer = tracer.spans[0]
        inner = outer.children[0]
        assert inner.duration_seconds >= 0.009
        assert outer.duration_seconds >= inner.duration_seconds
        assert outer.self_seconds == pytest.approx(
            outer.duration_seconds - inner.duration_seconds
        )

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.spans] == ["first", "second"]

    def test_open_span_has_zero_duration(self):
        span = Span(name="open", start=1.0)
        assert span.duration_seconds == 0.0

    def test_root_span_is_reentrant(self):
        tracer = Tracer()
        with tracer.root_span("pipeline"):
            with tracer.root_span("pipeline"):
                with tracer.span("stage"):
                    pass
        assert len(tracer.find("pipeline")) == 1
        assert tracer.spans[0].children[0].name == "stage"

    def test_find_and_total_seconds(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("repeated"):
                time.sleep(0.002)
        assert len(tracer.find("repeated")) == 3
        assert tracer.total_seconds("repeated") >= 0.006


class TestCounters:
    def test_counters_attach_to_open_span(self):
        tracer = Tracer()
        with tracer.span("stage"):
            tracer.count("stage.items", 3)
            tracer.count("stage.items", 2)
        assert tracer.spans[0].counters == {"stage.items": 5.0}

    def test_counters_aggregate_across_repeated_spans(self):
        tracer = Tracer()
        for items in (3, 4, 5):
            with tracer.span("stage"):
                tracer.count("stage.items", items)
        assert tracer.counters["stage.items"] == 12.0
        per_span = [s.counters["stage.items"] for s in tracer.find("stage")]
        assert per_span == [3.0, 4.0, 5.0]

    def test_count_without_open_span_still_aggregates(self):
        tracer = Tracer()
        tracer.count("loose")
        assert tracer.counters == {"loose": 1.0}
        assert tracer.spans == []


class TestNullTracer:
    def test_noop_path_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("stage"):
            tracer.count("stage.items", 7)
        with tracer.root_span("pipeline"):
            pass
        assert tracer.spans == []
        assert tracer.counters == {}
        assert tracer.to_dict()["spans"] == []

    def test_ensure_tracer(self):
        assert ensure_tracer(None) is NULL_TRACER
        real = Tracer()
        assert ensure_tracer(real) is real
        assert NULL_TRACER.enabled is False
        assert real.enabled is True

    def test_pipeline_untraced_by_default(self):
        from repro.core.daily import DailySummarizer

        day = DailySummarizer().rank_day(
            __import__("datetime").date(2021, 1, 1), ["a b c", "b c d"]
        )
        assert len(day.sentences) == 2  # no tracer, no error, no spans


class TestExport:
    def _traced(self):
        tracer = Tracer()
        with tracer.span("pipeline"):
            with tracer.span("stage"):
                tracer.count("stage.items", 2)
        return tracer

    def test_to_dict_schema(self):
        payload = self._traced().to_dict()
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["counters"] == {"stage.items": 2.0}
        root = payload["spans"][0]
        assert root["name"] == "pipeline"
        assert root["children"][0]["counters"] == {"stage.items": 2.0}

    def test_json_roundtrip_validates(self):
        payload = json.loads(self._traced().to_json())
        assert validate_trace(payload) == []

    def test_validate_rejects_bad_documents(self):
        assert validate_trace([]) != []
        assert validate_trace({"schema": "nope", "spans": [], "counters": {}})
        bad_span = {
            "schema": SCHEMA_VERSION,
            "counters": {},
            "spans": [{"name": "", "duration_seconds": -1}],
        }
        problems = validate_trace(bad_span)
        assert any("name" in p for p in problems)
        assert any("duration_seconds" in p for p in problems)
        assert any("counters" in p for p in problems)

    def test_render_mentions_spans_and_counters(self):
        text = self._traced().render()
        assert "pipeline" in text
        assert "stage.items = 2" in text

    def test_stage_breakdown_orders_and_sums(self):
        tracer = Tracer()
        with tracer.span("pipeline"):
            with tracer.span("a"):
                time.sleep(0.002)
            with tracer.span("b"):
                time.sleep(0.002)
        rows = stage_breakdown(tracer)
        assert [name for name, _, _ in rows] == ["pipeline", "a", "b"]
        pipeline_row = rows[0]
        assert pipeline_row[2] == pytest.approx(100.0)
        assert rows[1][1] + rows[2][1] <= pipeline_row[1]
