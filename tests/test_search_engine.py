"""Tests for the SearchEngine facade and the real-time system."""

import pytest

from repro.search.engine import SearchEngine
from repro.search.query import SearchQuery
from repro.search.realtime import RealTimeTimelineSystem
from repro.tlsdata.types import Article
from tests.conftest import d


@pytest.fixture()
def engine(small_corpus):
    engine = SearchEngine()
    engine.add_articles(small_corpus.articles)
    return engine


class TestIngestion:
    def test_counts(self, engine):
        assert engine.num_articles == 2
        assert engine.num_indexed_sentences > 4  # pub + reference entries

    def test_reference_sentences_indexed_under_mentioned_date(self, engine):
        # Article a2 (published 03-06) mentions March 1, 2020.
        docs = engine.index.documents_on(d("2020-03-01"))
        reference_docs = [doc for doc in docs if doc.is_reference]
        assert any("March 1" in doc.text for doc in reference_docs)

    def test_incremental_insert(self, engine):
        before = engine.num_indexed_sentences
        engine.add_article(
            Article(
                "a3",
                d("2020-03-08"),
                text="Fresh talks about the ceasefire began.",
            )
        )
        assert engine.num_indexed_sentences > before
        hits = engine.search(SearchQuery(keywords=("fresh talks",)))
        assert hits


class TestFetchDatedSentences:
    def test_returns_dated_sentences(self, engine):
        dated = engine.fetch_dated_sentences(
            ("ceasefire",), d("2020-03-01"), d("2020-03-10")
        )
        assert dated
        for sentence in dated:
            assert d("2020-03-01") <= sentence.date <= d("2020-03-10")

    def test_respects_limit(self, engine):
        dated = engine.fetch_dated_sentences(
            ("the",), d("2020-03-01"), d("2020-03-10"), limit=2
        )
        assert len(dated) <= 2


class TestRealTimeSystem:
    def test_end_to_end(self, tiny_instance):
        system = RealTimeTimelineSystem()
        system.ingest(tiny_instance.corpus.articles)
        start, end = tiny_instance.corpus.window
        response = system.generate_timeline(
            tiny_instance.corpus.query, start, end,
            num_dates=5, num_sentences=1,
        )
        assert 1 <= len(response.timeline) <= 5
        assert response.num_candidates > 0
        assert response.total_seconds == pytest.approx(
            response.retrieval_seconds + response.generation_seconds
        )

    def test_no_hits_yields_empty_timeline(self):
        system = RealTimeTimelineSystem()
        response = system.generate_timeline(
            ("nonexistent",), d("2020-01-01"), d("2020-02-01")
        )
        assert len(response.timeline) == 0
        assert response.num_candidates == 0

    def test_new_articles_change_results(self, tiny_instance):
        system = RealTimeTimelineSystem()
        system.ingest(tiny_instance.corpus.articles[:10])
        start, end = tiny_instance.corpus.window
        first = system.generate_timeline(
            tiny_instance.corpus.query, start, end, num_dates=5
        )
        system.ingest(tiny_instance.corpus.articles[10:])
        second = system.generate_timeline(
            tiny_instance.corpus.query, start, end, num_dates=5
        )
        assert second.num_candidates >= first.num_candidates


class TestEnginePersistence:
    def test_save_load_roundtrip(self, engine, tmp_path):
        path = tmp_path / "engine.jsonl"
        engine.save(path)
        restored = SearchEngine.load(path)
        assert restored.num_indexed_sentences == (
            engine.num_indexed_sentences
        )
        assert restored.num_articles == engine.num_articles
        original = engine.search(SearchQuery(keywords=("ceasefire",)))
        reloaded = restored.search(SearchQuery(keywords=("ceasefire",)))
        assert [h.document.text for h in original] == [
            h.document.text for h in reloaded
        ]

    def test_index_version_survives_round_trip(self, engine, tmp_path):
        version = engine.index_version
        assert version == engine.num_indexed_sentences > 0
        path = tmp_path / "engine.jsonl"
        engine.save(path)
        restored = SearchEngine.load(path)
        assert restored.index_version == version


class TestSuggestWindow:
    def test_bursty_corpus_yields_window(self, tiny_instance):
        from repro.search.realtime import RealTimeTimelineSystem

        system = RealTimeTimelineSystem()
        system.ingest(tiny_instance.corpus.articles)
        window = system.suggest_window()
        start, end = tiny_instance.corpus.window
        if window is not None:
            assert start <= window[0] <= window[1] <= end

    def test_empty_system_returns_none(self):
        from repro.search.realtime import RealTimeTimelineSystem

        assert RealTimeTimelineSystem().suggest_window() is None
