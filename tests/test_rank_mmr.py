"""Tests for MMR re-ranking."""

import pytest

from repro.rank.mmr import mmr_rerank

VECTORS = [
    {0: 1.0},          # topic A
    {0: 0.99, 1: 0.1},  # near-duplicate of 0
    {2: 1.0},          # topic B
    {3: 1.0},          # topic C
]
RELEVANCE = [1.0, 0.95, 0.8, 0.6]


class TestMmrRerank:
    def test_limit_respected(self):
        assert len(mmr_rerank(VECTORS, RELEVANCE, limit=2)) == 2

    def test_pure_relevance_when_lambda_one(self):
        order = mmr_rerank(VECTORS, RELEVANCE, limit=4, trade_off=1.0)
        assert order == [0, 1, 2, 3]

    def test_diversity_pushes_duplicate_down(self):
        order = mmr_rerank(VECTORS, RELEVANCE, limit=3, trade_off=0.5)
        assert order[0] == 0
        # The near-duplicate of item 0 must not be picked second.
        assert order[1] != 1

    def test_limit_larger_than_pool(self):
        order = mmr_rerank(VECTORS, RELEVANCE, limit=10)
        assert sorted(order) == [0, 1, 2, 3]

    def test_empty_pool(self):
        assert mmr_rerank([], [], limit=3) == []

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            mmr_rerank(VECTORS, [1.0], limit=2)

    def test_bad_trade_off_rejected(self):
        with pytest.raises(ValueError):
            mmr_rerank(VECTORS, RELEVANCE, limit=2, trade_off=1.5)

    def test_no_repeats(self):
        order = mmr_rerank(VECTORS, RELEVANCE, limit=4, trade_off=0.3)
        assert len(set(order)) == len(order)
