"""Tests for the TILSE-style submodular framework."""

import pytest

from repro.baselines.submodular import (
    SubmodularConfig,
    SubmodularSummarizer,
    asmds,
    keyword_filter,
    tls_constraints,
)
from repro.tlsdata.types import DatedSentence
from tests.conftest import d


class TestConfig:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            SubmodularConfig(mode="magic")

    def test_saturation_validation(self):
        with pytest.raises(ValueError):
            SubmodularConfig(coverage_saturation=0.0)
        with pytest.raises(ValueError):
            SubmodularConfig(coverage_saturation=1.5)

    def test_diversity_validation(self):
        with pytest.raises(ValueError):
            SubmodularConfig(diversity_weight=-1.0)

    def test_factory_names(self):
        assert asmds().name == "ASMDS"
        assert tls_constraints().name == "TLSConstraints"

    def test_factories_do_not_mutate_input(self):
        config = SubmodularConfig(mode="constraints")
        asmds(config)
        assert config.mode == "constraints"


class TestKeywordFilter:
    def test_keeps_matching_sentences(self, tiny_pool, tiny_instance):
        filtered = keyword_filter(tiny_pool, tiny_instance.corpus.query)
        assert 0 < len(filtered) < len(tiny_pool)

    def test_empty_query_keeps_all(self, tiny_pool):
        assert len(keyword_filter(tiny_pool, ())) == len(tiny_pool)

    def test_no_matches_falls_back_to_full_pool(self, tiny_pool):
        filtered = keyword_filter(tiny_pool, ("zzzzzz",))
        assert len(filtered) == len(tiny_pool)

    def test_stemmed_matching(self):
        pool = [
            DatedSentence(d("2020-01-01"),
                          "The rebels were attacking.", d("2020-01-01")),
            DatedSentence(d("2020-01-01"),
                          "Markets rallied strongly.", d("2020-01-01")),
        ]
        filtered = keyword_filter(pool, ("rebel",))
        assert len(filtered) == 1


class TestGeneration:
    def test_constraints_respects_budgets(self, tiny_pool):
        timeline = tls_constraints().generate(tiny_pool, 4, 2)
        assert len(timeline) <= 4
        for date in timeline.dates:
            assert len(timeline.summary(date)) <= 2

    def test_asmds_respects_global_budget(self, tiny_pool):
        timeline = asmds().generate(tiny_pool, 4, 2)
        assert timeline.num_sentences() <= 8

    def test_empty_pool(self):
        assert len(tls_constraints().generate([], 3, 1)) == 0

    def test_deterministic(self, tiny_pool):
        a = tls_constraints().generate(tiny_pool, 4, 1)
        b = tls_constraints().generate(tiny_pool, 4, 1)
        assert a == b

    def test_no_duplicate_sentences(self, tiny_pool):
        timeline = tls_constraints().generate(tiny_pool, 5, 2)
        sentences = timeline.all_sentences()
        # A sentence can legitimately appear on two dates (multi-dated),
        # but never twice on the same date.
        for date in timeline.dates:
            day = timeline.summary(date)
            assert len(day) == len(set(day))

    def test_max_candidates_cap(self, tiny_pool):
        config = SubmodularConfig(max_candidates=50)
        timeline = SubmodularSummarizer(config).generate(tiny_pool, 4, 1)
        assert len(timeline) >= 1

    def test_diversity_spreads_over_time(self, tiny_pool):
        """With strong diversity weight, selections span several clusters."""
        config = SubmodularConfig(mode="asmds", diversity_weight=20.0)
        timeline = SubmodularSummarizer(config).generate(tiny_pool, 6, 1)
        assert len(timeline.dates) >= 3

    def test_quadratic_cost_visible(self, tiny_instance):
        """Doubling the pool should grow runtime superlinearly.

        We do not assert timings (flaky); instead we verify the pairwise
        matrix path is exercised by checking a large pool still works.
        """
        pool = tiny_instance.corpus.dated_sentences()
        timeline = tls_constraints().generate(pool, 6, 1)
        assert len(timeline) >= 3
