"""Tests for PageRank, validated against NetworkX."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.graphs import WeightedDigraph
from repro.graph.pagerank import (
    pagerank,
    pagerank_matrix,
    personalized_pagerank,
)


def _random_adjacency(seed: int, n: int = 12) -> np.ndarray:
    rng = np.random.default_rng(seed)
    matrix = rng.random((n, n)) * (rng.random((n, n)) < 0.4)
    np.fill_diagonal(matrix, 0.0)
    return matrix


def _networkx_scores(matrix, personalization=None):
    graph = nx.DiGraph()
    n = matrix.shape[0]
    graph.add_nodes_from(range(n))
    for i in range(n):
        for j in range(n):
            if matrix[i, j] > 0:
                graph.add_edge(i, j, weight=matrix[i, j])
    pers = None
    if personalization is not None:
        pers = {i: personalization[i] for i in range(n)}
    scores = nx.pagerank(
        graph, alpha=0.85, personalization=pers, weight="weight",
        max_iter=200, tol=1e-12,
    )
    return np.array([scores[i] for i in range(n)])


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_uniform_matches_networkx(self, seed):
        matrix = _random_adjacency(seed)
        ours = pagerank_matrix(matrix)
        theirs = _networkx_scores(matrix)
        assert np.allclose(ours, theirs, atol=1e-8)

    @pytest.mark.parametrize("seed", [4, 5])
    def test_personalized_matches_networkx(self, seed):
        matrix = _random_adjacency(seed)
        rng = np.random.default_rng(seed + 100)
        personalization = rng.random(matrix.shape[0]) + 0.01
        ours = pagerank_matrix(matrix, personalization=personalization)
        theirs = _networkx_scores(matrix, personalization)
        assert np.allclose(ours, theirs, atol=1e-8)

    def test_with_dangling_nodes(self):
        matrix = np.zeros((4, 4))
        matrix[0, 1] = 1.0
        matrix[1, 2] = 1.0  # node 2 and 3 dangle
        ours = pagerank_matrix(matrix)
        theirs = _networkx_scores(matrix)
        assert np.allclose(ours, theirs, atol=1e-8)


class TestInvariants:
    def test_scores_sum_to_one(self):
        matrix = _random_adjacency(7)
        assert pagerank_matrix(matrix).sum() == pytest.approx(1.0)

    def test_scores_non_negative(self):
        assert (pagerank_matrix(_random_adjacency(8)) >= 0).all()

    def test_empty_graph(self):
        assert pagerank_matrix(np.zeros((0, 0))).shape == (0,)

    def test_single_node(self):
        assert pagerank_matrix(np.zeros((1, 1)))[0] == pytest.approx(1.0)

    def test_symmetric_star_center_wins(self):
        # Star: all leaves point to the hub.
        matrix = np.zeros((5, 5))
        matrix[1:, 0] = 1.0
        scores = pagerank_matrix(matrix)
        assert scores[0] == max(scores)

    def test_personalization_shifts_mass(self):
        matrix = np.zeros((3, 3))  # no edges: restart dominates
        personalization = np.array([0.0, 0.0, 1.0])
        scores = pagerank_matrix(matrix, personalization=personalization)
        assert scores[2] == pytest.approx(1.0)


class TestValidation:
    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            pagerank_matrix(np.zeros((2, 3)))

    def test_rejects_negative_weights(self):
        matrix = np.zeros((2, 2))
        matrix[0, 1] = -1.0
        with pytest.raises(ValueError):
            pagerank_matrix(matrix)

    def test_rejects_bad_damping(self):
        with pytest.raises(ValueError):
            pagerank_matrix(np.zeros((2, 2)), damping=1.5)

    def test_rejects_zero_personalization(self):
        with pytest.raises(ValueError):
            pagerank_matrix(
                np.zeros((2, 2)), personalization=np.zeros(2)
            )

    def test_rejects_negative_personalization(self):
        with pytest.raises(ValueError):
            pagerank_matrix(
                np.zeros((2, 2)),
                personalization=np.array([1.0, -0.5]),
            )

    def test_rejects_wrong_shape_personalization(self):
        with pytest.raises(ValueError):
            pagerank_matrix(
                np.zeros((2, 2)), personalization=np.ones(3)
            )


class TestGraphInterface:
    def test_pagerank_on_digraph(self):
        graph = WeightedDigraph()
        graph.add_edge("a", "hub", 1.0)
        graph.add_edge("b", "hub", 1.0)
        graph.add_edge("c", "hub", 1.0)
        scores = pagerank(graph)
        assert scores["hub"] == max(scores.values())
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_personalized_wrapper(self):
        graph = WeightedDigraph()
        graph.add_node("a")
        graph.add_node("b")
        scores = personalized_pagerank(graph, {"a": 1.0, "b": 0.0})
        assert scores["a"] > scores["b"]

    def test_missing_personalization_keys_default_zero(self):
        graph = WeightedDigraph()
        graph.add_node("a")
        graph.add_node("b")
        scores = pagerank(graph, personalization={"a": 1.0})
        assert scores["a"] > scores["b"]
