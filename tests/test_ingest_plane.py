"""The streaming ingest plane: segments, overlay, plane, compaction.

Pins the subsystem's core guarantee -- **a streamed corpus is
indistinguishable from a cold re-index of the same articles**:

* ``wilson.segment/v1`` files round-trip exactly and refuse corruption
  or analyzer drift (:mod:`repro.ingest.segment`);
* the :class:`~repro.ingest.LiveIndex` overlay answers every read-API
  question identically to a cold :class:`~repro.search.index.
  InvertedIndex` fed the same documents, and rejects direct writes;
* timelines generated over a streamed system are byte-identical to the
  cold system's, for *any* batch split (hypothesis property);
* a compacted index writes a snapshot byte-identical (sha256) to the
  cold re-index's snapshot;
* the plane's queue admission, writer drain, recovery and
  auto-compaction behave as docs/ingest.md promises.
"""

import datetime
import hashlib
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ingest import (
    INGEST_METRIC_NAMES,
    IngestConfig,
    IngestPlane,
    IngestQueue,
    LiveIndex,
    SEGMENT_MAGIC,
    build_segment,
    list_segments,
    load_segment,
    segment_info,
    write_segment,
)
from repro.obs.metrics import Metrics
from repro.search.engine import SearchEngine
from repro.search.index import InvertedIndex
from repro.search.realtime import RealTimeTimelineSystem
from repro.search.snapshot import SnapshotError
from repro.text.analysis import TokenCache
from repro.tlsdata.types import Article

from tests.conftest import d, wait_until

QUERY = ("ceasefire", "rebels")
WINDOW = (d("2021-03-01"), d("2021-03-20"))


def make_articles():
    """Six deterministic articles with explicit date mentions."""
    return [
        Article(
            article_id="a1",
            publication_date=d("2021-03-02"),
            title="Ceasefire collapses",
            text=(
                "The ceasefire collapsed near the border on March 1, "
                "2021. Artillery fire struck the garrison at dawn. "
                "Officials said talks would resume on March 9, 2021."
            ),
        ),
        Article(
            article_id="a2",
            publication_date=d("2021-03-04"),
            title="Shelling continues",
            text=(
                "Shelling of the garrison continued on March 3, 2021. "
                "Rebels gathered outside the city."
            ),
        ),
        Article(
            article_id="a3",
            publication_date=d("2021-03-06"),
            title="Rebels advance",
            text=(
                "Rebels seized the stronghold outside the city. The "
                "advance follows the ceasefire collapse on March 1, "
                "2021."
            ),
        ),
        Article(
            article_id="a4",
            publication_date=d("2021-03-10"),
            title="Talks resume",
            text=(
                "Negotiators met on March 9, 2021 to restore the "
                "ceasefire. Rebels sent a delegation."
            ),
        ),
        Article(
            article_id="a5",
            publication_date=d("2021-03-13"),
            title="Truce drafted",
            text=(
                "A draft truce circulated on March 12, 2021. The "
                "ceasefire terms cover the stronghold."
            ),
        ),
        Article(
            article_id="a6",
            publication_date=d("2021-03-16"),
            title="Truce signed",
            text=(
                "The truce was signed on March 15, 2021. Rebels began "
                "withdrawing from the stronghold."
            ),
        ),
    ]


def cold_system(articles):
    """A system that indexed *articles* the classic way, all at once."""
    system = RealTimeTimelineSystem()
    system.ingest(list(articles))
    return system


def live_system(batches, config=None, metrics=None):
    """A system that streamed *batches* through an ingest plane."""
    system = RealTimeTimelineSystem()
    plane = IngestPlane(system, config or IngestConfig(), metrics=metrics)
    for batch in batches:
        plane.ingest(list(batch))
    return system, plane


def timeline_bytes(system):
    """The canonical JSON of the system's timeline over the test window."""
    response = system.generate_timeline(
        QUERY, start=WINDOW[0], end=WINDOW[1], num_dates=5
    )
    return json.dumps(
        response.timeline.to_dict(), sort_keys=True
    ).encode()


# ---------------------------------------------------------------------------
# wilson.segment/v1 format
# ---------------------------------------------------------------------------


class TestSegmentFormat:
    @pytest.fixture()
    def engine(self):
        return SearchEngine()

    def test_round_trip_is_exact(self, engine, tmp_path):
        articles = make_articles()[:3]
        sealed = build_segment(
            7, articles, engine.tagger, cache=engine.cache
        )
        assert sealed.seq == 7
        assert sealed.articles == 3
        assert sealed.documents == len(sealed.index)
        assert sealed.nbytes == 0 and sealed.path is None

        written = write_segment(sealed, tmp_path / "segment-000007.seg")
        assert written.path is not None and written.nbytes > 0
        # The original segment is immutable; write returns a copy.
        assert sealed.path is None

        loaded = load_segment(written.path, cache=engine.cache)
        assert loaded.seq == sealed.seq
        assert loaded.articles == sealed.articles
        assert loaded.documents == sealed.documents
        assert loaded.touched_dates == sealed.touched_dates
        for doc_id in range(sealed.documents):
            original = sealed.index.document(doc_id)
            restored = loaded.index.document(doc_id)
            assert restored == original
        assert loaded.index.postings_map() == sealed.index.postings_map()

    def test_header_is_readable_without_payload(self, engine, tmp_path):
        sealed = build_segment(
            3, make_articles()[:2], engine.tagger, cache=engine.cache
        )
        path = tmp_path / "segment-000003.seg"
        write_segment(sealed, path)
        header = segment_info(path)
        # User meta merges top-level; "meta" itself is the magic string.
        assert header["meta"] == SEGMENT_MAGIC
        assert header["segment_seq"] == 3
        assert header["documents"] == sealed.documents
        assert header["articles"] == 2
        assert header["touched_dates"] == sorted(
            day.isoformat() for day in sealed.touched_dates
        )
        assert header["analyzer"] == {
            "stem": True, "drop_stopwords": True,
        }

    def test_corruption_raises_not_partial_state(self, engine, tmp_path):
        sealed = build_segment(
            0, make_articles()[:2], engine.tagger, cache=engine.cache
        )
        path = tmp_path / "segment-000000.seg"
        write_segment(sealed, path)
        blob = bytearray(path.read_bytes())
        blob[-10] ^= 0xFF  # flip a payload byte past the header
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError):
            load_segment(path, cache=engine.cache)

    def test_analyzer_mismatch_refuses_to_replay(self, engine, tmp_path):
        sealed = build_segment(
            0, make_articles()[:1], engine.tagger, cache=engine.cache
        )
        path = tmp_path / "segment-000000.seg"
        write_segment(sealed, path)
        with pytest.raises(SnapshotError, match="analyzer"):
            load_segment(path, cache=TokenCache(stem=False))

    def test_list_segments_sorts_by_sequence(self, engine, tmp_path):
        for seq in (2, 0, 1):
            sealed = build_segment(
                seq, make_articles()[:1], engine.tagger,
                cache=engine.cache,
            )
            write_segment(sealed, tmp_path / f"segment-{seq:06d}.seg")
        names = [p.name for p in list_segments(tmp_path)]
        assert names == [
            "segment-000000.seg",
            "segment-000001.seg",
            "segment-000002.seg",
        ]
        assert list_segments(tmp_path / "absent") == []


# ---------------------------------------------------------------------------
# IngestQueue admission
# ---------------------------------------------------------------------------


class TestIngestQueue:
    def test_offer_drain_is_fifo(self):
        queue = IngestQueue(max_articles=10)
        articles = make_articles()[:4]
        assert queue.offer(articles[:2])
        assert queue.offer(articles[2:])
        assert queue.depth == 4
        assert queue.drain(3, timeout=0) == articles[:3]
        assert queue.drain(3, timeout=0) == articles[3:]
        assert len(queue) == 0

    def test_rejection_is_all_or_nothing(self):
        queue = IngestQueue(max_articles=3)
        articles = make_articles()
        assert queue.offer(articles[:2])
        # Two queued + two offered exceeds the bound of three: the whole
        # batch bounces, nothing is half-applied.
        assert not queue.offer(articles[2:4])
        assert queue.depth == 2
        assert queue.offer(articles[4:5])
        assert queue.depth == 3

    def test_close_rejects_offers_and_unblocks_drain(self):
        queue = IngestQueue(max_articles=4)
        queue.close()
        assert queue.closed
        assert not queue.offer(make_articles()[:1])
        assert queue.drain(4, timeout=0) == []

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            IngestQueue(max_articles=0)


# ---------------------------------------------------------------------------
# LiveIndex overlay: reads equal a cold index, writes are rejected
# ---------------------------------------------------------------------------


class TestLiveIndexEquivalence:
    @pytest.fixture()
    def pair(self):
        """(cold InvertedIndex, LiveIndex) over the same documents."""
        articles = make_articles()
        cold = cold_system(articles)
        system, plane = live_system(
            [articles[:2], articles[2:4], articles[4:]]
        )
        return cold.engine.index, system.engine.index, plane

    def test_every_read_api_matches_cold(self, pair):
        cold, live, _ = pair
        assert isinstance(live, LiveIndex)
        assert len(live) == len(cold)
        assert live.num_documents == cold.num_documents
        assert live.total_length == cold.total_length
        assert live.average_length == cold.average_length
        assert live.vocabulary_size() == cold.vocabulary_size()
        assert live.dates() == cold.dates()
        assert live.date_histogram() == cold.date_histogram()
        assert sorted(live.tokens_with_postings()) == sorted(
            cold.tokens_with_postings()
        )
        assert live.postings_map() == cold.postings_map()
        for token in cold.tokens_with_postings():
            assert live.document_frequency(token) == (
                cold.document_frequency(token)
            )
            assert live.postings(token) == cold.postings(token)
            for doc_id in cold.postings(token):
                assert live.positions(token, doc_id) == (
                    cold.positions(token, doc_id)
                )
        for doc_id in range(cold.num_documents):
            assert live.document(doc_id) == cold.document(doc_id)
            assert live.document_length(doc_id) == (
                cold.document_length(doc_id)
            )
        assert list(live.doc_ids_in_range(*WINDOW)) == (
            list(cold.doc_ids_in_range(*WINDOW))
        )
        for day in cold.dates():
            assert live.documents_on(day) == cold.documents_on(day)

    def test_overlay_rejects_direct_writes(self, pair):
        _, live, _ = pair
        with pytest.raises(TypeError):
            live.add(
                "forbidden",
                date=d("2021-03-01"),
                publication_date=d("2021-03-01"),
                article_id="x",
            )
        with pytest.raises(TypeError):
            live.advance_version(10**6)

    def test_touched_dates_since_is_day_precise(self):
        articles = make_articles()
        system, plane = live_system([articles[:4]])
        live = system.engine.index
        base_version = live.index_version

        assert live.touched_dates_since(base_version) == frozenset()
        sealed = plane._seal_batch(articles[4:5])
        after_first = live.index_version
        assert live.touched_dates_since(base_version) == (
            sealed.touched_dates
        )
        second = plane._seal_batch(articles[5:])
        assert live.touched_dates_since(base_version) == (
            sealed.touched_dates | second.touched_dates
        )
        assert live.touched_dates_since(after_first) == (
            second.touched_dates
        )
        assert live.touched_dates_since(live.index_version) == frozenset()
        # Below the log floor the overlay cannot answer precisely:
        # callers must fall back to a full flush.
        assert live.touched_dates_since(-1) is None


# ---------------------------------------------------------------------------
# Streamed == cold: timelines, versions, snapshots
# ---------------------------------------------------------------------------


class TestStreamedEqualsCold:
    def test_timeline_and_version_match_cold_reindex(self):
        articles = make_articles()
        cold = cold_system(articles)
        system, _ = live_system([articles[:1], articles[1:4], articles[4:]])
        assert system.index_version == cold.index_version
        assert system.engine.num_articles == cold.engine.num_articles
        assert timeline_bytes(system) == timeline_bytes(cold)

    def test_compacted_snapshot_is_byte_identical_to_cold(self, tmp_path):
        articles = make_articles()
        cold = cold_system(articles)
        cold_path = tmp_path / "cold.snap"
        cold.engine.save_snapshot(cold_path, snapshot_format="v2")

        system, plane = live_system([articles[:3], articles[3:]])
        report = plane.compact(
            snapshot_path=tmp_path / "compacted.snap",
            snapshot_format="v2",
        )
        assert report.folded_segments == 2
        assert report.documents == cold.engine.index.num_documents
        cold_digest = hashlib.sha256(cold_path.read_bytes()).hexdigest()
        live_digest = hashlib.sha256(
            report.snapshot_path.read_bytes()
        ).hexdigest()
        assert live_digest == cold_digest

    def test_compaction_preserves_version_and_answers(self):
        articles = make_articles()
        system, plane = live_system([articles[:2], articles[2:]])
        before_version = system.index_version
        before = timeline_bytes(system)
        report = plane.compact()
        assert report.folded_segments == 2
        assert system.engine.index.segment_count == 0
        assert system.engine.index.pending_documents == 0
        assert system.index_version == before_version
        assert timeline_bytes(system) == before


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(cuts=st.sets(st.integers(min_value=1, max_value=5), max_size=4))
def test_any_batch_split_streams_to_the_cold_answer(cuts):
    """Property: every way of splitting the corpus into ingest batches
    yields the cold re-index's version, article count and timeline."""
    articles = make_articles()
    bounds = [0] + sorted(cuts) + [len(articles)]
    batches = [
        articles[lo:hi]
        for lo, hi in zip(bounds, bounds[1:])
        if hi > lo
    ]
    cold = cold_system(articles)
    system, plane = live_system(batches)
    assert system.engine.index.segment_count == len(batches)
    assert system.index_version == cold.index_version
    assert system.engine.num_articles == cold.engine.num_articles
    assert timeline_bytes(system) == timeline_bytes(cold)


# ---------------------------------------------------------------------------
# IngestPlane lifecycle: admission, writer, recovery, auto-compaction
# ---------------------------------------------------------------------------


class TestIngestPlane:
    def test_sync_ingest_counts_documents_like_cold_add(self):
        articles = make_articles()
        cold = RealTimeTimelineSystem()
        cold_documents = cold.engine.add_articles(articles)

        metrics = Metrics()
        system, plane = live_system([articles], metrics=metrics)
        assert metrics.counter("ingest.documents_indexed").value == (
            cold_documents
        )
        assert metrics.counter("ingest.articles_accepted").value == (
            len(articles)
        )
        assert metrics.counter("ingest.segments_sealed").value == 1
        assert metrics.gauge("ingest.live_segments").value == 1
        assert metrics.gauge("ingest.index_version").value == (
            system.index_version
        )

    def test_system_ingest_routes_through_the_plane(self):
        articles = make_articles()
        system = RealTimeTimelineSystem()
        system.ingest(articles[:3])
        plane = IngestPlane(system)
        # With the plane attached the library entry point must use the
        # seal path: LiveIndex rejects direct writes.
        documents = system.ingest(articles[3:])
        assert documents > 0
        assert system.engine.index.segment_count == 1
        assert system.ingest([]) == 0

    def test_sentence_free_articles_still_count_as_articles(self):
        system, plane = live_system([])
        before = system.engine.num_articles
        ingested = plane.ingest(
            [Article(article_id="empty", publication_date=d("2021-03-01"))]
        )
        assert ingested == 0
        assert system.engine.num_articles == before + 1
        assert system.engine.index.segment_count == 0

    def test_writer_drains_submissions_in_background(self):
        articles = make_articles()
        metrics = Metrics()
        system = RealTimeTimelineSystem()
        plane = IngestPlane(
            system,
            IngestConfig(batch_articles=2, batch_age_ms=5.0),
            metrics=metrics,
        )
        plane.start()
        try:
            before = system.index_version
            assert plane.submit(articles)
            assert plane.flush(timeout=10.0)
            wait_until(
                lambda: system.index_version > before,
                message="background seal",
            )
            assert plane.queue.depth == 0
            # batch_articles=2 forces the six articles into >= 3 seals.
            assert metrics.counter("ingest.segments_sealed").value >= 3
        finally:
            plane.stop(drain=True)

    def test_queue_pressure_rejects_whole_batches(self):
        metrics = Metrics()
        system = RealTimeTimelineSystem()
        plane = IngestPlane(
            system, IngestConfig(queue_articles=2), metrics=metrics
        )
        articles = make_articles()
        assert not plane.submit(articles[:3])
        assert metrics.counter("ingest.articles_rejected").value == 3
        assert plane.submit(articles[:2])
        assert plane.queue.depth == 2

    def test_stop_with_drain_seals_the_backlog(self):
        articles = make_articles()
        system = RealTimeTimelineSystem()
        plane = IngestPlane(system, IngestConfig(batch_age_ms=5.0))
        # Never started: queued articles must still seal on stop(drain).
        assert plane.submit(articles)
        before = system.index_version
        plane.stop(drain=True)
        assert system.index_version > before
        assert plane.queue.depth == 0
        assert not plane.submit(articles)  # closed queue sheds load

    def test_seal_listener_sees_segment_and_version(self):
        articles = make_articles()
        system = RealTimeTimelineSystem()
        plane = IngestPlane(system)
        seen = []
        plane.add_seal_listener(
            lambda segment, version: seen.append((segment, version))
        )
        plane.ingest(articles[:2])
        assert len(seen) == 1
        segment, version = seen[0]
        assert version == system.index_version
        assert segment.touched_dates
        assert segment.documents > 0

    def test_persisted_segments_recover_into_a_new_plane(self, tmp_path):
        articles = make_articles()
        config = IngestConfig(segments_dir=tmp_path)
        cold = cold_system(articles)

        first_system = RealTimeTimelineSystem()
        first_system.ingest(articles[:2])
        first_plane = IngestPlane(first_system, config)
        first_plane.ingest(articles[2:4])
        first_plane.ingest(articles[4:])
        assert len(list_segments(tmp_path)) == 2

        # A restarted worker: same base articles, same segments dir.
        metrics = Metrics()
        second_system = RealTimeTimelineSystem()
        second_system.ingest(articles[:2])
        IngestPlane(second_system, config, metrics=metrics)
        assert metrics.counter("ingest.segments_recovered").value == 2
        assert second_system.index_version == cold.index_version
        assert second_system.engine.num_articles == (
            cold.engine.num_articles
        )
        assert timeline_bytes(second_system) == timeline_bytes(cold)

    def test_recovery_continues_the_sequence(self, tmp_path):
        articles = make_articles()
        config = IngestConfig(segments_dir=tmp_path)
        system, plane = live_system([articles[:2]], config=config)
        fresh = RealTimeTimelineSystem()
        recovered = IngestPlane(fresh, config)
        recovered.ingest(articles[2:4])
        names = [p.name for p in list_segments(tmp_path)]
        assert names == ["segment-000000.seg", "segment-000001.seg"]

    def test_auto_compaction_folds_once_threshold_is_hit(self, tmp_path):
        articles = make_articles()
        metrics = Metrics()
        system = RealTimeTimelineSystem()
        plane = IngestPlane(
            system,
            IngestConfig(segments_dir=tmp_path, auto_compact_docs=1),
            metrics=metrics,
        )
        plane.ingest(articles[:3])
        assert system.engine.index.segment_count == 0
        assert metrics.counter("ingest.compactions").value == 1
        # The folded segment file is reclaimed from disk.
        assert list_segments(tmp_path) == []
        cold = cold_system(articles[:3])
        assert system.index_version == cold.index_version

    def test_attach_is_idempotent_and_stats_report_live_state(self):
        articles = make_articles()
        system, plane = live_system([articles[:2]])
        live = system.engine.index
        again = IngestPlane(system)
        assert system.engine.index is live  # no double wrap
        stats = plane.stats()
        assert stats["segments"] == 1
        assert stats["pending_documents"] == live.pending_documents
        assert stats["index_version"] == system.index_version
        assert stats["queue_depth"] == 0

    def test_metric_registry_is_closed(self):
        metrics = Metrics()
        system = RealTimeTimelineSystem()
        plane = IngestPlane(system, metrics=metrics)
        plane.ingest(make_articles()[:2])
        plane.compact()
        plane.refresh_gauges()
        snapshot = metrics.snapshot()
        used = (
            set(snapshot.get("counters", {}))
            | set(snapshot.get("gauges", {}))
            | set(snapshot.get("histograms", {}))
        )
        ingest_used = {n for n in used if n.startswith("ingest.")}
        assert ingest_used <= set(INGEST_METRIC_NAMES)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            IngestConfig(queue_articles=0)
        with pytest.raises(ValueError):
            IngestConfig(batch_articles=0)
        with pytest.raises(ValueError):
            IngestConfig(batch_age_ms=0)
        with pytest.raises(ValueError):
            IngestConfig(auto_compact_docs=0)


# ---------------------------------------------------------------------------
# Compaction durability: acknowledged persisted writes survive any restart
# ---------------------------------------------------------------------------


class TestCompactionDurability:
    def _restarted(self, config):
        """A fresh worker recovering the segments directory from cold."""
        system = RealTimeTimelineSystem()
        plane = IngestPlane(system, config)
        return system, plane

    def test_auto_compaction_survives_a_restart(self, tmp_path):
        articles = make_articles()
        config = IngestConfig(segments_dir=tmp_path, auto_compact_docs=1)
        system, plane = live_system([articles[:3]], config=config)
        # Auto-compaction folded and reclaimed the segment files, but
        # only after writing the durable recovery snapshot.
        assert list_segments(tmp_path) == []
        assert (tmp_path / "compacted.snapshot").is_file()

        cold = cold_system(articles[:3])
        restarted, _ = self._restarted(
            IngestConfig(segments_dir=tmp_path)
        )
        assert restarted.index_version == cold.index_version
        assert restarted.engine.num_articles == cold.engine.num_articles
        assert timeline_bytes(restarted) == timeline_bytes(cold)

    def test_plane_compaction_without_snapshot_path_is_durable(
        self, tmp_path
    ):
        articles = make_articles()
        config = IngestConfig(segments_dir=tmp_path)
        system, plane = live_system(
            [articles[:2], articles[2:4]], config=config
        )
        report = plane.compact()  # no explicit snapshot_path
        assert report.folded_segments == 2
        assert report.snapshot_path == tmp_path / "compacted.snapshot"
        assert report.snapshot_path.is_file()
        assert list_segments(tmp_path) == []
        assert report.reclaimed_bytes > 0

        cold = cold_system(articles[:4])
        restarted, _ = self._restarted(config)
        assert restarted.index_version == cold.index_version
        assert timeline_bytes(restarted) == timeline_bytes(cold)

    def test_segments_sealed_after_compaction_also_recover(self, tmp_path):
        articles = make_articles()
        config = IngestConfig(segments_dir=tmp_path)
        system, plane = live_system([articles[:3]], config=config)
        plane.compact()
        plane.ingest(articles[3:])  # sealed after the fold
        assert len(list_segments(tmp_path)) == 1

        cold = cold_system(articles)
        restarted, _ = self._restarted(config)
        assert restarted.index_version == cold.index_version
        assert restarted.engine.num_articles == cold.engine.num_articles
        assert timeline_bytes(restarted) == timeline_bytes(cold)

    def test_explicit_snapshot_path_also_writes_the_recovery_copy(
        self, tmp_path
    ):
        articles = make_articles()
        segments = tmp_path / "segments"
        config = IngestConfig(segments_dir=segments)
        system, plane = live_system([articles[:3]], config=config)
        out = tmp_path / "exported.snap"
        report = plane.compact(snapshot_path=out, snapshot_format="v2")
        assert report.snapshot_path == out
        recovery = segments / "compacted.snapshot"
        assert recovery.is_file()
        assert out.read_bytes() == recovery.read_bytes()
        assert list_segments(segments) == []

        cold = cold_system(articles[:3])
        restarted, _ = self._restarted(config)
        assert timeline_bytes(restarted) == timeline_bytes(cold)

    def test_bare_compactor_keeps_files_until_a_snapshot_covers_them(
        self, tmp_path
    ):
        articles = make_articles()
        config = IngestConfig(segments_dir=tmp_path)
        system, plane = live_system(
            [articles[:2], articles[2:4]], config=config
        )
        # Bypassing the plane: folding without a snapshot must NOT
        # delete the only durable copy of the acknowledged writes.
        report = plane.compactor.compact()
        assert report.folded_segments == 2
        assert report.reclaimed_bytes == 0
        assert len(list_segments(tmp_path)) == 2

        cold = cold_system(articles[:4])
        restarted, _ = self._restarted(config)
        assert timeline_bytes(restarted) == timeline_bytes(cold)

        # The next snapshot-writing compaction covers the kept files
        # (its base retains their documents) and reclaims them.
        covered = plane.compactor.compact(
            snapshot_path=tmp_path / "covered.snap"
        )
        assert covered.folded_segments == 0
        assert covered.reclaimed_bytes > 0
        assert list_segments(tmp_path) == []


# ---------------------------------------------------------------------------
# Ingest idempotency: re-submitted batches never duplicate documents
# ---------------------------------------------------------------------------


class TestIngestIdempotency:
    def test_reingesting_the_same_batch_is_a_no_op(self):
        articles = make_articles()
        metrics = Metrics()
        system, plane = live_system([articles], metrics=metrics)
        before_docs = system.engine.index.num_documents
        before_version = system.index_version
        bytes_before = timeline_bytes(system)

        assert plane.ingest(articles) == 0
        assert system.engine.index.num_documents == before_docs
        assert system.index_version == before_version
        assert timeline_bytes(system) == bytes_before
        assert metrics.counter(
            "ingest.articles_deduplicated"
        ).value == len(articles)

    def test_duplicates_within_one_batch_index_once(self):
        articles = make_articles()
        doubled = articles[:2] + articles[:2]
        cold = cold_system(articles[:2])
        system, plane = live_system([doubled])
        assert system.index_version == cold.index_version
        assert timeline_bytes(system) == timeline_bytes(cold)

    def test_replica_retry_converges_instead_of_duplicating(self):
        """The router 429-retry scenario: one replica already sealed the
        batch, a sibling did not; re-submitting to both converges them."""
        articles = make_articles()
        ahead, ahead_plane = live_system([articles[:4]])
        behind, behind_plane = live_system([articles[:2]])

        # The retried batch: a no-op on the replica that sealed it,
        # applied on the one that rejected it the first time.
        ahead_plane.ingest(articles[2:4])
        behind_plane.ingest(articles[2:4])
        assert ahead.index_version == behind.index_version
        assert timeline_bytes(ahead) == timeline_bytes(behind)

    def test_dedup_survives_recovery(self, tmp_path):
        articles = make_articles()
        config = IngestConfig(segments_dir=tmp_path)
        system, plane = live_system([articles[:3]], config=config)

        restarted = RealTimeTimelineSystem()
        recovered = IngestPlane(restarted, config)
        assert recovered.ingest(articles[:3]) == 0
        assert restarted.engine.index.segment_count == 1

    def test_articles_without_an_id_are_never_deduplicated(self):
        system, plane = live_system([])
        anonymous = Article(
            article_id="",
            publication_date=d("2021-03-02"),
            text="An unattributed report arrived on March 1, 2021.",
        )
        first = plane.ingest([anonymous])
        second = plane.ingest([anonymous])
        assert first > 0
        assert second == first


# ---------------------------------------------------------------------------
# Flush covers drained-but-unsealed batches (queue lease accounting)
# ---------------------------------------------------------------------------


class TestFlushLease:
    def test_drained_batch_counts_until_task_done(self):
        queue = IngestQueue(max_articles=8)
        queue.offer(make_articles()[:2])
        batch = queue.drain(8, timeout=0)
        assert batch and queue.depth == 0
        # Depth alone would read idle here; the lease keeps it busy.
        assert queue.inflight == 1
        assert not queue.wait_idle(timeout=0.02)
        queue.task_done()
        assert queue.inflight == 0
        assert queue.wait_idle(timeout=0.02)

    def test_flush_waits_for_the_inflight_seal(self):
        import threading

        articles = make_articles()
        system = RealTimeTimelineSystem()
        plane = IngestPlane(
            system, IngestConfig(batch_articles=64, batch_age_ms=5.0)
        )
        sealing = threading.Event()
        release = threading.Event()
        original = plane._seal_batch

        def slow_seal(batch):
            sealing.set()
            release.wait(timeout=10.0)
            return original(batch)

        plane._seal_batch = slow_seal
        plane.start()
        try:
            before = system.index_version
            assert plane.submit(articles)
            assert sealing.wait(timeout=10.0)
            wait_until(
                lambda: plane.queue.depth == 0,
                message="queue drained into the in-flight seal",
            )
            # The batch is drained but not sealed: flush must NOT
            # report success yet.
            assert not plane.flush(timeout=0.1)
            release.set()
            assert plane.flush(timeout=10.0)
            assert system.index_version > before
        finally:
            release.set()
            plane.stop(drain=True)


# ---------------------------------------------------------------------------
# Day-matrix sync ordering: a seal racing the sync cannot strand the cache
# ---------------------------------------------------------------------------


class TestDayMatrixSyncOrdering:
    def test_seal_between_version_reads_cannot_strand_the_cache(self):
        """generate_timeline must capture the index version BEFORE the
        touched-dates query: a segment sealed between the two reads must
        not re-key the day-matrix cache past writes it never evicted."""
        articles = make_articles()
        system, plane = live_system([articles[:4]])
        matrix_cache = system.wilson.day_matrix_cache
        timeline_bytes(system)  # warm: cache keyed at the current revision
        pre_seal_version = system.index_version
        assert matrix_cache.version == pre_seal_version

        live = system.engine.index
        original = live.touched_dates_since
        state = {"sealed": False}

        def racing(version):
            touched = original(version)
            if not state["sealed"]:
                state["sealed"] = True
                plane.ingest(articles[4:5])  # a seal lands mid-sync
            return touched

        live.touched_dates_since = racing
        try:
            timeline_bytes(system)
        finally:
            del live.touched_dates_since
        assert state["sealed"]
        # Still keyed at the pre-seal revision: the racing seal's day
        # was not in the eviction set, so advancing past it would serve
        # its stale entries forever (no later sync would evict them).
        assert matrix_cache.version == pre_seal_version
        # The next, race-free query catches up to the live revision.
        timeline_bytes(system)
        assert matrix_cache.version == system.index_version
