"""Tests for the supervised baselines and feature extraction."""

import numpy as np
import pytest

from repro.baselines.features import (
    FEATURE_NAMES,
    extract_features,
    standardize,
)
from repro.baselines.ltr import LearningToRankBaseline
from repro.baselines.lowrank import LowRankBaseline
from repro.baselines.regression import RegressionBaseline, select_by_scores
from repro.tlsdata.synthetic import SyntheticConfig, SyntheticCorpusGenerator


@pytest.fixture(scope="module")
def training_instances():
    """Three small instances of the same topic family."""
    instances = []
    for seed in (11, 12, 13):
        config = SyntheticConfig(
            topic=f"train-{seed}",
            theme="politics",
            seed=seed,
            duration_days=50,
            num_events=10,
            num_major_events=5,
            num_articles=25,
            sentences_per_article=8,
        )
        instance = SyntheticCorpusGenerator(config).generate()
        instances.append(
            (
                instance.corpus.dated_sentences(),
                instance.reference,
                instance.corpus.query,
            )
        )
    return instances


class TestFeatureExtraction:
    def test_shapes(self, tiny_pool, tiny_instance):
        matrix = extract_features(
            tiny_pool,
            query=tiny_instance.corpus.query,
            reference=tiny_instance.reference,
        )
        assert matrix.features.shape == (
            len(matrix.candidates),
            len(FEATURE_NAMES),
        )
        assert matrix.targets.shape == (len(matrix.candidates),)

    def test_targets_bounded(self, tiny_pool, tiny_instance):
        matrix = extract_features(
            tiny_pool, reference=tiny_instance.reference
        )
        assert (matrix.targets >= 0).all()
        assert (matrix.targets <= 1).all()

    def test_targets_nonzero_on_reference_dates(self, tiny_pool, tiny_instance):
        matrix = extract_features(
            tiny_pool, reference=tiny_instance.reference
        )
        reference_dates = set(tiny_instance.reference.dates)
        on_ref = [
            t for (date, _), t in zip(matrix.candidates, matrix.targets)
            if date in reference_dates
        ]
        assert max(on_ref) > 0

    def test_no_reference_gives_zero_targets(self, tiny_pool):
        matrix = extract_features(tiny_pool)
        assert not matrix.targets.any()

    def test_empty_pool(self):
        matrix = extract_features([])
        assert matrix.candidates == []
        assert matrix.features.shape == (0, len(FEATURE_NAMES))

    def test_standardize_roundtrip(self):
        features = np.array([[1.0, 10.0], [3.0, 30.0], [5.0, 20.0]])
        standardized, mean, std = standardize(features)
        assert np.allclose(standardized.mean(axis=0), 0.0)
        again, _, _ = standardize(features, mean=mean, std=std)
        assert np.allclose(standardized, again)

    def test_standardize_constant_column(self):
        features = np.ones((3, 2))
        standardized, _, _ = standardize(features)
        assert np.isfinite(standardized).all()


class TestSelectByScores:
    def test_budgets(self, tiny_pool):
        matrix = extract_features(tiny_pool)
        scores = np.arange(len(matrix.candidates), dtype=float)
        timeline = select_by_scores(matrix.candidates, scores, 3, 2)
        assert len(timeline) <= 3
        for date in timeline.dates:
            assert len(timeline.summary(date)) <= 2


class TestSupervisedBaselines:
    @pytest.mark.parametrize(
        "make", [RegressionBaseline, LearningToRankBaseline, LowRankBaseline]
    )
    def test_fit_then_generate(self, make, training_instances, tiny_pool):
        method = make()
        assert not method.is_fitted
        method.fit(training_instances)
        assert method.is_fitted
        timeline = method.generate(tiny_pool, 5, 1)
        assert 1 <= len(timeline) <= 5

    @pytest.mark.parametrize(
        "make", [RegressionBaseline, LearningToRankBaseline, LowRankBaseline]
    )
    def test_unfitted_fallback_works(self, make, tiny_pool):
        timeline = make().generate(tiny_pool, 4, 1)
        assert len(timeline) >= 1

    def test_regression_learns_positive_signal(self, training_instances):
        """Trained weights must score true-positive sentences higher."""
        method = RegressionBaseline().fit(training_instances)
        held_out_pool, held_reference, held_query = training_instances[0]
        matrix = extract_features(
            held_out_pool, query=held_query, reference=held_reference
        )
        scores = method._predict(matrix.features)
        positives = scores[matrix.targets > 0.2]
        negatives = scores[matrix.targets == 0.0]
        assert positives.mean() > negatives.mean()

    def test_ltr_no_pairs_raises(self):
        method = LearningToRankBaseline(margin=10.0)  # impossible margin
        with pytest.raises(ValueError):
            method.fit([])

    def test_lowrank_rank_validation(self):
        with pytest.raises(ValueError):
            LowRankBaseline(rank=0)
