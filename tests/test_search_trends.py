"""Tests for burst detection over indexed activity."""

import datetime

import pytest

from repro.search.index import InvertedIndex
from repro.search.trends import Burst, detect_bursts, suggest_query_window
from tests.conftest import d


def _histogram(counts, start="2020-01-01"):
    origin = d(start)
    return {
        origin + datetime.timedelta(days=i): count
        for i, count in enumerate(counts)
    }


class TestDetectBursts:
    def test_single_spike(self):
        histogram = _histogram([1, 1, 1, 20, 1, 1, 1, 1])
        bursts = detect_bursts(histogram)
        assert len(bursts) == 1
        burst = bursts[0]
        assert burst.peak == d("2020-01-04")
        assert burst.start == burst.end == d("2020-01-04")
        assert burst.peak_count == 20

    def test_consecutive_days_merge(self):
        histogram = _histogram([1, 1, 18, 25, 18, 1, 1, 1, 1, 1])
        bursts = detect_bursts(histogram, threshold_sigmas=1.0)
        assert len(bursts) == 1
        assert bursts[0].start == d("2020-01-03")
        assert bursts[0].end == d("2020-01-05")
        assert bursts[0].peak == d("2020-01-04")
        assert bursts[0].duration_days == 3
        assert bursts[0].total_count == 61

    def test_two_separate_bursts(self):
        histogram = _histogram(
            [1, 20, 1, 1, 1, 1, 1, 22, 1, 1, 1, 1]
        )
        bursts = detect_bursts(histogram, threshold_sigmas=1.0)
        assert len(bursts) == 2
        assert bursts[0].peak == d("2020-01-02")
        assert bursts[1].peak == d("2020-01-08")

    def test_flat_histogram_no_bursts(self):
        histogram = _histogram([3, 3, 3, 3, 3])
        assert detect_bursts(histogram) == []

    def test_min_count_filters_noise(self):
        histogram = _histogram([0, 0, 1, 0, 0])
        assert detect_bursts(histogram, min_count=2) == []

    def test_empty_histogram(self):
        assert detect_bursts({}) == []

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            detect_bursts(_histogram([1, 2]), threshold_sigmas=-1.0)

    def test_chronological_order(self):
        histogram = _histogram(
            [1, 30, 1, 1, 1, 1, 1, 25, 1, 1, 1, 40, 1, 1]
        )
        bursts = detect_bursts(histogram, threshold_sigmas=0.5)
        starts = [b.start for b in bursts]
        assert starts == sorted(starts)


class TestSuggestQueryWindow:
    def _index_with_spike(self):
        index = InvertedIndex()
        for offset in range(20):
            date = d("2020-01-01") + datetime.timedelta(days=offset)
            index.add("quiet day filler.", date, date)
        spike = d("2020-01-10")
        for i in range(15):
            index.add(f"burst sentence {i}.", spike, spike)
        return index

    def test_window_spans_burst_with_padding(self):
        index = self._index_with_spike()
        window = suggest_query_window(index, padding_days=2)
        assert window is not None
        start, end = window
        assert start == d("2020-01-08")
        assert end == d("2020-01-12")

    def test_padding_clamped_to_observed_range(self):
        index = InvertedIndex()
        spike = d("2020-01-02")
        index.add("quiet.", d("2020-01-01"), d("2020-01-01"))
        index.add("quiet.", d("2020-01-03"), d("2020-01-03"))
        for i in range(10):
            index.add(f"burst {i}.", spike, spike)
        window = suggest_query_window(
            index, padding_days=30, threshold_sigmas=1.0
        )
        start, end = window
        assert start == d("2020-01-01")
        assert end == d("2020-01-03")

    def test_no_bursts_returns_none(self):
        index = InvertedIndex()
        for offset in range(5):
            date = d("2020-01-01") + datetime.timedelta(days=offset)
            index.add("steady coverage.", date, date)
        assert suggest_query_window(index) is None

    def test_empty_index(self):
        assert suggest_query_window(InvertedIndex()) is None
