"""Tests for the cached dataset registry and tagged-dataset views."""

from repro.experiments.datasets import (
    TaggedDataset,
    standard_crisis,
    standard_timeline17,
    tagged_timeline17,
)
from repro.tlsdata.synthetic import SyntheticConfig, SyntheticCorpusGenerator
from repro.tlsdata.types import Dataset


def _mini_tagged(n=3):
    instances = []
    for seed in range(n):
        config = SyntheticConfig(
            topic=f"reg-{seed}",
            theme="economy",
            seed=seed + 50,
            duration_days=40,
            num_events=8,
            num_major_events=4,
            num_articles=15,
            sentences_per_article=6,
        )
        instances.append(SyntheticCorpusGenerator(config).generate())
    return TaggedDataset(Dataset("mini", instances))


class TestCaching:
    def test_standard_datasets_cached(self):
        assert standard_timeline17(0.02, 3) is standard_timeline17(0.02, 3)
        assert standard_crisis(0.005, 3) is standard_crisis(0.005, 3)

    def test_different_scales_differ(self):
        a = standard_timeline17(0.02, 3)
        b = standard_timeline17(0.03, 3)
        assert a is not b

    def test_tagged_registry_cached(self):
        assert tagged_timeline17(0.02, 3) is tagged_timeline17(0.02, 3)


class TestTaggedDataset:
    def test_iteration_pairs_instances_with_pools(self):
        tagged = _mini_tagged()
        for instance, pool in tagged:
            assert pool, instance.name
            assert all(hasattr(s, "date") for s in pool)

    def test_subset_view_shares_pools(self):
        tagged = _mini_tagged()
        view = tagged.subset([0, 2])
        assert len(view) == 2
        assert view.pool(0) is tagged.pool(0)
        assert view.pool(1) is tagged.pool(2)
        assert view.instance(1).name == tagged.instance(2).name

    def test_training_examples_triples(self):
        tagged = _mini_tagged()
        training = tagged.training_examples([1, 2])
        assert len(training) == 2
        pool, reference, query = training[0]
        assert pool is tagged.pool(1)
        assert reference is tagged.instance(1).reference
        assert query == tagged.instance(1).corpus.query
