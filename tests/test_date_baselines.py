"""Tests for the alternative date-selection strategies."""

import pytest

from repro.core.date_baselines import (
    BurstDateSelector,
    MentionCountSelector,
    PublicationVolumeSelector,
)
from repro.tlsdata.types import DatedSentence
from tests.conftest import d


def _pool():
    """Three days: day2 heaviest by volume, day1 most mentioned."""
    day1, day2, day3 = d("2020-01-01"), d("2020-01-05"), d("2020-01-09")
    pool = []
    # Publication volume: day2 gets 4, day1 gets 2, day3 gets 1.
    for index in range(4):
        pool.append(DatedSentence(day2, f"volume {index}.", day2))
    for index in range(2):
        pool.append(DatedSentence(day1, f"start {index}.", day1))
    pool.append(DatedSentence(day3, "late coverage.", day3))
    # Mentions: day1 referenced 5 times from later days.
    for index in range(5):
        pool.append(
            DatedSentence(
                day1, f"recalling day one {index}.", day3,
                is_reference=True,
            )
        )
    return pool


class TestPublicationVolume:
    def test_heaviest_day_first(self):
        selected = PublicationVolumeSelector().select(_pool(), 1)
        assert selected == [d("2020-01-05")]

    def test_ignores_mentions(self):
        selected = PublicationVolumeSelector().select(_pool(), 2)
        assert d("2020-01-01") in selected  # 2 published > day3's 1
        assert selected == sorted(selected)

    def test_validation(self):
        with pytest.raises(ValueError):
            PublicationVolumeSelector().select(_pool(), 0)

    def test_empty(self):
        assert PublicationVolumeSelector().select([], 3) == []


class TestMentionCount:
    def test_most_mentioned_day_first(self):
        selected = MentionCountSelector().select(_pool(), 1)
        assert selected == [d("2020-01-01")]

    def test_gap_weighted_variant(self):
        pool = [
            DatedSentence(d("2020-01-01"), "pub.", d("2020-01-01")),
            DatedSentence(d("2020-01-02"), "pub.", d("2020-01-02")),
            # one near mention of day1, one far mention of day2
            DatedSentence(d("2020-01-01"), "near mention.",
                          d("2020-01-03"), is_reference=True),
            DatedSentence(d("2020-01-02"), "far mention.",
                          d("2020-03-01"), is_reference=True),
        ]
        plain = MentionCountSelector().select(pool, 1)
        weighted = MentionCountSelector(gap_weighted=True).select(pool, 1)
        # Equal counts tie toward the earlier day; gap weighting promotes
        # the far-referenced day.
        assert plain == [d("2020-01-01")]
        assert weighted == [d("2020-01-02")]

    def test_unmentioned_days_still_candidates(self):
        selected = MentionCountSelector().select(_pool(), 3)
        assert len(selected) == 3


class TestBurstSelector:
    def test_burst_day_selected(self):
        selected = BurstDateSelector().select(_pool(), 1)
        assert selected == [d("2020-01-05")]

    def test_flat_volumes_fall_back(self):
        pool = [
            DatedSentence(d("2020-01-01"), "a.", d("2020-01-01")),
            DatedSentence(d("2020-01-02"), "b.", d("2020-01-02")),
        ]
        selected = BurstDateSelector().select(pool, 1)
        assert len(selected) == 1

    def test_empty(self):
        assert BurstDateSelector().select([], 2) == []


class TestAgainstPageRank:
    def test_pagerank_beats_simple_signals_on_synthetic(
        self, tiny_pool, tiny_instance
    ):
        """The paper's date selector should outperform the heuristics."""
        from repro.core.date_selection import DateSelector
        from repro.evaluation.date_metrics import date_f1

        T = tiny_instance.target_num_dates
        reference = tiny_instance.reference.dates
        pagerank_f1 = date_f1(
            DateSelector().select(tiny_pool, T), reference
        )
        volume_f1 = date_f1(
            PublicationVolumeSelector().select(tiny_pool, T), reference
        )
        burst_f1 = date_f1(
            BurstDateSelector().select(tiny_pool, T), reference
        )
        assert pagerank_f1 >= volume_f1
        assert pagerank_f1 >= burst_f1
