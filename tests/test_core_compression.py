"""Tests for automatic date compression (Section 3.2.3)."""

from repro.core.compression import DateCountPredictor
from repro.tlsdata.types import DatedSentence
from tests.conftest import d


def _event_pool(num_events: int, sentences_per_event: int = 4):
    """Sentences for *num_events* well-separated vocabulary clusters."""
    topics = [
        ["ceasefire", "artillery", "border", "garrison"],
        ["vaccine", "outbreak", "quarantine", "clinic"],
        ["tariff", "sanctions", "export", "markets"],
        ["earthquake", "evacuation", "aftershock", "rubble"],
        ["election", "ballot", "parliament", "coalition"],
        ["wildfire", "drought", "shelter", "relief"],
    ]
    pool = []
    for event in range(num_events):
        words = topics[event % len(topics)]
        date = d("2020-01-01").replace(day=1 + event * 4)
        for i in range(sentences_per_event):
            text = (
                f"The {words[i % 4]} and the {words[(i + 1) % 4]} dominated "
                f"coverage as the {words[(i + 2) % 4]} drew attention."
            )
            pool.append(DatedSentence(date, text, date, f"a{event}"))
    return pool


class TestDailyDigests:
    def test_digest_per_qualifying_date(self):
        pool = _event_pool(3)
        predictor = DateCountPredictor(min_day_sentences=2)
        digests = predictor.daily_digests(pool)
        assert len(digests) == 3

    def test_thin_days_skipped(self):
        pool = _event_pool(2) + [
            DatedSentence(d("2020-02-27"), "lone sentence.", d("2020-02-27"))
        ]
        predictor = DateCountPredictor(min_day_sentences=2)
        digests = predictor.daily_digests(pool)
        assert d("2020-02-27") not in digests


class TestPredict:
    def test_empty_pool(self):
        assert DateCountPredictor().predict([]) == 0

    def test_single_day(self):
        pool = _event_pool(1)
        assert DateCountPredictor().predict(pool) == 1

    def test_prediction_in_plausible_range(self):
        pool = _event_pool(6)
        predicted = DateCountPredictor().predict(pool)
        assert 2 <= predicted <= 6

    def test_cluster_assignment_covers_all_dates(self):
        pool = _event_pool(4)
        count, assignment = DateCountPredictor().predict_with_clusters(
            pool
        )
        assert len(assignment) == 4
        assert set(assignment.values()) <= set(range(count))

    def test_deterministic(self):
        pool = _event_pool(5)
        a = DateCountPredictor(seed=3).predict(pool)
        b = DateCountPredictor(seed=3).predict(pool)
        assert a == b

    def test_more_events_more_clusters(self):
        few = DateCountPredictor().predict(_event_pool(2))
        many = DateCountPredictor().predict(_event_pool(6))
        assert many >= few
