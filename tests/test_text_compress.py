"""Tests for deletion-based sentence compression."""

import pytest

from repro.text.compress import (
    MIN_REMAINING_WORDS,
    compress_sentence,
    compress_sentences,
    compress_timeline,
    compression_ratio,
)
from repro.tlsdata.types import Timeline
from tests.conftest import d


class TestCompressSentence:
    def test_trailing_attribution_removed(self):
        sentence = (
            "The ceasefire collapsed near the border, the health "
            "ministry said."
        )
        assert compress_sentence(sentence) == (
            "The ceasefire collapsed near the border."
        )

    def test_leading_according_to_removed(self):
        sentence = (
            "According to local officials, the evacuation began at dawn "
            "in the coastal districts."
        )
        result = compress_sentence(sentence)
        assert result.startswith("The evacuation began")

    def test_parenthetical_removed(self):
        sentence = (
            "The stronghold (captured twice before) fell to the rebels "
            "after heavy shelling."
        )
        assert "(" not in compress_sentence(sentence)

    def test_filler_clause_removed(self):
        sentence = (
            "The offensive was halted, despite international appeals, "
            "before reaching the river crossing."
        )
        result = compress_sentence(sentence)
        assert "appeals" not in result
        assert result.endswith("river crossing.")

    def test_only_deletions(self):
        """Every output word must come from the input (reliability)."""
        sentence = (
            "Rebels seized the stronghold outside the city, according "
            "to local reports, after a night of artillery fire."
        )
        result = compress_sentence(sentence)
        source_words = set(
            sentence.lower().replace(",", "").replace(".", "").split()
        )
        for word in result.lower().replace(",", "").replace(
            ".", ""
        ).split():
            assert word in source_words

    def test_over_compression_guard(self):
        sentence = "Officials said so."  # compressing would leave nothing
        assert compress_sentence(sentence) == sentence

    def test_min_remaining_words_constant_sane(self):
        assert MIN_REMAINING_WORDS >= 3

    def test_terminal_punctuation_preserved(self):
        sentence = (
            "The blockade was lifted after negotiations, the port "
            "authority announced."
        )
        assert compress_sentence(sentence).endswith(".")

    def test_capitalisation_restored(self):
        sentence = (
            "According to mediators, talks on the prisoner exchange "
            "resumed in the capital."
        )
        result = compress_sentence(sentence)
        assert result[0].isupper()

    def test_idempotent(self):
        sentence = (
            "The ceasefire collapsed near the border, the health "
            "ministry said."
        )
        once = compress_sentence(sentence)
        assert compress_sentence(once) == once

    def test_plain_sentence_unchanged(self):
        sentence = "Rebels seized the stronghold outside the city."
        assert compress_sentence(sentence) == sentence


class TestBatchAndTimeline:
    def test_compress_sentences_order(self):
        sentences = [
            "One clear factual sentence stands entirely on its own.",
            "The levee failed overnight in the eastern district, "
            "the water board said.",
        ]
        result = compress_sentences(sentences)
        assert len(result) == 2
        assert "water board" not in result[1]

    def test_compress_timeline_preserves_structure(self):
        timeline = Timeline(
            {
                d("2020-01-01"): [
                    "The ceasefire collapsed near the border, the "
                    "health ministry said.",
                ],
                d("2020-01-05"): [
                    "Rebels seized the stronghold outside the city.",
                ],
            }
        )
        compressed = compress_timeline(timeline)
        assert compressed.dates == timeline.dates
        assert compressed.num_sentences() == timeline.num_sentences()
        assert "ministry" not in compressed.summary(d("2020-01-01"))[0]

    def test_compression_ratio(self):
        assert compression_ratio("abcdefgh", "abcd") == pytest.approx(0.5)
        assert compression_ratio("", "") == 1.0


class TestPipelineIntegration:
    def test_wilson_compression_flag(self, tiny_pool, tiny_instance):
        from repro.core.pipeline import Wilson, WilsonConfig

        plain = Wilson(
            WilsonConfig(num_dates=6, sentences_per_date=1)
        ).summarize(tiny_pool, query=tiny_instance.corpus.query)
        compressed = Wilson(
            WilsonConfig(num_dates=6, sentences_per_date=1,
                         compress_summaries=True)
        ).summarize(tiny_pool, query=tiny_instance.corpus.query)
        assert compressed.dates == plain.dates
        plain_chars = sum(len(s) for s in plain.all_sentences())
        compressed_chars = sum(
            len(s) for s in compressed.all_sentences()
        )
        assert compressed_chars <= plain_chars
