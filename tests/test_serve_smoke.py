"""End-to-end smoke: boot ``python -m repro serve``, curl it, SIGTERM it.

This is the same exercise the CI serve-smoke job performs, kept in the
suite so the full subprocess lifecycle (banner, ephemeral port, graceful
drain, exit code) stays covered locally.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

_BANNER = re.compile(r"serving on http://127\.0\.0\.1:(\d+)")


@pytest.fixture()
def server_process():
    env = dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--scale", "0.02", "--batch-window-ms", "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    try:
        port = None
        deadline = time.monotonic() + 60
        assert process.stdout is not None
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if not line:
                break
            match = _BANNER.search(line)
            if match:
                port = int(match.group(1))
                break
        assert port is not None, "server never printed its banner"
        yield process, port
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)


def _get(port, path, timeout=60):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=timeout
    ) as response:
        return response.status, response.read()


def _post_json(port, path, payload, timeout=60):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, response.read()


@pytest.mark.slow
def test_serve_boot_request_and_graceful_sigterm(server_process):
    process, port = server_process

    status, body = _get(port, "/healthz")
    assert status == 200
    health = json.loads(body)
    assert health["status"] == "ok"
    assert health["indexed_sentences"] > 0

    status, body = _get(port, "/metrics")
    assert status == 200
    assert b"wilson_serve_requests_total" in body

    status, body = _post_json(
        port, "/v1/timeline", {"keywords": ["released"], "num_dates": 3}
    )
    assert status == 200
    envelope = json.loads(body)
    assert envelope["schema"] == "wilson.serve/v1"
    assert envelope["cache"] == "miss"

    process.send_signal(signal.SIGTERM)
    assert process.wait(timeout=30) == 0
    output = process.stdout.read()
    assert "shutdown: drained cleanly" in output
