"""Tests for dataset statistics (Table 4)."""

import pytest

from repro.tlsdata.stats import dataset_statistics
from repro.tlsdata.synthetic import make_timeline17_like
from repro.tlsdata.types import Dataset


class TestDatasetStatistics:
    def test_empty_dataset(self):
        stats = dataset_statistics(Dataset("empty"))
        assert stats.num_timelines == 0
        assert stats.avg_docs_per_timeline == 0.0

    def test_timeline17_like_aggregates(self):
        dataset = make_timeline17_like(scale=0.02, seed=2)
        stats = dataset_statistics(dataset)
        assert stats.name == "timeline17"
        assert stats.num_topics == 9
        assert stats.num_timelines == 19
        assert stats.avg_docs_per_timeline >= 30
        # ~20 sentences per article plus title.
        assert (
            stats.avg_sentences_per_timeline
            > stats.avg_docs_per_timeline * 10
        )
        assert stats.avg_duration_days == pytest.approx(242, abs=5)

    def test_as_row_formatting(self):
        dataset = make_timeline17_like(scale=0.02, seed=2)
        row = dataset_statistics(dataset).as_row()
        assert row[0] == "timeline17"
        assert row[1] == "9"
        assert row[2] == "19"
        assert len(row) == 6
