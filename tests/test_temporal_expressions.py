"""Tests for temporal expression recognition and normalisation."""

import datetime

import pytest

from repro.temporal.expressions import find_expressions

ANCHOR = datetime.date(2018, 6, 1)  # a Friday


def single(sentence, anchor=ANCHOR):
    expressions = [
        e for e in find_expressions(sentence, anchor) if e.date is not None
    ]
    assert expressions, f"no expression found in: {sentence}"
    return expressions[0]


class TestExplicitDates:
    def test_iso(self):
        e = single("The summit takes place on 2018-06-12.")
        assert e.date == datetime.date(2018, 6, 12)
        assert e.kind == "iso"

    def test_month_day_year(self):
        e = single("Trump cancelled the summit on May 24, 2018.")
        assert e.date == datetime.date(2018, 5, 24)

    def test_month_day_year_abbreviated(self):
        e = single("It happened on Mar. 8, 2018 in Seoul.")
        assert e.date == datetime.date(2018, 3, 8)

    def test_day_month_year(self):
        e = single("The deal was signed 12 June 2018 in Singapore.")
        assert e.date == datetime.date(2018, 6, 12)

    def test_numeric_us_format(self):
        e = single("Filed on 6/12/2018 with the court.")
        assert e.date == datetime.date(2018, 6, 12)

    def test_ordinal_day(self):
        e = single("Scheduled for June 12th, 2018 at noon.")
        assert e.date == datetime.date(2018, 6, 12)

    def test_invalid_date_rejected(self):
        expressions = find_expressions(
            "A strange note dated February 31, 2018 appeared.", ANCHOR
        )
        assert all(e.date is None or e.date.month != 2 or e.date.day != 31
                   for e in expressions)


class TestUnderspecifiedDates:
    def test_month_day_resolves_to_nearest_year(self):
        e = single("Talks resume on June 12.")
        assert e.date == datetime.date(2018, 6, 12)

    def test_month_day_previous_year(self):
        # Anchored in January, "December 20" means last year.
        e = single(
            "The crisis began on December 20.",
            anchor=datetime.date(2018, 1, 5),
        )
        assert e.date == datetime.date(2017, 12, 20)

    def test_no_anchor_gives_none(self):
        expressions = find_expressions("Talks resume on June 12.", None)
        assert all(
            e.date is None for e in expressions if e.kind == "month_day"
        )


class TestRelativeExpressions:
    def test_today(self):
        assert single("The deal was signed today.").date == ANCHOR

    def test_yesterday(self):
        e = single("Fighting erupted yesterday near the border.")
        assert e.date == ANCHOR - datetime.timedelta(days=1)

    def test_tomorrow(self):
        e = single("The vote happens tomorrow.")
        assert e.date == ANCHOR + datetime.timedelta(days=1)

    def test_bare_weekday_nearest(self):
        # Anchor is Friday 2018-06-01; "on Thursday" -> 2018-05-31.
        e = single("The committee met on Thursday.")
        assert e.date == datetime.date(2018, 5, 31)

    def test_last_weekday(self):
        e = single("He arrived last Friday.")
        assert e.date == datetime.date(2018, 5, 25)

    def test_next_weekday(self):
        e = single("They meet next Monday.")
        assert e.date == datetime.date(2018, 6, 4)

    def test_days_ago(self):
        e = single("The attack occurred three days ago.")
        assert e.date == ANCHOR - datetime.timedelta(days=3)

    def test_weeks_ago_numeric(self):
        e = single("Protests started 2 weeks ago.")
        assert e.date == ANCHOR - datetime.timedelta(days=14)


class TestMultipleAndOverlap:
    def test_full_date_beats_partial(self):
        expressions = find_expressions(
            "It happened on June 12, 2018.", ANCHOR
        )
        kinds = [e.kind for e in expressions]
        assert "month_day_year" in kinds
        assert "month_day" not in kinds

    def test_multiple_distinct_dates(self):
        expressions = find_expressions(
            "Talks began on March 8, 2018 and concluded on June 12, 2018.",
            ANCHOR,
        )
        dates = {e.date for e in expressions}
        assert datetime.date(2018, 3, 8) in dates
        assert datetime.date(2018, 6, 12) in dates

    def test_sorted_by_position(self):
        expressions = find_expressions(
            "After May 24, 2018 everything changed; by June 1, 2018 it was done.",
            ANCHOR,
        )
        starts = [e.start for e in expressions]
        assert starts == sorted(starts)

    def test_no_expressions(self):
        assert find_expressions("Nothing temporal here.", ANCHOR) == []


class TestExtendedExpressions:
    def test_day_range_resolves_to_start(self):
        e = single("Talks are planned for June 12-15 in Singapore.")
        assert e.date == datetime.date(2018, 6, 12)
        assert e.kind == "day_range"

    def test_day_range_en_dash(self):
        e = single("The exercise runs May 3–7 this year.")
        assert e.date == datetime.date(2018, 5, 3)

    def test_month_part_early(self):
        e = single("The offensive began in early June.")
        assert e.date == datetime.date(2018, 6, 5)
        assert e.kind == "month_part"

    def test_month_part_mid_with_year(self):
        e = single("Production resumed in mid-March 2017.")
        assert e.date == datetime.date(2017, 3, 15)

    def test_month_part_late(self):
        e = single("Aid arrived in late May.")
        assert e.date == datetime.date(2018, 5, 25)

    def test_this_morning(self):
        e = single("The minister resigned this morning.")
        assert e.date == ANCHOR

    def test_last_week(self):
        e = single("Violence flared last week across the province.")
        assert e.date == ANCHOR - datetime.timedelta(days=7)
        assert e.kind == "relative_period"

    def test_next_month(self):
        e = single("Elections are expected next month.")
        assert e.date == ANCHOR + datetime.timedelta(days=30)

    def test_range_beats_partial_date(self):
        expressions = find_expressions(
            "Scheduled for June 12-15 at the summit site.", ANCHOR
        )
        kinds = [e.kind for e in expressions]
        assert "day_range" in kinds
        assert "month_day" not in kinds

    def test_no_anchor_relative_period_unresolved(self):
        expressions = find_expressions("It happened last week.", None)
        assert all(
            e.date is None
            for e in expressions
            if e.kind == "relative_period"
        )
