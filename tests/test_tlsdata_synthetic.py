"""Tests for the synthetic corpus generator."""

import datetime

import pytest

from repro.tlsdata.synthetic import (
    SyntheticConfig,
    SyntheticCorpusGenerator,
    make_crisis_like,
    make_timeline17_like,
)


def small_config(**overrides):
    defaults = dict(
        topic="t",
        theme="disease",
        seed=3,
        duration_days=60,
        num_events=10,
        num_major_events=5,
        num_articles=30,
        sentences_per_article=8,
    )
    defaults.update(overrides)
    return SyntheticConfig(**defaults)


class TestConfigValidation:
    def test_unknown_theme_rejected(self):
        with pytest.raises(ValueError):
            small_config(theme="sports")

    def test_too_many_majors_rejected(self):
        with pytest.raises(ValueError):
            small_config(num_events=5, num_major_events=6)

    def test_short_duration_rejected(self):
        with pytest.raises(ValueError):
            small_config(duration_days=5, num_events=10)

    def test_scaled_floors_articles(self):
        config = small_config(num_articles=100)
        assert config.scaled(0.01).num_articles == 30

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            small_config().scaled(0.0)


class TestEventStructure:
    def test_events_sorted_and_distinct(self):
        generator = SyntheticCorpusGenerator(small_config())
        dates = [e.date for e in generator.events]
        assert dates == sorted(dates)
        assert len(set(dates)) == len(dates)

    def test_major_event_count(self):
        generator = SyntheticCorpusGenerator(small_config())
        majors = [e for e in generator.events if e.is_major]
        assert len(majors) == 5

    def test_majors_more_important_on_average(self):
        generator = SyntheticCorpusGenerator(small_config())
        majors = [e.importance for e in generator.events if e.is_major]
        minors = [e.importance for e in generator.events if not e.is_major]
        assert min(majors) > max(minors) - 1.0  # majors get +1 boost

    def test_events_shared_across_instances(self):
        config = small_config()
        a = SyntheticCorpusGenerator(config, instance_seed=0)
        b = SyntheticCorpusGenerator(config, instance_seed=1)
        assert [e.date for e in a.events] == [e.date for e in b.events]

    def test_event_dates_within_window(self):
        config = small_config()
        generator = SyntheticCorpusGenerator(config)
        end = config.start_date + datetime.timedelta(
            days=config.duration_days - 1
        )
        for event in generator.events:
            assert config.start_date <= event.date <= end


class TestGeneratedInstance:
    def test_article_count_and_window(self):
        config = small_config()
        instance = SyntheticCorpusGenerator(config).generate()
        assert len(instance.corpus.articles) == config.num_articles
        start, end = instance.corpus.window
        assert start == config.start_date
        for article in instance.corpus.articles:
            assert start <= article.publication_date <= end

    def test_reference_covers_major_events(self):
        config = small_config()
        generator = SyntheticCorpusGenerator(config)
        instance = generator.generate()
        major_dates = {e.date for e in generator.events if e.is_major}
        assert set(instance.reference.dates) == major_dates

    def test_deterministic_generation(self):
        config = small_config()
        a = SyntheticCorpusGenerator(config, instance_seed=5).generate()
        b = SyntheticCorpusGenerator(config, instance_seed=5).generate()
        assert a.reference == b.reference
        assert [x.text for x in a.corpus.articles] == [
            x.text for x in b.corpus.articles
        ]

    def test_different_instance_seeds_differ(self):
        config = small_config()
        a = SyntheticCorpusGenerator(config, instance_seed=0).generate()
        b = SyntheticCorpusGenerator(config, instance_seed=1).generate()
        assert [x.text for x in a.corpus.articles] != [
            x.text for x in b.corpus.articles
        ]

    def test_articles_presplit(self):
        instance = SyntheticCorpusGenerator(small_config()).generate()
        article = instance.corpus.articles[0]
        assert article.sentences is not None
        assert len(article.sentences) >= 4

    def test_query_nonempty(self):
        instance = SyntheticCorpusGenerator(small_config()).generate()
        assert len(instance.corpus.query) >= 3

    def test_date_references_present(self):
        """Sentences must mention other dates to feed the reference graph."""
        instance = SyntheticCorpusGenerator(small_config()).generate()
        pairs = instance.corpus.dated_sentences()
        references = [p for p in pairs if p.is_reference]
        assert len(references) > 10

    def test_references_skew_backward(self):
        """Most date references point to the past (Section 2.2.1's premise)."""
        instance = SyntheticCorpusGenerator(
            small_config(num_articles=60)
        ).generate()
        pairs = instance.corpus.dated_sentences()
        backward = sum(
            1 for p in pairs
            if p.is_reference and p.date < p.publication_date
        )
        forward = sum(
            1 for p in pairs
            if p.is_reference and p.date > p.publication_date
        )
        assert backward > forward


class TestDatasetPresets:
    def test_timeline17_shape(self):
        dataset = make_timeline17_like(scale=0.02, seed=1)
        assert dataset.name == "timeline17"
        assert len(dataset) == 19
        assert len(dataset.topics()) == 9

    def test_crisis_shape(self):
        dataset = make_crisis_like(scale=0.005, seed=1)
        assert dataset.name == "crisis"
        assert len(dataset) == 22
        assert len(dataset.topics()) == 4

    def test_crisis_references_compact(self):
        dataset = make_crisis_like(scale=0.005, seed=1)
        avg = sum(
            inst.reference.average_sentences_per_date()
            for inst in dataset
        ) / len(dataset)
        assert avg < 2.0  # crisis ground truths are ~1 sentence/date
