"""Tests for MRR / DCG / MAPE metrics."""

import math

import pytest

from repro.evaluation.mape import mape
from repro.evaluation.ranking import dcg, mean_reciprocal_rank, rank_histogram


class TestMRR:
    def test_all_first(self):
        assert mean_reciprocal_rank([1, 1, 1]) == pytest.approx(1.0)

    def test_mixed_ranks(self):
        assert mean_reciprocal_rank([1, 2, 3]) == pytest.approx(
            (1 + 0.5 + 1 / 3) / 3
        )

    def test_empty(self):
        assert mean_reciprocal_rank([]) == 0.0

    def test_rejects_zero_rank(self):
        with pytest.raises(ValueError):
            mean_reciprocal_rank([0])


class TestDCG:
    def test_rank_values(self):
        assert dcg([1]) == pytest.approx(1.0)
        assert dcg([2]) == pytest.approx(1 / math.log2(3))
        assert dcg([3]) == pytest.approx(0.5)

    def test_paper_scale(self):
        """WILSON's Table 9 row: 5x 1st, 1x 2nd, 4x 3rd -> DCG ~7.63."""
        ranks = [1] * 5 + [2] * 1 + [3] * 4
        assert dcg(ranks) == pytest.approx(7.63, abs=0.01)

    def test_empty(self):
        assert dcg([]) == 0.0

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            dcg([0])


class TestRankHistogram:
    def test_counts(self):
        ranks = [1, 1, 2, 3, 3, 3]
        assert rank_histogram(ranks) == [2, 1, 3]

    def test_out_of_range_ignored(self):
        assert rank_histogram([1, 4], max_rank=3) == [1, 0, 0]


class TestMape:
    def test_perfect_prediction(self):
        assert mape([10, 20], [10, 20]) == 0.0

    def test_hand_computed(self):
        # |8-10|/10 = 0.2; |30-20|/20 = 0.5 -> mean 0.35.
        assert mape([8, 30], [10, 20]) == pytest.approx(0.35)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            mape([1], [1, 2])

    def test_empty(self):
        with pytest.raises(ValueError):
            mape([], [])

    def test_zero_actual_rejected(self):
        with pytest.raises(ValueError):
            mape([1], [0])
