"""Tests for Okapi BM25."""

import numpy as np
import pytest

from repro.text.bm25 import BM25, BM25Parameters

CORPUS = [
    ["ceasefire", "collapse", "border"],
    ["rebel", "seize", "stronghold", "city"],
    ["truce", "sign", "talk", "talk"],
    ["ceasefire", "talk", "resume"],
]


class TestBM25Parameters:
    def test_defaults_valid(self):
        params = BM25Parameters()
        assert params.k1 > 0 and 0 <= params.b <= 1

    def test_rejects_negative_k1(self):
        with pytest.raises(ValueError):
            BM25Parameters(k1=-1.0)

    def test_rejects_b_out_of_range(self):
        with pytest.raises(ValueError):
            BM25Parameters(b=1.5)

class TestBM25Scoring:
    def test_matching_doc_scores_positive(self):
        bm25 = BM25(CORPUS)
        assert bm25.score(["ceasefire"], 0) > 0

    def test_non_matching_doc_scores_zero(self):
        bm25 = BM25(CORPUS)
        assert bm25.score(["ceasefire"], 1) == 0.0

    def test_scores_vector_matches_pointwise(self):
        bm25 = BM25(CORPUS)
        query = ["ceasefire", "talk"]
        vector = bm25.scores(query)
        for index in range(len(CORPUS)):
            assert vector[index] == pytest.approx(bm25.score(query, index))

    def test_rare_term_outweighs_common(self):
        corpus = [
            ["common", "rare"],
            ["common"],
            ["common"],
            ["common"],
        ]
        bm25 = BM25(corpus)
        assert bm25.idf("rare") > bm25.idf("common")

    def test_term_frequency_monotonicity(self):
        corpus = [
            ["talk"],
            ["talk", "talk"],
            ["other"],
        ]
        bm25 = BM25(corpus)
        # Same length normalisation difference aside, more occurrences of
        # the query term cannot reduce the score below a single occurrence
        # of equal-length docs; compare equal-length docs directly.
        corpus2 = [["talk", "x"], ["talk", "talk"], ["other", "y"]]
        bm25 = BM25(corpus2)
        assert bm25.score(["talk"], 1) > bm25.score(["talk"], 0)

    def test_oov_query_scores_zero_everywhere(self):
        bm25 = BM25(CORPUS)
        assert np.all(bm25.scores(["zzz"]) == 0)

    def test_empty_corpus(self):
        bm25 = BM25([])
        assert bm25.scores(["talk"]).shape == (0,)

    def test_empty_document(self):
        bm25 = BM25([["a"], []])
        assert bm25.score(["a"], 1) == 0.0

    def test_idf_always_positive(self):
        corpus = [["the", "x"], ["the", "y"], ["the", "z"]]
        bm25 = BM25(corpus)
        assert bm25.idf("the") > 0.0


class TestPairwiseMatrix:
    def test_shape_and_zero_diagonal(self):
        bm25 = BM25(CORPUS)
        matrix = bm25.pairwise_matrix()
        assert matrix.shape == (4, 4)
        assert np.all(np.diag(matrix) == 0)

    def test_matrix_nonnegative(self):
        matrix = BM25(CORPUS).pairwise_matrix()
        assert np.all(matrix >= 0)

    def test_shared_vocabulary_produces_edges(self):
        matrix = BM25(CORPUS).pairwise_matrix()
        # docs 0 and 3 share "ceasefire"; docs 2 and 3 share "talk".
        assert matrix[0, 3] > 0
        assert matrix[3, 0] > 0
        assert matrix[2, 3] > 0

    def test_disjoint_docs_have_no_edge(self):
        matrix = BM25(CORPUS).pairwise_matrix()
        assert matrix[0, 1] == 0.0

    def test_asymmetric_in_general(self):
        # Repeated query terms ("talk" twice in doc 2) make the matrix
        # asymmetric, which is why WILSON builds a *directed* graph.
        matrix = BM25(CORPUS).pairwise_matrix()
        assert matrix[2, 3] != pytest.approx(matrix[3, 2])
