"""Tests for Affinity Propagation clustering."""

import numpy as np
import pytest

from repro.graph.affinity_propagation import AffinityPropagation


def _blob_similarities(seed: int = 0, per_blob: int = 8, blobs: int = 3):
    """Negative squared distances of well-separated 2-D blobs."""
    rng = np.random.default_rng(seed)
    points = []
    for b in range(blobs):
        center = np.array([10.0 * b, -10.0 * b])
        points.append(center + 0.5 * rng.standard_normal((per_blob, 2)))
    points = np.vstack(points)
    diff = points[:, None, :] - points[None, :, :]
    return -np.sum(diff * diff, axis=2), points


class TestClustering:
    def test_recovers_three_blobs(self):
        similarities, _ = _blob_similarities()
        result = AffinityPropagation(seed=1).fit(similarities)
        assert result.n_clusters == 3
        # All points of one blob share a label.
        labels = result.labels
        for start in (0, 8, 16):
            assert len(set(labels[start : start + 8])) == 1

    def test_labels_point_to_exemplars(self):
        similarities, _ = _blob_similarities(seed=3)
        result = AffinityPropagation(seed=1).fit(similarities)
        assert set(result.labels) == set(range(result.n_clusters))
        for index, exemplar in enumerate(result.exemplars):
            assert result.labels[exemplar] == index

    def test_low_preference_fewer_clusters(self):
        similarities, _ = _blob_similarities(seed=5)
        few = AffinityPropagation(preference=-5000.0, seed=1).fit(
            similarities
        )
        many = AffinityPropagation(preference=-1.0, seed=1).fit(
            similarities
        )
        assert few.n_clusters <= many.n_clusters

    def test_deterministic_for_fixed_seed(self):
        similarities, _ = _blob_similarities(seed=7)
        a = AffinityPropagation(seed=4).fit(similarities)
        b = AffinityPropagation(seed=4).fit(similarities)
        assert np.array_equal(a.labels, b.labels)


class TestEdgeCases:
    def test_empty_input(self):
        result = AffinityPropagation().fit(np.zeros((0, 0)))
        assert result.n_clusters == 0
        assert result.converged

    def test_single_item(self):
        result = AffinityPropagation().fit(np.zeros((1, 1)))
        assert result.n_clusters == 1
        assert result.labels[0] == 0

    def test_two_identical_items_one_cluster(self):
        similarities = np.array([[0.0, -0.001], [-0.001, 0.0]])
        result = AffinityPropagation(seed=2).fit(similarities)
        assert result.n_clusters in (1, 2)
        assert len(result.labels) == 2

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            AffinityPropagation().fit(np.zeros((2, 3)))

    def test_rejects_bad_damping(self):
        with pytest.raises(ValueError):
            AffinityPropagation(damping=0.3)
        with pytest.raises(ValueError):
            AffinityPropagation(damping=1.0)

    def test_rejects_bad_iterations(self):
        with pytest.raises(ValueError):
            AffinityPropagation(max_iterations=0)

    def test_every_point_labelled(self):
        similarities, _ = _blob_similarities(seed=9, per_blob=5)
        result = AffinityPropagation(seed=1).fit(similarities)
        assert len(result.labels) == similarities.shape[0]
        assert (result.labels >= 0).all()
