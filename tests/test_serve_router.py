"""The scatter-gather router: byte-identity, degradation, merge math.

Drives a real :class:`~repro.serve.TimelineRouter` over actual sockets
against real in-process shard workers (each a
:class:`~repro.serve.TimelineServer` booted from a topology slice) and
pins the sharded-serving contract:

* with every shard healthy, ``/v1/search`` responses are **byte
  identical** to single-index serving, and ``/v1/timeline`` responses
  are identical up to the (timing-valued) telemetry block;
* :func:`merge_shard_candidates` reproduces single-index BM25 scores
  and ordering exactly from raw per-shard statistics;
* a dead shard degrades the response -- HTTP 200, ``X-Wilson-Degraded``
  header, ``degraded_shards`` envelope field -- and never a 5xx, and
  degraded merges are not cached;
* all shards dead is a 503, not a hang or a crash;
* the ``router.*`` telemetry stays inside the documented registry.
"""

import http.client
import json
import socket

import pytest

from repro.core.pipeline import Wilson, WilsonConfig
from repro.search.engine import SearchEngine
from repro.search.query import SearchQuery, execute, gather_candidates
from repro.search.realtime import RealTimeTimelineSystem
from repro.serve import (
    DEGRADED_HEADER,
    POOL_METRIC_NAMES,
    REPLICA_METRIC_NAMES,
    ROUTER_METRIC_NAMES,
    BackgroundServer,
    RouterConfig,
    ServeConfig,
    TimelineRouter,
    TimelineServer,
    canonical_json,
    export_slices,
    merge_shard_candidates,
)
from repro.obs.metrics import Metrics
from repro.tlsdata.synthetic import make_timeline17_like

NUM_SHARDS = 2


@pytest.fixture(scope="module")
def instance():
    return make_timeline17_like(scale=0.02, seed=11).instances[0]


@pytest.fixture(scope="module")
def system(instance):
    system = RealTimeTimelineSystem()
    system.ingest(instance.corpus.articles)
    return system


@pytest.fixture(scope="module")
def topology(system, tmp_path_factory):
    return export_slices(
        system.engine.index,
        tmp_path_factory.mktemp("topology"),
        NUM_SHARDS,
    )


def _shard_system(slice_path):
    wilson = Wilson(WilsonConfig())
    engine = SearchEngine.load_snapshot(slice_path, cache=wilson.cache)
    return RealTimeTimelineSystem(
        engine=engine, wilson=wilson, cache=wilson.cache
    )


@pytest.fixture(scope="module")
def shard_servers(topology):
    servers = []
    contexts = []
    for shard in topology.shards:
        context = BackgroundServer(
            TimelineServer(
                _shard_system(shard.path),
                ServeConfig(port=0, batch_window_ms=2.0),
            )
        )
        servers.append(context.__enter__())
        contexts.append(context)
    yield servers
    for context in contexts:
        context.__exit__(None, None, None)


@pytest.fixture()
def single_server(system):
    config = ServeConfig(port=0, batch_window_ms=2.0, workers=2)
    with BackgroundServer(TimelineServer(system, config)) as running:
        yield running


@pytest.fixture()
def router(topology, shard_servers):
    endpoints = [
        f"http://127.0.0.1:{server.port}" for server in shard_servers
    ]
    running = TimelineRouter(
        topology,
        endpoints,
        config=RouterConfig(port=0, shard_timeout_seconds=30.0),
        metrics=Metrics(),
    )
    with BackgroundServer(running) as server:
        yield server


def _free_port():
    """A port with nothing listening (for the dead-shard cases)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _degraded_router(topology, shard_servers, dead_shard=1):
    """Router wired with one endpoint pointing at a closed port."""
    endpoints = [
        f"http://127.0.0.1:{server.port}" for server in shard_servers
    ]
    endpoints[dead_shard] = f"http://127.0.0.1:{_free_port()}"
    return BackgroundServer(
        TimelineRouter(
            topology,
            endpoints,
            config=RouterConfig(
                port=0, shard_timeout_seconds=30.0, shard_retries=0
            ),
            metrics=Metrics(),
        )
    )


def _request(server, method, path, payload=None):
    conn = http.client.HTTPConnection(
        "127.0.0.1", server.port, timeout=120
    )
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        conn.request(
            method, path, body=body,
            headers={"Content-Type": "application/json"} if body else {},
        )
        response = conn.getresponse()
        raw = response.read()
        return response.status, dict(response.getheaders()), raw
    finally:
        conn.close()


def _timeline_payload(instance, **overrides):
    start, end = instance.corpus.window
    payload = {
        "keywords": list(instance.corpus.query),
        "start": start.isoformat(),
        "end": end.isoformat(),
        "num_dates": 5,
        "num_sentences": 1,
    }
    payload.update(overrides)
    return payload


def _without_telemetry(raw):
    envelope = json.loads(raw)
    envelope["result"].pop("telemetry")
    return canonical_json(envelope)


class TestMergeMath:
    """merge_shard_candidates == execute, bit for bit, fixture-free."""

    def _payload(self, index, query):
        candidates = gather_candidates(index, query)
        return {
            "index_version": index.index_version,
            "terms": list(candidates.terms),
            "stats": {
                "documents": candidates.documents,
                "total_tokens": candidates.total_tokens,
                "df": list(candidates.document_frequencies),
            },
            "truncated": candidates.truncated,
            "hits": [
                {
                    "doc_id": hit.doc_id,
                    "length": hit.length,
                    "tf": list(hit.term_frequencies),
                    "text": index.document(hit.doc_id).text,
                    "date": index.document(hit.doc_id).date.isoformat(),
                    "publication_date": index.document(
                        hit.doc_id
                    ).publication_date.isoformat(),
                    "article_id": index.document(hit.doc_id).article_id,
                    "is_reference": index.document(
                        hit.doc_id
                    ).is_reference,
                }
                for hit in candidates.hits
            ],
        }

    @pytest.mark.parametrize("num_shards", [1, 2, 3])
    @pytest.mark.parametrize(
        "keywords",
        [("government",), ("government", "minister"), ("crisis", "crisis")],
    )
    def test_merged_scores_equal_single_index_exactly(
        self, system, tmp_path, num_shards, keywords
    ):
        topology = export_slices(
            system.engine.index, tmp_path / str(num_shards), num_shards
        )
        query = SearchQuery(keywords=keywords, limit=25)
        expected = execute(system.engine.index, query)

        responses = {}
        for shard in topology.shards:
            slice_engine = SearchEngine.load_snapshot(shard.path)
            responses[shard.shard_id] = self._payload(
                slice_engine.index, query
            )
        merged = merge_shard_candidates(
            responses, topology, query.limit
        )

        assert len(merged.hits) == len(expected)
        for ours, theirs in zip(merged.hits, expected):
            assert ours.doc_id == theirs.document.doc_id
            assert ours.score == theirs.score  # bit-exact, not approx

    def test_window_filtered_merge_matches(self, system, tmp_path):
        topology = export_slices(system.engine.index, tmp_path, 2)
        dates = system.engine.index.dates()
        # A window inside shard 0 only: shard 1 still contributes its
        # corpus statistics, else the IDF would drift off single-index.
        query = SearchQuery(
            keywords=("government",),
            start=dates[0],
            end=dates[len(dates) // 4],
            limit=50,
        )
        expected = execute(system.engine.index, query)
        responses = {
            shard.shard_id: self._payload(
                SearchEngine.load_snapshot(shard.path).index, query
            )
            for shard in topology.shards
        }
        merged = merge_shard_candidates(responses, topology, query.limit)
        assert [h.doc_id for h in merged.hits] == [
            h.document.doc_id for h in expected
        ]
        assert [h.score for h in merged.hits] == [
            h.score for h in expected
        ]

    def test_term_disagreement_is_rejected(self, system, tmp_path):
        topology = export_slices(system.engine.index, tmp_path, 2)
        query = SearchQuery(keywords=("government",))
        responses = {
            shard.shard_id: self._payload(
                SearchEngine.load_snapshot(shard.path).index, query
            )
            for shard in topology.shards
        }
        responses[1]["terms"] = ["something-else"]
        with pytest.raises(ValueError, match="analyzed the query"):
            merge_shard_candidates(responses, topology, 10)

    def test_empty_responses_merge_to_nothing(self, system, tmp_path):
        topology = export_slices(system.engine.index, tmp_path, 2)
        merged = merge_shard_candidates({}, topology, 10)
        assert merged.hits == ()


class TestHealthyByteIdentity:
    def test_search_bytes_identical_to_single_index(
        self, router, single_server, instance
    ):
        query = "+".join(instance.corpus.query)
        for path in (
            f"/v1/search?q={query}&limit=20",
            f"/v1/search?q={query}&limit=3",
            "/v1/search?q=government&limit=50",
        ):
            routed_status, _, routed = _request(router, "GET", path)
            direct_status, _, direct = _request(
                single_server, "GET", path
            )
            assert routed_status == direct_status == 200
            assert routed == direct  # the full response body, verbatim

    def test_timeline_identical_to_single_index_minus_telemetry(
        self, router, single_server, instance
    ):
        payload = _timeline_payload(instance)
        routed_status, routed_headers, routed = _request(
            router, "POST", "/v1/timeline", payload
        )
        direct_status, _, direct = _request(
            single_server, "POST", "/v1/timeline", payload
        )
        assert routed_status == direct_status == 200
        assert DEGRADED_HEADER not in routed_headers
        assert _without_telemetry(routed) == _without_telemetry(direct)

    def test_timeline_cache_hit_replays_the_same_result(
        self, router, instance
    ):
        payload = _timeline_payload(instance, num_dates=4)
        _, _, cold = _request(router, "POST", "/v1/timeline", payload)
        status, _, warm = _request(
            router, "POST", "/v1/timeline", payload
        )
        assert status == 200
        cold_env, warm_env = json.loads(cold), json.loads(warm)
        assert cold_env["cache"] == "miss"
        assert warm_env["cache"] == "hit"
        assert canonical_json(cold_env["result"]) == canonical_json(
            warm_env["result"]
        )

    def test_healthz_reports_all_shards_healthy(self, router):
        status, _, raw = _request(router, "GET", "/healthz")
        assert status == 200
        payload = json.loads(raw)
        assert payload["status"] == "ok"
        assert payload["shards"] == NUM_SHARDS
        assert payload["shards_healthy"] == NUM_SHARDS


class TestDegradation:
    def test_one_shard_down_degrades_but_serves_200(
        self, topology, shard_servers, instance
    ):
        with _degraded_router(topology, shard_servers) as router:
            payload = _timeline_payload(instance)
            status, headers, raw = _request(
                router, "POST", "/v1/timeline", payload
            )
            assert status == 200  # never a 5xx for a partial outage
            assert headers.get(DEGRADED_HEADER) == "1"
            envelope = json.loads(raw)
            assert envelope["degraded_shards"] == [1]
            assert envelope["schema"] == "wilson.serve/v1"
            timeline = envelope["result"]["timeline"]
            assert isinstance(timeline, dict)  # well-formed result

    def test_degraded_search_returns_partial_hits(
        self, topology, shard_servers
    ):
        with _degraded_router(topology, shard_servers) as router:
            status, headers, raw = _request(
                router, "GET", "/v1/search?q=government&limit=50"
            )
            assert status == 200
            assert headers.get(DEGRADED_HEADER) == "1"
            envelope = json.loads(raw)
            assert envelope["degraded_shards"] == [1]
            hits = envelope["hits"]
            assert hits, "healthy shard should still contribute"
            assert envelope["count"] == len(hits)
            # Shard 1 is dead, so every hit must date-fall in shard 0.
            start, end = (
                topology.shards[0].start.isoformat(),
                topology.shards[0].end.isoformat(),
            )
            assert all(start <= hit["date"] <= end for hit in hits)

    def test_degraded_merges_are_never_cached(
        self, topology, shard_servers, instance
    ):
        with _degraded_router(topology, shard_servers) as router:
            payload = _timeline_payload(instance, num_dates=3)
            _, _, first = _request(
                router, "POST", "/v1/timeline", payload
            )
            _, _, second = _request(
                router, "POST", "/v1/timeline", payload
            )
            assert json.loads(first)["cache"] == "miss"
            assert json.loads(second)["cache"] == "miss"

    def test_degraded_healthz_reports_the_outage(
        self, topology, shard_servers
    ):
        with _degraded_router(topology, shard_servers) as router:
            status, _, raw = _request(router, "GET", "/healthz")
            assert status == 200
            payload = json.loads(raw)
            assert payload["status"] == "degraded"
            assert payload["shards_healthy"] == NUM_SHARDS - 1

    def test_all_shards_down_is_a_503(self, topology, instance):
        endpoints = [
            f"http://127.0.0.1:{_free_port()}"
            for _ in range(NUM_SHARDS)
        ]
        running = TimelineRouter(
            topology,
            endpoints,
            config=RouterConfig(
                port=0, shard_timeout_seconds=5.0, shard_retries=0
            ),
            metrics=Metrics(),
        )
        with BackgroundServer(running) as router:
            status, _, raw = _request(
                router,
                "POST",
                "/v1/timeline",
                _timeline_payload(instance),
            )
            assert status == 503
            assert json.loads(raw)["schema"] == "wilson.serve/v1"


class TestRouterContract:
    def test_bad_requests_are_400s(self, router):
        status, _, _ = _request(router, "GET", "/v1/search")
        assert status == 400
        status, _, raw = _request(
            router, "POST", "/v1/timeline", {"keywords": []}
        )
        assert status == 400
        assert "keywords" in json.loads(raw)["detail"]

    def test_unknown_route_is_a_404(self, router):
        status, _, _ = _request(router, "GET", "/nope")
        assert status == 404

    def test_emitted_metrics_stay_inside_the_registry(
        self, router, instance
    ):
        _request(router, "POST", "/v1/timeline", _timeline_payload(instance))
        _request(router, "GET", "/v1/search?q=government")
        _request(router, "GET", "/healthz")
        _request(router, "GET", "/metrics")
        snapshot = router.metrics.snapshot()
        emitted = (
            set(snapshot["counters"])
            | set(snapshot["gauges"])
            | set(snapshot["histograms"])
        )
        assert emitted <= (
            set(ROUTER_METRIC_NAMES)
            | set(REPLICA_METRIC_NAMES)
            | set(POOL_METRIC_NAMES)
        )

    def test_metrics_endpoint_renders_router_namespace(self, router):
        _request(router, "GET", "/v1/search?q=government")
        status, _, raw = _request(router, "GET", "/metrics")
        assert status == 200
        text = raw.decode("utf-8")
        assert "wilson_router_requests_total" in text
        assert "wilson_router_shards" in text
