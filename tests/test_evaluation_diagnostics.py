"""Tests for per-date timeline diagnostics."""

import pytest

from repro.evaluation.diagnostics import diagnose_timeline
from repro.tlsdata.types import Timeline
from tests.conftest import d


def _reference():
    return Timeline(
        {
            d("2020-01-01"): ["rebels seized stronghold"],
            d("2020-01-10"): ["ceasefire collapsed near border"],
            d("2020-01-20"): ["talks resumed in the capital"],
        }
    )


def _system():
    return Timeline(
        {
            d("2020-01-01"): ["rebels seized stronghold"],     # exact
            d("2020-01-12"): ["ceasefire collapsed near border"],  # near
            d("2020-02-15"): ["unrelated coverage entirely"],  # spurious
        }
    )


class TestDiagnoseTimeline:
    def test_statuses(self):
        result = diagnose_timeline(_system(), _reference())
        statuses = {
            diag.reference_date: diag.status for diag in result.per_date
        }
        assert statuses[d("2020-01-01")] == "exact"
        assert statuses[d("2020-01-10")] == "near"
        assert statuses[d("2020-01-20")] == "missed"
        assert result.num_exact == 1
        assert result.num_near == 1
        assert result.num_missed == 1

    def test_near_gap_recorded(self):
        result = diagnose_timeline(_system(), _reference())
        near = next(
            diag for diag in result.per_date if diag.status == "near"
        )
        assert near.matched_date == d("2020-01-12")
        assert near.gap_days == 2

    def test_exact_content_score(self):
        result = diagnose_timeline(_system(), _reference())
        exact = next(
            diag for diag in result.per_date if diag.status == "exact"
        )
        assert exact.content_f1 == pytest.approx(1.0)

    def test_missed_scores_zero(self):
        result = diagnose_timeline(_system(), _reference())
        missed = next(
            diag for diag in result.per_date if diag.status == "missed"
        )
        assert missed.content_f1 == 0.0
        assert missed.matched_date is None

    def test_spurious_dates(self):
        result = diagnose_timeline(_system(), _reference())
        assert result.spurious_dates == [d("2020-02-15")]

    def test_tolerance_zero_only_exact(self):
        result = diagnose_timeline(
            _system(), _reference(), tolerance_days=0
        )
        assert result.num_exact == 1
        assert result.num_near == 0
        assert result.num_missed == 2

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            diagnose_timeline(_system(), _reference(), tolerance_days=-1)

    def test_perfect_copy(self):
        reference = _reference()
        result = diagnose_timeline(reference, reference)
        assert result.num_exact == len(reference)
        assert result.spurious_dates == []

    def test_summary_lines(self):
        result = diagnose_timeline(_system(), _reference())
        lines = result.summary_lines()
        assert len(lines) == 4  # 3 reference dates + footer
        assert "exact 1 / near 1 / missed 1 / spurious 1" in lines[-1]
