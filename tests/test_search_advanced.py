"""Tests for the advanced search features: phrases, AND mode,
persistence, positional postings and date histograms."""

import pytest

from repro.search.index import InvertedIndex
from repro.search.query import SearchQuery, execute
from tests.conftest import d


@pytest.fixture()
def index():
    idx = InvertedIndex()
    idx.add("The ceasefire collapsed near the border.",
            d("2020-01-01"), d("2020-01-01"), "a1")
    idx.add("Rebels broke the ceasefire; the sudden collapse of talks followed.",
            d("2020-01-03"), d("2020-01-03"), "a2")
    idx.add("Border patrols reported a collapsed bridge.",
            d("2020-01-05"), d("2020-01-05"), "a3")
    idx.add("Markets rallied on stimulus hopes.",
            d("2020-01-09"), d("2020-01-09"), "a4")
    return idx


class TestPositionalPostings:
    def test_positions_recorded(self, index):
        # "ceasefir collaps border" are the content stems of doc 0.
        assert index.positions("ceasefir", 0) == [0]
        assert index.positions("collaps", 0) == [1]

    def test_positions_missing(self, index):
        assert index.positions("ceasefir", 3) == []
        assert index.positions("zzz", 0) == []

    def test_postings_tf_from_positions(self):
        idx = InvertedIndex()
        idx.add("ceasefire ceasefire ceasefire",
                d("2020-01-01"), d("2020-01-01"))
        assert idx.postings("ceasefir") == {0: 3}

    def test_phrase_match(self, index):
        # Phrase semantics operate on the *content-token* stream
        # (stopwords removed): doc 0 has "ceasefir collaps" consecutive;
        # doc 1 has "sudden" in between.
        assert index.phrase_match(["ceasefir", "collaps"], 0)
        assert not index.phrase_match(["ceasefir", "collaps"], 1)

    def test_phrase_match_empty(self, index):
        assert not index.phrase_match([], 0)


class TestBooleanModes:
    def test_or_mode_default(self, index):
        hits = execute(
            index, SearchQuery(keywords=("ceasefire", "markets"))
        )
        assert len(hits) == 3  # docs 0, 1, 3

    def test_and_mode_restricts(self, index):
        hits = execute(
            index,
            SearchQuery(
                keywords=("ceasefire", "collapsed"), mode="all"
            ),
        )
        # "collapsed"/"collapse" stem together: docs 0 and 1 have both.
        ids = {h.document.doc_id for h in hits}
        assert ids == {0, 1}

    def test_and_mode_no_common_doc(self, index):
        hits = execute(
            index,
            SearchQuery(keywords=("ceasefire", "markets"), mode="all"),
        )
        assert hits == []

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            SearchQuery(keywords=("x",), mode="fuzzy")

    def test_phrase_query(self, index):
        hits = execute(
            index,
            SearchQuery(
                keywords=("ceasefire collapsed",), phrase=True
            ),
        )
        assert [h.document.doc_id for h in hits] == [0]

    def test_phrase_with_window(self, index):
        hits = execute(
            index,
            SearchQuery(
                keywords=("ceasefire collapsed",),
                phrase=True,
                start=d("2020-01-02"),
                end=d("2020-01-31"),
            ),
        )
        assert hits == []


class TestDateHistogram:
    def test_daily_buckets(self, index):
        histogram = index.date_histogram(interval_days=1)
        assert histogram[d("2020-01-01")] == 1
        assert histogram[d("2020-01-09")] == 1
        assert sum(histogram.values()) == 4

    def test_weekly_buckets(self, index):
        histogram = index.date_histogram(interval_days=7)
        # Jan 1-7 bucket holds docs 0-2; Jan 8-14 holds doc 3.
        assert histogram[d("2020-01-01")] == 3
        assert histogram[d("2020-01-08")] == 1

    def test_window_restriction(self, index):
        histogram = index.date_histogram(
            interval_days=1, start=d("2020-01-02"), end=d("2020-01-06")
        )
        assert sum(histogram.values()) == 2

    def test_empty_index(self):
        assert InvertedIndex().date_histogram() == {}

    def test_invalid_interval(self, index):
        with pytest.raises(ValueError):
            index.date_histogram(interval_days=0)


class TestPersistence:
    def test_roundtrip(self, index, tmp_path):
        path = tmp_path / "index.jsonl"
        index.save(path)
        restored = InvertedIndex.load(path)
        assert restored.num_documents == index.num_documents
        assert restored.vocabulary_size() == index.vocabulary_size()
        assert restored.average_length == index.average_length
        for doc_id in range(index.num_documents):
            assert restored.document(doc_id) == index.document(doc_id)

    def test_restored_index_answers_queries(self, index, tmp_path):
        path = tmp_path / "index.jsonl"
        index.save(path)
        restored = InvertedIndex.load(path)
        original = execute(index, SearchQuery(keywords=("ceasefire",)))
        reloaded = execute(
            restored, SearchQuery(keywords=("ceasefire",))
        )
        assert [h.document.text for h in original] == [
            h.document.text for h in reloaded
        ]
        assert [h.score for h in original] == pytest.approx(
            [h.score for h in reloaded]
        )

    def test_restored_index_is_incremental(self, index, tmp_path):
        path = tmp_path / "index.jsonl"
        index.save(path)
        restored = InvertedIndex.load(path)
        restored.add("A fresh ceasefire development.",
                     d("2020-02-01"), d("2020-02-01"))
        hits = execute(restored, SearchQuery(keywords=("ceasefire",)))
        assert len(hits) == 3

    def test_save_creates_parent_dirs(self, index, tmp_path):
        path = tmp_path / "deep" / "nested" / "index.jsonl"
        index.save(path)
        assert path.exists()
