"""Deeper tests of the real-time system's incremental behaviour.

Section 5 claims newly published articles can be folded into the running
system without a rebuild; these tests pin that contract down, including
consistency of BM25 statistics after interleaved ingestion and querying.
"""

import datetime

from repro.search.engine import SearchEngine
from repro.search.query import SearchQuery
from repro.tlsdata.types import Article
from tests.conftest import d


def _article(i: int, day: int, text: str) -> Article:
    return Article(
        article_id=f"inc-{i}",
        publication_date=d("2021-01-01") + datetime.timedelta(days=day),
        text=text,
    )


class TestIncrementalIngestion:
    def test_query_between_ingestions(self):
        engine = SearchEngine()
        engine.add_article(
            _article(0, 0, "The ceasefire collapsed near the border.")
        )
        first = engine.search(SearchQuery(keywords=("ceasefire",)))
        assert len(first) == 1

        engine.add_article(
            _article(1, 3, "A new ceasefire was announced by mediators.")
        )
        second = engine.search(SearchQuery(keywords=("ceasefire",)))
        assert len(second) == 2

    def test_statistics_update_with_ingestion(self):
        engine = SearchEngine()
        engine.add_article(_article(0, 0, "Short note."))
        before = engine.index.average_length
        engine.add_article(
            _article(
                1, 1,
                "A very much longer report containing numerous "
                "additional informative and descriptive words overall.",
            )
        )
        assert engine.index.average_length > before

    def test_idf_shifts_as_term_becomes_common(self):
        """A term's ranking power must fall as it floods the corpus."""
        engine = SearchEngine()
        engine.add_article(
            _article(0, 0, "The ceasefire collapsed near the border.")
        )
        engine.add_article(
            _article(1, 0, "Markets rallied on stimulus hopes.")
        )
        rare_hits = engine.search(SearchQuery(keywords=("ceasefire",)))
        rare_score = rare_hits[0].score
        for i in range(2, 8):
            engine.add_article(
                _article(i, 1, "Another ceasefire statement was issued.")
            )
        common_hits = engine.search(
            SearchQuery(keywords=("ceasefire",))
        )
        best_common = max(h.score for h in common_hits)
        assert best_common < rare_score

    def test_date_window_sees_new_dates(self):
        engine = SearchEngine()
        engine.add_article(
            _article(0, 0, "The ceasefire collapsed near the border.")
        )
        window = SearchQuery(
            keywords=("ceasefire",),
            start=d("2021-01-05"),
            end=d("2021-01-20"),
        )
        assert engine.search(window) == []
        engine.add_article(
            _article(1, 9, "The ceasefire was restored after talks.")
        )
        assert len(engine.search(window)) == 1
