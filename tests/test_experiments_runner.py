"""Tests for the experiment runner and table formatting."""

import pytest

from repro.baselines.oracle import OracleDateSummarizer
from repro.baselines.random_baseline import RandomBaseline
from repro.core.variants import wilson_full
from repro.experiments.datasets import TaggedDataset
from repro.experiments.runner import (
    METRIC_KEYS,
    WilsonMethod,
    evaluate_timeline,
    fit_leave_one_out,
    run_method,
    run_supervised_method,
)
from repro.experiments.tables import format_table
from repro.baselines.regression import RegressionBaseline
from repro.tlsdata.synthetic import SyntheticConfig, SyntheticCorpusGenerator
from repro.tlsdata.types import Dataset


@pytest.fixture(scope="module")
def mini_tagged():
    instances = []
    for seed in (21, 22, 23):
        config = SyntheticConfig(
            topic=f"mini-{seed}",
            theme="disaster",
            seed=seed,
            duration_days=40,
            num_events=8,
            num_major_events=4,
            num_articles=20,
            sentences_per_article=7,
        )
        instances.append(SyntheticCorpusGenerator(config).generate())
    return TaggedDataset(Dataset("mini", instances))


class TestEvaluateTimeline:
    def test_all_keys_present(self, tiny_instance):
        metrics = evaluate_timeline(
            tiny_instance.reference, tiny_instance.reference
        )
        assert set(metrics) == set(METRIC_KEYS)

    def test_perfect_copy_scores_one(self, tiny_instance):
        metrics = evaluate_timeline(
            tiny_instance.reference, tiny_instance.reference
        )
        assert metrics["concat_r1"] == pytest.approx(1.0)
        assert metrics["date_f1"] == pytest.approx(1.0)
        assert metrics["date_coverage"] == pytest.approx(1.0)

    def test_s_star_optional(self, tiny_instance):
        metrics = evaluate_timeline(
            tiny_instance.reference,
            tiny_instance.reference,
            include_s_star=False,
        )
        assert metrics["concat_s*"] == 0.0


class TestRunMethod:
    def test_plain_method(self, mini_tagged):
        result = run_method(RandomBaseline(seed=1), mini_tagged)
        assert result.method_name == "Random"
        assert len(result.per_instance) == 3
        assert 0.0 <= result.mean("concat_r2") <= 1.0
        assert result.mean_seconds >= 0.0

    def test_wilson_adapter(self, mini_tagged):
        method = WilsonMethod(wilson_full(), name="WILSON")
        result = run_method(method, mini_tagged, include_s_star=False)
        assert result.method_name == "WILSON"
        assert result.mean("date_f1") > 0.0

    def test_factory_method(self, mini_tagged):
        result = run_method(
            lambda instance: OracleDateSummarizer(instance.reference),
            mini_tagged,
            method_name="Oracle",
        )
        assert result.method_name == "Oracle"
        assert result.mean("date_f1") > 0.8

    def test_pool_transform_applied(self, mini_tagged):
        calls = []

        def transform(pool, instance):
            calls.append(instance.name)
            return pool[: len(pool) // 2]

        run_method(
            RandomBaseline(seed=1), mini_tagged, pool_transform=transform
        )
        assert len(calls) == 3

    def test_keep_timelines(self, mini_tagged):
        result = run_method(
            RandomBaseline(seed=1), mini_tagged, keep_timelines=True
        )
        assert all(s.timeline is not None for s in result.per_instance)

    def test_scores_list_for_significance(self, mini_tagged):
        result = run_method(RandomBaseline(seed=1), mini_tagged)
        scores = result.scores("concat_r1")
        assert len(scores) == 3

    def test_summary_keys(self, mini_tagged):
        result = run_method(RandomBaseline(seed=1), mini_tagged)
        summary = result.summary()
        assert "seconds" in summary
        for key in METRIC_KEYS:
            assert key in summary


class TestSupervisedRunner:
    def test_leave_one_out_fit(self, mini_tagged):
        method = fit_leave_one_out(RegressionBaseline, mini_tagged, 0)
        assert method.is_fitted

    def test_run_supervised(self, mini_tagged):
        result = run_supervised_method(
            RegressionBaseline, mini_tagged, include_s_star=False
        )
        assert len(result.per_instance) == 3

    def test_unsupervised_method_rejected(self, mini_tagged):
        with pytest.raises(TypeError):
            fit_leave_one_out(
                lambda: RandomBaseline(seed=1), mini_tagged, 0
            )


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        table = format_table(
            ["Model", "R1"], [["WILSON", 0.37], ["TILSE", 0.3452]]
        )
        assert "Model" in table
        assert "WILSON" in table
        assert "0.3700" in table

    def test_title_included(self):
        table = format_table(["A"], [["x"]], title="Table 5")
        assert table.startswith("Table 5")

    def test_alignment_consistent(self):
        table = format_table(["A", "B"], [["x", 1.0], ["longer", 2.0]])
        lines = table.splitlines()
        assert len({len(line) for line in lines}) == 1
