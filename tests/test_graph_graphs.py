"""Tests for the weighted digraph."""

import numpy as np
import pytest

from repro.graph.graphs import WeightedDigraph


class TestConstruction:
    def test_add_node_idempotent(self):
        graph = WeightedDigraph()
        graph.add_node("a")
        graph.add_node("a")
        assert graph.number_of_nodes() == 1

    def test_add_edge_creates_nodes(self):
        graph = WeightedDigraph()
        graph.add_edge("a", "b", 2.0)
        assert "a" in graph and "b" in graph

    def test_add_edge_accumulates(self):
        graph = WeightedDigraph()
        graph.add_edge("a", "b", 2.0)
        graph.add_edge("a", "b", 3.0)
        assert graph.weight("a", "b") == 5.0

    def test_set_edge_replaces(self):
        graph = WeightedDigraph()
        graph.add_edge("a", "b", 2.0)
        graph.set_edge("a", "b", 1.0)
        assert graph.weight("a", "b") == 1.0

    def test_negative_weight_rejected(self):
        graph = WeightedDigraph()
        with pytest.raises(ValueError):
            graph.add_edge("a", "b", -1.0)
        with pytest.raises(ValueError):
            graph.set_edge("a", "b", -1.0)


class TestQueries:
    def _sample(self):
        graph = WeightedDigraph()
        graph.add_edge("a", "b", 1.0)
        graph.add_edge("a", "c", 2.0)
        graph.add_edge("b", "c", 3.0)
        return graph

    def test_missing_edge_weight_zero(self):
        assert self._sample().weight("c", "a") == 0.0

    def test_out_degree(self):
        assert self._sample().out_degree("a") == 3.0
        assert self._sample().out_degree("c") == 0.0

    def test_successors_returns_copy(self):
        graph = self._sample()
        successors = graph.successors("a")
        successors["zzz"] = 99.0
        assert "zzz" not in graph.successors("a")

    def test_edge_iteration(self):
        edges = set(self._sample().edges())
        assert ("a", "b", 1.0) in edges
        assert len(edges) == 3

    def test_counts(self):
        graph = self._sample()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 3
        assert len(graph) == 3


class TestAdjacency:
    def test_matrix_layout(self):
        graph = WeightedDigraph()
        graph.add_edge("a", "b", 2.0)
        matrix, order = graph.to_adjacency()
        i, j = order.index("a"), order.index("b")
        assert matrix[i, j] == 2.0
        assert matrix[j, i] == 0.0

    def test_explicit_order(self):
        graph = WeightedDigraph()
        graph.add_edge("a", "b", 1.0)
        matrix, order = graph.to_adjacency(order=["b", "a"])
        assert order == ["b", "a"]
        assert matrix[1, 0] == 1.0

    def test_empty_graph(self):
        matrix, order = WeightedDigraph().to_adjacency()
        assert matrix.shape == (0, 0)
        assert order == []

    def test_isolated_node_row_zero(self):
        graph = WeightedDigraph()
        graph.add_edge("a", "b", 1.0)
        graph.add_node("c")
        matrix, order = graph.to_adjacency()
        c = order.index("c")
        assert np.all(matrix[c] == 0)
