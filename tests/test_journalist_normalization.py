"""Tests for the journalist panel's per-evaluation component scaling."""

import pytest

from repro.evaluation.journalist import JournalistPanel
from repro.tlsdata.types import Timeline
from tests.conftest import d


def _reference():
    return Timeline(
        {
            d("2020-01-01"): [
                "Rebels seized the stronghold outside the northern city."
            ],
            d("2020-02-01"): [
                "The ceasefire collapsed near the border after artillery."
            ],
        }
    )


def _content_match_wrong_dates():
    """High content fidelity, zero date coverage."""
    return Timeline(
        {
            d("2020-05-05"): [
                "Rebels seized the stronghold outside the northern city."
            ],
            d("2020-06-06"): [
                "The ceasefire collapsed near the border after artillery."
            ],
        }
    )


def _date_match_wrong_content():
    """Perfect dates, unrelated content."""
    return Timeline(
        {
            d("2020-01-01"): ["Completely unrelated market news today."],
            d("2020-02-01"): ["Weather stayed mild across the region."],
        }
    )


class TestComponents:
    def test_component_keys(self):
        panel = JournalistPanel()
        parts = panel.components(_reference(), _reference())
        assert set(parts) == {"content", "coverage", "readability"}
        assert parts["content"] == pytest.approx(1.0)
        assert parts["coverage"] == pytest.approx(1.0)


class TestNormalization:
    def test_scale_mismatch_does_not_drown_content(self):
        """A tiny absolute ROUGE edge must still outrank a coverage edge
        when content carries most of the rubric weight."""
        panel = JournalistPanel(seed=3)
        ranks = panel.rank(
            {
                "content": _content_match_wrong_dates(),
                "dates": _date_match_wrong_content(),
            },
            _reference(),
        )
        assert ranks["content"] == 1

    def test_normalized_scores_bounded(self):
        panel = JournalistPanel()
        scores = panel._normalized_scores(
            {
                "a": _content_match_wrong_dates(),
                "b": _date_match_wrong_content(),
                "c": _reference(),
            },
            _reference(),
        )
        for value in scores.values():
            assert 0.0 <= value <= 1.0

    def test_identical_candidates_tie_at_half(self):
        panel = JournalistPanel()
        scores = panel._normalized_scores(
            {"a": _reference(), "b": _reference()}, _reference()
        )
        assert scores["a"] == pytest.approx(scores["b"])
        assert scores["a"] == pytest.approx(0.5)
