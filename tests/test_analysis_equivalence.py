"""Equivalence guarantees of the perf paths (satellite 3).

The shared analysis cache, the vectorised redundancy check and the
parallel daily summariser are pure optimisations: every one of them must
produce byte-identical timelines to the legacy sequential/uncached code.
"""

import pytest

from repro.core.daily import DailySummarizer
from repro.core.pipeline import Wilson, WilsonConfig
from repro.core.postprocess import assemble_timeline
from repro.text.analysis import TokenCache
from repro.tlsdata.synthetic import SyntheticConfig, SyntheticCorpusGenerator

SEEDS = [3, 11, 29]


def _pool(seed: int):
    config = SyntheticConfig(
        topic=f"equiv-{seed}",
        theme="disaster",
        seed=seed,
        duration_days=45,
        num_events=10,
        num_major_events=5,
        num_articles=30,
        sentences_per_article=8,
        reference_sentences_per_date=2,
    )
    instance = SyntheticCorpusGenerator(config).generate()
    return instance.corpus.dated_sentences()


@pytest.fixture(scope="module", params=SEEDS)
def pool(request):
    return _pool(request.param)


class TestCachedPipelineEquivalence:
    def test_cached_matches_uncached(self, pool):
        baseline = Wilson(
            WilsonConfig(
                num_dates=6,
                analysis_cache=False,
                vectorized_postprocess=False,
            )
        ).summarize(pool)
        optimized = Wilson(WilsonConfig(num_dates=6)).summarize(pool)
        assert optimized == baseline

    def test_repeat_runs_stay_identical(self, pool):
        wilson = Wilson(WilsonConfig(num_dates=6))
        cold = wilson.summarize(pool)
        warm = wilson.summarize(pool)
        assert warm == cold

    def test_query_biased_variant_matches(self, pool):
        query = ("flood", "evacuation")
        baseline = Wilson(
            WilsonConfig(
                num_dates=5,
                edge_weight="W4",
                query_bias=0.3,
                analysis_cache=False,
                vectorized_postprocess=False,
            )
        ).summarize(pool, query=query)
        optimized = Wilson(
            WilsonConfig(num_dates=5, edge_weight="W4", query_bias=0.3)
        ).summarize(pool, query=query)
        assert optimized == baseline


class TestVectorizedPostprocessEquivalence:
    # RankedDay consumption is stateful (pop() advances a cursor), so
    # each assemble_timeline call gets freshly ranked days.

    @staticmethod
    def _days(pool):
        return DailySummarizer().rank_days(
            pool, sorted({s.date for s in pool})
        )

    def test_vectorized_matches_legacy(self, pool):
        legacy = assemble_timeline(self._days(pool), 2, vectorized=False)
        vectorized = assemble_timeline(
            self._days(pool), 2, vectorized=True
        )
        assert vectorized == legacy

    def test_vectorized_matches_legacy_with_cache(self, pool):
        legacy = assemble_timeline(self._days(pool), 3, vectorized=False)
        vectorized = assemble_timeline(
            self._days(pool), 3, vectorized=True, cache=TokenCache()
        )
        assert vectorized == legacy


class TestParallelDailyEquivalence:
    def test_workers_match_sequential(self, pool):
        dates = sorted({s.date for s in pool})
        cache = TokenCache()
        sequential = DailySummarizer(cache=cache).rank_days(pool, dates)
        parallel = DailySummarizer(workers=4, cache=cache).rank_days(
            pool, dates
        )
        assert [day.date for day in parallel] == [
            day.date for day in sequential
        ]
        assert [day.sentences for day in parallel] == [
            day.sentences for day in sequential
        ]

    def test_parallel_pipeline_matches_sequential(self, pool):
        sequential = Wilson(WilsonConfig(num_dates=6)).summarize(pool)
        parallel = Wilson(
            WilsonConfig(num_dates=6, daily_workers=4)
        ).summarize(pool)
        assert parallel == sequential
