"""Shared fixtures: small deterministic corpora and dated sentences."""

from __future__ import annotations

import datetime
import time

import pytest

from repro.tlsdata.synthetic import SyntheticConfig, SyntheticCorpusGenerator
from repro.tlsdata.types import Article, Corpus, DatedSentence, Timeline


def d(iso: str) -> datetime.date:
    """Shorthand: parse an ISO date string."""
    return datetime.date.fromisoformat(iso)


def wait_until(
    predicate,
    timeout_seconds: float = 10.0,
    interval_seconds: float = 0.02,
    message: str = "condition",
):
    """Poll *predicate* until truthy; fail the test past the deadline.

    The flake-resistant replacement for fixed ``time.sleep`` waits in
    the subprocess/serving tests: waits exactly as long as the condition
    needs (fast machines stay fast) while granting slow CI runners the
    full deadline. Returns the predicate's final truthy value so
    callers can keep the polled observation.
    """
    deadline = time.monotonic() + timeout_seconds
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            pytest.fail(
                f"timed out after {timeout_seconds:g}s waiting for "
                f"{message}"
            )
        time.sleep(interval_seconds)


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the end-to-end fixtures under tests/golden/ with "
             "the pipeline's current output instead of diffing against "
             "them",
    )


@pytest.fixture()
def update_golden(request):
    """True when the run should rewrite golden fixtures, not diff them."""
    return request.config.getoption("--update-golden")


#: The two end-to-end golden corpora (tests/golden/): small, fully
#: deterministic synthetic instances used by both the golden regression
#: test and the runtime equivalence suite. Changing a config invalidates
#: the checked-in fixtures -- rerun with ``--update-golden``.
GOLDEN_CONFIGS = {
    "flood-relief": SyntheticConfig(
        topic="flood-relief",
        theme="disaster",
        seed=101,
        duration_days=45,
        num_events=9,
        num_major_events=5,
        num_articles=24,
        sentences_per_article=6,
        reference_sentences_per_date=2,
    ),
    "border-truce": SyntheticConfig(
        topic="border-truce",
        theme="conflict",
        seed=202,
        duration_days=50,
        num_events=10,
        num_major_events=5,
        num_articles=22,
        sentences_per_article=6,
        reference_sentences_per_date=2,
    ),
}


@pytest.fixture(scope="session")
def golden_instances():
    """The golden corpora as generated instances, keyed by name."""
    return {
        name: SyntheticCorpusGenerator(config).generate()
        for name, config in GOLDEN_CONFIGS.items()
    }


@pytest.fixture(scope="session")
def tiny_instance():
    """A very small but structurally complete synthetic instance."""
    config = SyntheticConfig(
        topic="tiny",
        theme="conflict",
        seed=7,
        duration_days=60,
        num_events=12,
        num_major_events=6,
        num_articles=40,
        sentences_per_article=10,
        reference_sentences_per_date=2,
    )
    return SyntheticCorpusGenerator(config).generate()


@pytest.fixture(scope="session")
def tiny_pool(tiny_instance):
    """Tagged dated sentences of the tiny instance."""
    return tiny_instance.corpus.dated_sentences()


@pytest.fixture()
def handmade_dated_sentences():
    """A hand-written pool with known reference structure.

    Articles on 3 publication days; day 1 is referenced by days 2 and 3,
    day 2 is referenced by day 3 -- so PageRank on the reference graph
    should rank day 1 highest.
    """
    day1, day2, day3 = d("2020-03-01"), d("2020-03-05"), d("2020-03-09")
    pool = [
        DatedSentence(day1, "The ceasefire collapsed near the border.", day1, "a1"),
        DatedSentence(day1, "Artillery fire struck the garrison at dawn.", day1, "a1"),
        DatedSentence(day2, "Rebels seized the stronghold outside the city.", day2, "a2"),
        DatedSentence(day1, "The attack followed the ceasefire collapse on March 1.",
                      day2, "a2", is_reference=True),
        DatedSentence(day3, "A truce was signed after lengthy talks.", day3, "a3"),
        DatedSentence(day1, "Fighting began when the ceasefire collapsed on March 1.",
                      day3, "a3", is_reference=True),
        DatedSentence(day2, "The stronghold fell to rebels on March 5.",
                      day3, "a3", is_reference=True),
    ]
    return pool


@pytest.fixture()
def simple_timeline():
    """A three-date reference timeline."""
    return Timeline(
        {
            d("2020-03-01"): ["The ceasefire collapsed near the border."],
            d("2020-03-05"): ["Rebels seized the stronghold."],
            d("2020-03-09"): ["A truce was signed after talks."],
        }
    )


@pytest.fixture()
def small_corpus():
    """A two-article corpus with explicit dates in the text."""
    return Corpus(
        topic="border-conflict",
        query=("ceasefire", "rebels"),
        start=d("2020-03-01"),
        end=d("2020-03-10"),
        articles=[
            Article(
                article_id="a1",
                publication_date=d("2020-03-02"),
                title="Ceasefire collapses",
                text=(
                    "The ceasefire collapsed near the border yesterday. "
                    "Artillery fire struck the garrison. "
                    "Officials said talks would resume on March 9."
                ),
            ),
            Article(
                article_id="a2",
                publication_date=d("2020-03-06"),
                title="Rebels advance",
                text=(
                    "Rebels seized the stronghold outside the city. "
                    "The advance follows the ceasefire collapse on "
                    "March 1, 2020."
                ),
            ),
        ],
    )
