"""The ingest plane: the write path of a live WILSON serving system.

:class:`IngestPlane` attaches to a :class:`~repro.search.realtime.
RealTimeTimelineSystem` and turns its read-only engine into a live one:

* the engine's index is wrapped in a :class:`~repro.ingest.live.
  LiveIndex` overlay (idempotent -- attaching twice is a no-op);
* HTTP handlers :meth:`submit` article batches into the bounded
  :class:`~repro.ingest.queue.IngestQueue` (``False`` -> 429, the only
  admission decision);
* one :class:`~repro.ingest.writer.SegmentWriter` thread drains the
  queue and calls the seal path: expand articles exactly as
  ``SearchEngine.add_article`` would, build a mini index, optionally
  persist a ``wilson.segment/v1`` file, append the sealed segment to
  the overlay (bumping ``index_version`` by its document count), then
  notify seal listeners with the segment's touched dates -- the hook
  serving layers use for precise result-cache invalidation;
* a :class:`~repro.ingest.compactor.Compactor` folds segments back
  into a fresh base off the hot path, automatically once
  ``auto_compact_docs`` pending documents accumulate.

Every instrument lives in the ``ingest.*`` registry pinned below and
documented in ``docs/observability.md`` (drift-tested by
``tests/test_docs_observability.py``).
"""

from __future__ import annotations

import pathlib
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from repro.ingest.compactor import CompactionReport, Compactor
from repro.ingest.live import LiveIndex
from repro.ingest.queue import IngestQueue
from repro.ingest.segment import (
    Segment,
    build_segment,
    list_segments,
    load_segment,
    write_segment,
)
from repro.ingest.writer import SegmentWriter
from repro.obs.metrics import Metrics
from repro.tlsdata.types import Article

PathLike = Union[str, pathlib.Path]

#: Counters the ingest plane may increment.
INGEST_COUNTERS = (
    "ingest.articles_accepted",
    "ingest.articles_rejected",
    "ingest.documents_indexed",
    "ingest.segments_sealed",
    "ingest.segments_recovered",
    "ingest.seal_errors",
    "ingest.compactions",
    "ingest.invalidated_days",
)

#: Gauges describing the live overlay's current shape.
INGEST_GAUGES = (
    "ingest.queue_depth",
    "ingest.live_segments",
    "ingest.pending_documents",
    "ingest.pending_compaction_bytes",
    "ingest.index_version",
)

#: Timing/size distributions of the write path.
INGEST_HISTOGRAMS = (
    "ingest.seal_seconds",
    "ingest.seal_documents",
    "ingest.compaction_seconds",
)

INGEST_METRIC_NAMES = INGEST_COUNTERS + INGEST_GAUGES + INGEST_HISTOGRAMS

#: A seal listener: ``(segment, new_index_version) -> None``.
SealListener = Callable[[Segment, int], None]


@dataclass(frozen=True)
class IngestConfig:
    """Tunables of the ingest plane.

    ``queue_articles`` bounds admission (beyond it, :meth:`IngestPlane.
    submit` rejects -> 429). ``batch_articles`` / ``batch_age_ms``
    bound a seal batch by size and staleness: a lone document becomes
    queryable within roughly one batch age. ``segments_dir`` persists
    sealed segments (and recovers them on attach); ``None`` keeps
    segments memory-only. ``auto_compact_docs`` folds segments into a
    fresh base once that many pending documents accumulate (``None``
    disables automatic compaction).
    """

    queue_articles: int = 1024
    batch_articles: int = 64
    batch_age_ms: float = 50.0
    segments_dir: Optional[PathLike] = None
    auto_compact_docs: Optional[int] = None

    def __post_init__(self) -> None:
        if self.queue_articles < 1:
            raise ValueError(
                f"queue_articles must be >= 1, got {self.queue_articles}"
            )
        if self.batch_articles < 1:
            raise ValueError(
                f"batch_articles must be >= 1, got {self.batch_articles}"
            )
        if self.batch_age_ms <= 0:
            raise ValueError(
                f"batch_age_ms must be > 0, got {self.batch_age_ms}"
            )
        if self.auto_compact_docs is not None and self.auto_compact_docs < 1:
            raise ValueError(
                "auto_compact_docs must be >= 1 or None, "
                f"got {self.auto_compact_docs}"
            )


class IngestPlane:
    """Streaming write path over a real-time timeline system."""

    def __init__(
        self,
        system,
        config: Optional[IngestConfig] = None,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self.system = system
        self.config = config or IngestConfig()
        self.metrics = metrics if metrics is not None else Metrics()
        engine = system.engine
        if not isinstance(engine.index, LiveIndex):
            engine.index = LiveIndex(engine.index, cache=engine.cache)
        self.live: LiveIndex = engine.index
        self.queue = IngestQueue(self.config.queue_articles)
        self.writer = SegmentWriter(self)
        self.compactor = Compactor(self.live)
        self._seal_lock = threading.Lock()
        self._seq = 0
        self._listeners: List[SealListener] = []
        self._segments_dir: Optional[pathlib.Path] = (
            pathlib.Path(self.config.segments_dir)
            if self.config.segments_dir is not None
            else None
        )
        if self._segments_dir is not None:
            self._segments_dir.mkdir(parents=True, exist_ok=True)
            self._recover_segments()
        # Expose the plane so RealTimeTimelineSystem.ingest routes here
        # (LiveIndex rejects direct writes).
        system.ingest_plane = self
        self.refresh_gauges()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Start the background writer thread (idempotent)."""
        self.writer.start()

    def stop(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop the writer; with *drain*, seal everything still queued."""
        self.writer.stop(drain=drain, timeout=timeout)
        self.refresh_gauges()

    def _recover_segments(self) -> None:
        """Re-overlay segments persisted by an earlier incarnation."""
        engine = self.system.engine
        for path in list_segments(self._segments_dir):
            segment = load_segment(path, cache=engine.cache)
            if segment.documents:
                self.live.append_segment(segment)
                engine._num_articles += segment.articles
                self.metrics.counter("ingest.segments_recovered").inc()
            self._seq = max(self._seq, segment.seq + 1)

    # -- listeners ----------------------------------------------------------

    def add_seal_listener(self, listener: SealListener) -> None:
        """Call *listener(segment, version)* after every seal."""
        self._listeners.append(listener)

    # -- write path ---------------------------------------------------------

    def submit(self, articles: Sequence[Article]) -> bool:
        """Enqueue a batch for asynchronous sealing; ``False`` on pressure.

        The admission decision of ``POST /v1/ingest``: rejection is
        all-or-nothing and the caller maps it to 429.
        """
        articles = list(articles)
        accepted = self.queue.offer(articles)
        if accepted:
            self.metrics.counter("ingest.articles_accepted").inc(
                len(articles)
            )
        else:
            self.metrics.counter("ingest.articles_rejected").inc(
                len(articles)
            )
        self.metrics.gauge("ingest.queue_depth").set(self.queue.depth)
        return accepted

    def ingest(self, articles: Sequence[Article]) -> int:
        """Synchronously seal *articles*; returns documents indexed.

        The library path (``RealTimeTimelineSystem.ingest``): bypasses
        the queue, returns once the batch is queryable.
        """
        articles = list(articles)
        if not articles:
            return 0
        self.metrics.counter("ingest.articles_accepted").inc(
            len(articles)
        )
        segment = self._seal_batch(articles)
        return segment.documents if segment is not None else 0

    def flush(self, timeout: float = 10.0) -> bool:
        """Wait until every queued article has been sealed."""
        flushed = self.writer.flush(timeout=timeout)
        self.refresh_gauges()
        return flushed

    def _seal_batch(self, articles: Sequence[Article]) -> Optional[Segment]:
        engine = self.system.engine
        with self._seal_lock:
            started = time.perf_counter()
            segment = build_segment(
                self._seq, articles, engine.tagger, cache=engine.cache
            )
            if not segment.documents:
                # Articles with no sentences still count as ingested
                # articles -- exactly what add_article does cold.
                engine._num_articles += segment.articles
                return None
            self._seq += 1
            if self._segments_dir is not None:
                segment = write_segment(
                    segment,
                    self._segments_dir / f"segment-{segment.seq:06d}.seg",
                )
            version = self.live.append_segment(segment)
            engine._num_articles += segment.articles
            elapsed = time.perf_counter() - started
            metrics = self.metrics
            metrics.counter("ingest.segments_sealed").inc()
            metrics.counter("ingest.documents_indexed").inc(
                segment.documents
            )
            metrics.counter("ingest.invalidated_days").inc(
                len(segment.touched_dates)
            )
            metrics.histogram("ingest.seal_seconds").observe(elapsed)
            metrics.histogram("ingest.seal_documents").observe(
                segment.documents
            )
            self.refresh_gauges()
        for listener in self._listeners:
            listener(segment, version)
        auto = self.config.auto_compact_docs
        if auto is not None and self.live.pending_documents >= auto:
            self.compact()
        return segment

    def _record_seal_error(self, articles: int) -> None:
        self.metrics.counter("ingest.seal_errors").inc()
        self.metrics.counter("ingest.articles_rejected").inc(articles)

    # -- compaction ---------------------------------------------------------

    def compact(
        self,
        snapshot_path: Optional[PathLike] = None,
        snapshot_format: str = "v2",
    ) -> CompactionReport:
        """Fold sealed segments into a fresh base (off the hot path)."""
        report = self.compactor.compact(
            snapshot_path=snapshot_path, snapshot_format=snapshot_format
        )
        self.metrics.counter("ingest.compactions").inc()
        self.metrics.histogram("ingest.compaction_seconds").observe(
            report.seconds
        )
        self.refresh_gauges()
        return report

    # -- introspection ------------------------------------------------------

    def refresh_gauges(self) -> None:
        metrics = self.metrics
        live = self.live
        metrics.gauge("ingest.queue_depth").set(self.queue.depth)
        metrics.gauge("ingest.live_segments").set(live.segment_count)
        metrics.gauge("ingest.pending_documents").set(
            live.pending_documents
        )
        metrics.gauge("ingest.pending_compaction_bytes").set(
            live.pending_bytes
        )
        metrics.gauge("ingest.index_version").set(live.index_version)

    def stats(self) -> dict:
        """The live-state summary served by ``/v1/ingest`` responses."""
        live = self.live
        return {
            "queue_depth": self.queue.depth,
            "segments": live.segment_count,
            "pending_documents": live.pending_documents,
            "pending_compaction_bytes": live.pending_bytes,
            "index_version": live.index_version,
        }
