"""The ingest plane: the write path of a live WILSON serving system.

:class:`IngestPlane` attaches to a :class:`~repro.search.realtime.
RealTimeTimelineSystem` and turns its read-only engine into a live one:

* the engine's index is wrapped in a :class:`~repro.ingest.live.
  LiveIndex` overlay (idempotent -- attaching twice is a no-op);
* HTTP handlers :meth:`submit` article batches into the bounded
  :class:`~repro.ingest.queue.IngestQueue` (``False`` -> 429, the only
  admission decision);
* one :class:`~repro.ingest.writer.SegmentWriter` thread drains the
  queue and calls the seal path: drop already-indexed article ids
  (ingest is idempotent -- a retried batch never duplicates documents
  or skews BM25 statistics), expand the rest exactly as
  ``SearchEngine.add_article`` would, build a mini index, optionally
  persist a ``wilson.segment/v1`` file, append the sealed segment to
  the overlay (bumping ``index_version`` by its document count), then
  notify seal listeners with the segment's touched dates -- the hook
  serving layers use for precise result-cache invalidation;
* a :class:`~repro.ingest.compactor.Compactor` folds segments back
  into a fresh base off the hot path, automatically once
  ``auto_compact_docs`` pending documents accumulate. With a segments
  directory the fold is durable: the recovery snapshot
  (``compacted.snapshot``) is written before any folded segment file
  is unlinked, and :meth:`IngestPlane._recover_segments` prefers it
  over a stale boot base.

Every instrument lives in the ``ingest.*`` registry pinned below and
documented in ``docs/observability.md`` (drift-tested by
``tests/test_docs_observability.py``).
"""

from __future__ import annotations

import pathlib
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from repro.ingest.compactor import CompactionReport, Compactor
from repro.ingest.live import LiveIndex
from repro.ingest.queue import IngestQueue
from repro.ingest.segment import (
    Segment,
    build_segment,
    list_segments,
    load_segment,
    write_segment,
)
from repro.ingest.writer import SegmentWriter
from repro.obs.metrics import Metrics
from repro.tlsdata.types import Article

PathLike = Union[str, pathlib.Path]

#: Counters the ingest plane may increment.
INGEST_COUNTERS = (
    "ingest.articles_accepted",
    "ingest.articles_rejected",
    "ingest.articles_deduplicated",
    "ingest.documents_indexed",
    "ingest.segments_sealed",
    "ingest.segments_recovered",
    "ingest.seal_errors",
    "ingest.compactions",
    "ingest.invalidated_days",
)

#: The durable recovery snapshot a compaction leaves in the segments
#: directory: a restarted plane boots its base from it (instead of the
#: possibly stale snapshot the engine was constructed with), because
#: the segment files it covers were unlinked when it was written.
COMPACTED_SNAPSHOT_NAME = "compacted.snapshot"

#: Gauges describing the live overlay's current shape.
INGEST_GAUGES = (
    "ingest.queue_depth",
    "ingest.live_segments",
    "ingest.pending_documents",
    "ingest.pending_compaction_bytes",
    "ingest.index_version",
)

#: Timing/size distributions of the write path.
INGEST_HISTOGRAMS = (
    "ingest.seal_seconds",
    "ingest.seal_documents",
    "ingest.compaction_seconds",
)

INGEST_METRIC_NAMES = INGEST_COUNTERS + INGEST_GAUGES + INGEST_HISTOGRAMS

#: A seal listener: ``(segment, new_index_version) -> None``.
SealListener = Callable[[Segment, int], None]


@dataclass(frozen=True)
class IngestConfig:
    """Tunables of the ingest plane.

    ``queue_articles`` bounds admission (beyond it, :meth:`IngestPlane.
    submit` rejects -> 429). ``batch_articles`` / ``batch_age_ms``
    bound a seal batch by size and staleness: a lone document becomes
    queryable within roughly one batch age. ``segments_dir`` persists
    sealed segments (and recovers them on attach); ``None`` keeps
    segments memory-only. ``auto_compact_docs`` folds segments into a
    fresh base once that many pending documents accumulate (``None``
    disables automatic compaction).
    """

    queue_articles: int = 1024
    batch_articles: int = 64
    batch_age_ms: float = 50.0
    segments_dir: Optional[PathLike] = None
    auto_compact_docs: Optional[int] = None

    def __post_init__(self) -> None:
        if self.queue_articles < 1:
            raise ValueError(
                f"queue_articles must be >= 1, got {self.queue_articles}"
            )
        if self.batch_articles < 1:
            raise ValueError(
                f"batch_articles must be >= 1, got {self.batch_articles}"
            )
        if self.batch_age_ms <= 0:
            raise ValueError(
                f"batch_age_ms must be > 0, got {self.batch_age_ms}"
            )
        if self.auto_compact_docs is not None and self.auto_compact_docs < 1:
            raise ValueError(
                "auto_compact_docs must be >= 1 or None, "
                f"got {self.auto_compact_docs}"
            )


class IngestPlane:
    """Streaming write path over a real-time timeline system."""

    def __init__(
        self,
        system,
        config: Optional[IngestConfig] = None,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self.system = system
        self.config = config or IngestConfig()
        self.metrics = metrics if metrics is not None else Metrics()
        engine = system.engine
        if not isinstance(engine.index, LiveIndex):
            engine.index = LiveIndex(engine.index, cache=engine.cache)
        self.live: LiveIndex = engine.index
        self.queue = IngestQueue(self.config.queue_articles)
        self.writer = SegmentWriter(self)
        self._seal_lock = threading.Lock()
        self._seq = 0
        self._listeners: List[SealListener] = []
        #: Article ids already present in the live view, the dedup set
        #: making ingest idempotent. Built lazily on first seal (under
        #: the seal lock) so attaching to a large mmap snapshot stays
        #: O(1); ``None`` until then.
        self._seen_article_ids: Optional[set] = None
        self._segments_dir: Optional[pathlib.Path] = (
            pathlib.Path(self.config.segments_dir)
            if self.config.segments_dir is not None
            else None
        )
        if self._segments_dir is not None:
            self._segments_dir.mkdir(parents=True, exist_ok=True)
            # May replace self.live's base with the durable compacted
            # snapshot, so the compactor is constructed afterwards.
            self._recover_segments()
        self.compactor = Compactor(self.live)
        # Expose the plane so RealTimeTimelineSystem.ingest routes here
        # (LiveIndex rejects direct writes).
        system.ingest_plane = self
        self.refresh_gauges()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Start the background writer thread (idempotent)."""
        self.writer.start()

    def stop(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop the writer; with *drain*, seal everything still queued."""
        self.writer.stop(drain=drain, timeout=timeout)
        self.refresh_gauges()

    def _recover_segments(self) -> None:
        """Restore the durable live state of an earlier incarnation.

        Two sources, in order: the compacted recovery snapshot, when a
        compaction left one (its documents' segment files were unlinked
        when it was written, so it *must* replace a stale boot base --
        skipped only when the engine already booted from something at
        least as new), then every remaining segment file, re-overlaid
        on top. Together they reconstruct every acknowledged persisted
        write across any crash point.
        """
        engine = self.system.engine
        compacted = self._segments_dir / COMPACTED_SNAPSHOT_NAME
        if compacted.is_file():
            from repro.search.engine import _distinct_articles
            from repro.search.snapshot import load_snapshot

            restored = load_snapshot(compacted, cache=engine.cache)
            base = self.live.base
            if (
                restored.num_documents >= base.num_documents
                and restored.index_version >= base.index_version
            ):
                self.live = LiveIndex(restored, cache=engine.cache)
                engine.index = self.live
                engine._num_articles = _distinct_articles(restored)
        for path in list_segments(self._segments_dir):
            segment = load_segment(path, cache=engine.cache)
            if segment.documents:
                self.live.append_segment(segment)
                engine._num_articles += segment.articles
                self.metrics.counter("ingest.segments_recovered").inc()
            self._seq = max(self._seq, segment.seq + 1)

    # -- listeners ----------------------------------------------------------

    def add_seal_listener(self, listener: SealListener) -> None:
        """Call *listener(segment, version)* after every seal."""
        self._listeners.append(listener)

    # -- write path ---------------------------------------------------------

    def submit(self, articles: Sequence[Article]) -> bool:
        """Enqueue a batch for asynchronous sealing; ``False`` on pressure.

        The admission decision of ``POST /v1/ingest``: rejection is
        all-or-nothing and the caller maps it to 429.
        """
        articles = list(articles)
        accepted = self.queue.offer(articles)
        if accepted:
            self.metrics.counter("ingest.articles_accepted").inc(
                len(articles)
            )
        else:
            self.metrics.counter("ingest.articles_rejected").inc(
                len(articles)
            )
        self.metrics.gauge("ingest.queue_depth").set(self.queue.depth)
        return accepted

    def ingest(self, articles: Sequence[Article]) -> int:
        """Synchronously seal *articles*; returns documents indexed.

        The library path (``RealTimeTimelineSystem.ingest``): bypasses
        the queue, returns once the batch is queryable.
        """
        articles = list(articles)
        if not articles:
            return 0
        self.metrics.counter("ingest.articles_accepted").inc(
            len(articles)
        )
        segment = self._seal_batch(articles)
        return segment.documents if segment is not None else 0

    def flush(self, timeout: float = 10.0) -> bool:
        """Wait until every queued article has been sealed."""
        flushed = self.writer.flush(timeout=timeout)
        self.refresh_gauges()
        return flushed

    def _known_article_ids(self) -> set:
        """The dedup set, built lazily (caller holds the seal lock).

        Seeded by one scan of the live view -- base, recovered and
        sealed segments alike -- then maintained incrementally by every
        seal. The scan runs once, on the first seal, off the boot path.
        """
        if self._seen_article_ids is None:
            live = self.live
            self._seen_article_ids = {
                aid
                for aid in (
                    live.document(doc_id).article_id
                    for doc_id in range(live.num_documents)
                )
                if aid
            }
        return self._seen_article_ids

    def _seal_batch(self, articles: Sequence[Article]) -> Optional[Segment]:
        engine = self.system.engine
        with self._seal_lock:
            started = time.perf_counter()
            # Idempotency: an article id already indexed (or repeated
            # within the batch) is dropped, so re-submitting a batch --
            # a client retrying a router 429, a replica receiving a
            # write a sibling already applied -- never duplicates
            # documents or skews BM25 statistics. Articles without an
            # id have no identity and are never deduplicated.
            seen = self._known_article_ids()
            fresh: List[Article] = []
            batch_ids: set = set()
            for article in articles:
                aid = article.article_id
                if aid and (aid in seen or aid in batch_ids):
                    continue
                if aid:
                    batch_ids.add(aid)
                fresh.append(article)
            duplicates = len(articles) - len(fresh)
            if duplicates:
                self.metrics.counter(
                    "ingest.articles_deduplicated"
                ).inc(duplicates)
            if not fresh:
                return None
            segment = build_segment(
                self._seq, fresh, engine.tagger, cache=engine.cache
            )
            seen.update(batch_ids)
            if not segment.documents:
                # Articles with no sentences still count as ingested
                # articles -- exactly what add_article does cold.
                engine._num_articles += segment.articles
                return None
            self._seq += 1
            if self._segments_dir is not None:
                segment = write_segment(
                    segment,
                    self._segments_dir / f"segment-{segment.seq:06d}.seg",
                )
            version = self.live.append_segment(segment)
            engine._num_articles += segment.articles
            elapsed = time.perf_counter() - started
            metrics = self.metrics
            metrics.counter("ingest.segments_sealed").inc()
            metrics.counter("ingest.documents_indexed").inc(
                segment.documents
            )
            metrics.counter("ingest.invalidated_days").inc(
                len(segment.touched_dates)
            )
            metrics.histogram("ingest.seal_seconds").observe(elapsed)
            metrics.histogram("ingest.seal_documents").observe(
                segment.documents
            )
            self.refresh_gauges()
        for listener in self._listeners:
            listener(segment, version)
        auto = self.config.auto_compact_docs
        if auto is not None and self.live.pending_documents >= auto:
            self.compact()
        return segment

    def _record_seal_error(self, articles: int) -> None:
        self.metrics.counter("ingest.seal_errors").inc()
        self.metrics.counter("ingest.articles_rejected").inc(articles)

    # -- compaction ---------------------------------------------------------

    def compact(
        self,
        snapshot_path: Optional[PathLike] = None,
        snapshot_format: str = "v2",
    ) -> CompactionReport:
        """Fold sealed segments into a fresh base (off the hot path).

        With a segments directory, every compaction -- automatic or
        explicit -- writes the durable recovery snapshot
        (``compacted.snapshot`` next to the segment files) *before* the
        folded segment files are unlinked: a restart recovers from that
        snapshot plus the remaining segments, so acknowledged persisted
        writes survive any crash point. An explicit *snapshot_path*
        additionally receives a copy of it (identical bytes -- snapshot
        writing is deterministic).
        """
        recovery: Optional[pathlib.Path] = None
        target = snapshot_path
        if self._segments_dir is not None:
            recovery = self._segments_dir / COMPACTED_SNAPSHOT_NAME
            target = recovery
        report = self.compactor.compact(
            snapshot_path=target, snapshot_format=snapshot_format
        )
        if recovery is not None and snapshot_path is not None:
            import dataclasses
            import shutil

            shutil.copyfile(recovery, snapshot_path)
            report = dataclasses.replace(
                report, snapshot_path=pathlib.Path(snapshot_path)
            )
        self.metrics.counter("ingest.compactions").inc()
        self.metrics.histogram("ingest.compaction_seconds").observe(
            report.seconds
        )
        self.refresh_gauges()
        return report

    # -- introspection ------------------------------------------------------

    def refresh_gauges(self) -> None:
        metrics = self.metrics
        live = self.live
        metrics.gauge("ingest.queue_depth").set(self.queue.depth)
        metrics.gauge("ingest.live_segments").set(live.segment_count)
        metrics.gauge("ingest.pending_documents").set(
            live.pending_documents
        )
        metrics.gauge("ingest.pending_compaction_bytes").set(
            live.pending_bytes
        )
        metrics.gauge("ingest.index_version").set(live.index_version)

    def stats(self) -> dict:
        """The live-state summary served by ``/v1/ingest`` responses."""
        live = self.live
        return {
            "queue_depth": self.queue.depth,
            "segments": live.segment_count,
            "pending_documents": live.pending_documents,
            "pending_compaction_bytes": live.pending_bytes,
            "index_version": live.index_version,
        }
