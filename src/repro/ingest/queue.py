"""Bounded, thread-safe admission queue for streamed articles.

The front door of the ingest plane: HTTP handlers :meth:`~IngestQueue.
offer` article batches without blocking (all-or-nothing, ``False`` when
the bound would be exceeded -- the serve layer turns that into a 429),
and the :class:`~repro.ingest.writer.SegmentWriter` thread
:meth:`~IngestQueue.drain`\\ s them into seal batches. Backpressure is
by *article count*: the queue bound is the only admission decision, so
an overloaded plane sheds load at the door instead of growing an
unbounded seal backlog.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence

from repro.tlsdata.types import Article


class IngestQueue:
    """A bounded FIFO of pending articles with blocking drain."""

    def __init__(self, max_articles: int = 1024) -> None:
        if max_articles < 1:
            raise ValueError(
                f"max_articles must be >= 1, got {max_articles}"
            )
        self.max_articles = max_articles
        self._items: List[Article] = []
        self._condition = threading.Condition()
        self._closed = False
        self._inflight = 0

    def offer(self, articles: Sequence[Article]) -> bool:
        """Enqueue *articles* atomically; ``False`` on pressure/closed.

        All-or-nothing: a batch that would exceed the bound is rejected
        whole, so a client retry never half-applies.
        """
        articles = list(articles)
        with self._condition:
            if self._closed:
                return False
            if len(self._items) + len(articles) > self.max_articles:
                return False
            self._items.extend(articles)
            self._condition.notify_all()
            return True

    def drain(
        self, max_articles: int, timeout: Optional[float] = None
    ) -> List[Article]:
        """Dequeue up to *max_articles*, waiting up to *timeout* seconds.

        Returns immediately with whatever is queued when non-empty;
        blocks (bounded by *timeout*) when empty. An empty return means
        the wait timed out or the queue closed.

        A non-empty batch is *leased*, not forgotten: the in-flight
        count rises inside the same critical section that dequeues, so
        :meth:`wait_idle` can never observe the window between a drain
        returning and the drained batch being sealed. The drainer must
        call :meth:`task_done` once the batch is fully processed.
        """
        with self._condition:
            if not self._items and not self._closed:
                self._condition.wait(timeout)
            batch = self._items[:max_articles]
            del self._items[: len(batch)]
            if batch:
                self._inflight += 1
            if not self._items:
                self._condition.notify_all()
            return batch

    def task_done(self) -> None:
        """Mark one drained batch as fully processed (sealed)."""
        with self._condition:
            if self._inflight > 0:
                self._inflight -= 1
            if not self._items and not self._inflight:
                self._condition.notify_all()

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no article is queued *or leased*; ``True`` if idle.

        The flush primitive: covers both articles still in the queue
        and batches drained but not yet sealed, with no polling gap.
        """
        with self._condition:
            return self._condition.wait_for(
                lambda: not self._items and not self._inflight,
                timeout,
            )

    def close(self) -> None:
        """Reject future offers and wake any waiting drainer."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    @property
    def closed(self) -> bool:
        with self._condition:
            return self._closed

    @property
    def inflight(self) -> int:
        """Drained-but-unsealed batch count (see :meth:`task_done`)."""
        with self._condition:
            return self._inflight

    @property
    def depth(self) -> int:
        """Queued article count (the ``ingest.queue_depth`` gauge)."""
        with self._condition:
            return len(self._items)

    def __len__(self) -> int:
        return self.depth
