"""The live read overlay: base snapshot + sealed delta segments.

:class:`LiveIndex` presents the full :class:`~repro.search.index.
InvertedIndex` read API over a *base* index (classic, or a zero-copy
:class:`~repro.search.mapped.MappedSnapshotIndex`) plus an ordered
tuple of sealed :class:`~repro.ingest.segment.Segment`\\ s, merging
postings, document-frequency and length statistics at query time. BM25
statistics are additive integers (see ``InvertedIndex.total_length``),
so the merged view scores -- and tie-breaks -- *bit-identically* to a
single index holding the same documents in the same order: base
documents keep ids ``0..N-1`` and each segment's documents follow at a
fixed global offset, exactly the ids a cold re-index would assign.

Writes never touch the overlay directly (:meth:`LiveIndex.add` raises);
the ingest plane appends sealed segments with :meth:`append_segment`
and compaction swaps the folded base in with :meth:`replace_base`.
Both swap one immutable state tuple under a mutate lock, so concurrent
readers always observe a consistent ``(base, segments)`` pair without
taking any lock on the query path. A reader that started before a seal
simply serves the pre-seal view; the next request sees the new one.

Every sealed segment advances :attr:`index_version` by its document
count (matching what the same ``add`` calls would have done on one
index) and records its touched content dates;
:meth:`touched_dates_since` replays that log so caches keyed on
``index_version`` can invalidate *only* the affected days
(:meth:`repro.core.daily.DayMatrixCache.sync_version`).
"""

from __future__ import annotations

import bisect
import dataclasses
import datetime
import threading
from typing import (
    Dict,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Tuple,
)

from repro.ingest.segment import Segment
from repro.search.index import IndexedSentence, InvertedIndex
from repro.text.analysis import TokenCache

__all__ = ["LiveIndex"]

#: Invalidation-log bound. Each entry is one sealed segment's (version,
#: touched-dates) pair; beyond this, the oldest entries collapse into
#: the "unknown -- flush everything" floor.
_LOG_LIMIT = 1024


class _LiveState(NamedTuple):
    """One immutable, atomically swapped overlay configuration."""

    base: InvertedIndex
    segments: Tuple[Segment, ...]
    offsets: Tuple[int, ...]
    total_docs: int
    total_length: int
    version: int


def _make_state(
    base: InvertedIndex, segments: Tuple[Segment, ...]
) -> _LiveState:
    offsets: List[int] = []
    cursor = base.num_documents
    total_length = base.total_length
    version = base.index_version
    for segment in segments:
        offsets.append(cursor)
        cursor += segment.documents
        total_length += segment.index.total_length
        version += segment.version_span
    return _LiveState(
        base=base,
        segments=segments,
        offsets=tuple(offsets),
        total_docs=cursor,
        total_length=total_length,
        version=version,
    )


class LiveIndex(InvertedIndex):
    """Read-only merge view of a base index and sealed delta segments."""

    def __init__(
        self,
        base: InvertedIndex,
        cache: Optional[TokenCache] = None,
    ) -> None:
        # Deliberately no super().__init__(): like MappedSnapshotIndex,
        # the dict-based state it would build is never used -- every
        # base-class method touching it is overridden below.
        self.cache = cache if cache is not None else base.cache
        self._mutate = threading.Lock()
        self._state = _make_state(base, ())
        self._log: List[Tuple[int, frozenset]] = []
        self._log_floor = self._state.version

    # -- overlay mutation (ingest plane only) -------------------------------

    def append_segment(self, segment: Segment) -> int:
        """Overlay a sealed *segment*; returns the new index version."""
        with self._mutate:
            state = self._state
            new_state = _make_state(
                state.base, state.segments + (segment,)
            )
            self._log.append(
                (new_state.version, frozenset(segment.touched_dates))
            )
            if len(self._log) > _LOG_LIMIT:
                dropped = self._log.pop(0)
                self._log_floor = dropped[0]
            self._state = new_state
            return new_state.version

    def replace_base(
        self, base: InvertedIndex, folded_segments: int
    ) -> None:
        """Swap in a compacted *base* covering the first *folded_segments*.

        The new base must hold exactly the documents of the old base
        plus the folded segments (in order) and carry the matching
        index version, so global doc ids and :attr:`index_version` are
        unchanged -- compaction is invisible to readers and caches.
        """
        with self._mutate:
            state = self._state
            remaining = state.segments[folded_segments:]
            expected_docs = state.offsets[folded_segments - 1] + (
                state.segments[folded_segments - 1].documents
            ) if folded_segments else state.base.num_documents
            if base.num_documents != expected_docs:
                raise ValueError(
                    f"compacted base holds {base.num_documents} documents, "
                    f"expected {expected_docs}"
                )
            new_state = _make_state(base, remaining)
            if new_state.version != state.version:
                raise ValueError(
                    f"compacted base version {new_state.version} != live "
                    f"version {state.version}"
                )
            self._state = new_state

    # -- invalidation log ---------------------------------------------------

    def touched_dates_since(
        self, version: int
    ) -> Optional[frozenset]:
        """Content dates written after *version*, or ``None`` if unknown.

        ``None`` means the asked-for revision predates the log (or the
        overlay's creation): the caller must fall back to a full flush.
        An up-to-date *version* returns an empty set -- nothing to
        evict.
        """
        with self._mutate:
            if version >= self._state.version:
                return frozenset()
            if version < self._log_floor:
                return None
            touched: set = set()
            for logged_version, dates in reversed(self._log):
                if logged_version <= version:
                    break
                touched.update(dates)
            return frozenset(touched)

    # -- overlay introspection ----------------------------------------------

    @property
    def base(self) -> InvertedIndex:
        return self._state.base

    @property
    def segments(self) -> Tuple[Segment, ...]:
        return self._state.segments

    @property
    def segment_count(self) -> int:
        return len(self._state.segments)

    @property
    def pending_documents(self) -> int:
        """Documents living in segments, awaiting compaction."""
        state = self._state
        return state.total_docs - state.base.num_documents

    @property
    def pending_bytes(self) -> int:
        """On-disk bytes of unfolded segments (0 for memory-only)."""
        return sum(s.nbytes for s in self._state.segments)

    # -- writes -------------------------------------------------------------

    def add(self, *args, **kwargs) -> int:
        raise TypeError(
            "LiveIndex is a read overlay; stream documents through the "
            "ingest plane (repro.ingest.IngestPlane), which seals them "
            "into segments"
        )

    def advance_version(self, version: int) -> None:
        raise TypeError(
            "LiveIndex derives its version from base + segments; "
            "advance the base index instead"
        )

    # -- routing ------------------------------------------------------------

    @staticmethod
    def _route(
        state: _LiveState, doc_id: int
    ) -> Tuple[InvertedIndex, int, int]:
        """``(sub_index, local_id, global_offset)`` owning *doc_id*."""
        base_docs = state.base.num_documents
        if 0 <= doc_id < base_docs:
            return state.base, doc_id, 0
        k = bisect.bisect_right(state.offsets, doc_id) - 1
        if k >= 0:
            segment = state.segments[k]
            local = doc_id - state.offsets[k]
            if 0 <= local < segment.documents:
                return segment.index, local, state.offsets[k]
        raise IndexError(f"doc_id {doc_id} out of range")

    @staticmethod
    def _ids_on(sub: InvertedIndex, date: datetime.date):
        """One sub-index's doc ids for *date*, in insertion order."""
        by_date = getattr(sub, "_by_date", None)
        if by_date is not None:
            return by_date.get(date, ())
        return sub.doc_ids_in_range(date, date)

    def _subs(
        self, state: _LiveState
    ) -> List[Tuple[InvertedIndex, int]]:
        return [(state.base, 0)] + [
            (segment.index, offset)
            for segment, offset in zip(state.segments, state.offsets)
        ]

    # -- reads --------------------------------------------------------------

    @property
    def index_version(self) -> int:
        return self._state.version

    @property
    def num_documents(self) -> int:
        return self._state.total_docs

    @property
    def total_length(self) -> int:
        return self._state.total_length

    @property
    def average_length(self) -> float:
        state = self._state
        if not state.total_docs:
            return 0.0
        return state.total_length / state.total_docs

    def document(self, doc_id: int) -> IndexedSentence:
        state = self._state
        sub, local, offset = self._route(state, doc_id)
        document = sub.document(local)
        if offset == 0:
            return document
        return dataclasses.replace(document, doc_id=local + offset)

    def document_length(self, doc_id: int) -> int:
        sub, local, _ = self._route(self._state, doc_id)
        return sub.document_length(local)

    def document_frequency(self, token: str) -> int:
        state = self._state
        return state.base.document_frequency(token) + sum(
            segment.index.document_frequency(token)
            for segment in state.segments
        )

    def postings(self, token: str) -> Dict[int, int]:
        state = self._state
        merged = dict(state.base.postings(token))
        for segment, offset in zip(state.segments, state.offsets):
            for local, tf in segment.index.postings(token).items():
                merged[local + offset] = tf
        return merged

    def positions(self, token: str, doc_id: int) -> List[int]:
        sub, local, _ = self._route(self._state, doc_id)
        return sub.positions(token, local)

    def phrase_match(self, tokens: List[str], doc_id: int) -> bool:
        sub, local, _ = self._route(self._state, doc_id)
        return sub.phrase_match(tokens, local)

    def vocabulary_size(self) -> int:
        return sum(1 for _ in self.tokens_with_postings())

    def tokens_with_postings(self) -> Iterator[str]:
        state = self._state
        seen = set()
        for sub, _ in self._subs(state):
            for token in sub.tokens_with_postings():
                if token not in seen:
                    seen.add(token)
                    yield token

    def postings_map(self) -> Dict[str, Dict[int, List[int]]]:
        """Materialise the merged positional mapping (writer accessor).

        Token order is first occurrence across base-then-segments,
        per-token doc ids ascending -- exactly the order a single index
        fed the same documents in the same sequence would hold, so
        snapshotting the overlay equals snapshotting that index.
        """
        state = self._state
        merged: Dict[str, Dict[int, List[int]]] = {}
        for sub, offset in self._subs(state):
            for token, entries in sub.postings_map().items():
                target = merged.setdefault(token, {})
                for local, positions in entries.items():
                    target[local + offset] = list(positions)
        return merged

    # -- date access --------------------------------------------------------

    def dates(self) -> List[datetime.date]:
        state = self._state
        merged = set(state.base.dates())
        for segment in state.segments:
            merged.update(segment.index.dates())
        return sorted(merged)

    def doc_ids_in_range(
        self,
        start: Optional[datetime.date] = None,
        end: Optional[datetime.date] = None,
    ) -> Iterator[int]:
        state = self._state
        subs = self._subs(state)
        for date in self.dates():
            if start is not None and date < start:
                continue
            if end is not None and date > end:
                break
            for sub, offset in subs:
                for doc_id in self._ids_on(sub, date):
                    yield doc_id + offset

    def documents_on(self, date: datetime.date) -> List[IndexedSentence]:
        state = self._state
        documents: List[IndexedSentence] = []
        for sub, offset in self._subs(state):
            for doc_id in self._ids_on(sub, date):
                document = sub.document(doc_id)
                if offset:
                    document = dataclasses.replace(
                        document, doc_id=doc_id + offset
                    )
                documents.append(document)
        return documents

    def date_histogram(
        self,
        interval_days: int = 1,
        start: Optional[datetime.date] = None,
        end: Optional[datetime.date] = None,
    ) -> Dict[datetime.date, int]:
        if interval_days < 1:
            raise ValueError(
                f"interval_days must be >= 1, got {interval_days}"
            )
        state = self._state
        per_date: Dict[datetime.date, int] = {}
        for sub, _ in self._subs(state):
            for date, count in sub.date_histogram(
                1, start=start, end=end
            ).items():
                per_date[date] = per_date.get(date, 0) + count
        counts: Dict[datetime.date, int] = {}
        dates = sorted(per_date)
        if not dates:
            return counts
        origin = start if start is not None else dates[0]
        for date in dates:
            offset = (date - origin).days // interval_days
            bucket = origin + datetime.timedelta(
                days=offset * interval_days
            )
            counts[bucket] = counts.get(bucket, 0) + per_date[date]
        return counts

    def __len__(self) -> int:
        return self._state.total_docs

    def __repr__(self) -> str:
        state = self._state
        return (
            f"LiveIndex(base={state.base.num_documents}, "
            f"segments={len(state.segments)}, "
            f"pending={self.pending_documents}, "
            f"version={state.version})"
        )
