"""The ``wilson.segment/v1`` delta-segment format.

A *segment* is a small, immutable batch of freshly ingested documents:
the unit the streaming ingest plane seals, overlays on the serving
index (:class:`repro.ingest.live.LiveIndex`), and later folds back into
a full snapshot (:mod:`repro.ingest.compactor`). On disk a segment
reuses the ``wilson.snapshot`` section machinery
(:func:`repro.search.snapshot.write_section_file`): one JSON meta line
-- magic, sequence number, document/article counts, the set of touched
content dates -- followed by page-aligned, per-section-checksummed
arrays. Loading replays the stored documents through
:meth:`~repro.search.index.InvertedIndex.add`, so a restored segment is
bit-identical to the sealed one (same analyzer, same documents, same
order).

Segments deliberately store *documents*, not derived postings: they are
small by design (one ingest batch), replay cost is the same tokenise
work ingestion already paid once, and the format stays trivially
forward-compatible.
"""

from __future__ import annotations

import dataclasses
import datetime
import pathlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.search.engine import expand_article
from repro.search.index import InvertedIndex
from repro.search.snapshot import (
    SnapshotError,
    _pack_strings,
    _read_header,
    _unpack_strings,
    read_section_file,
    write_section_file,
)
from repro.temporal.tagger import TemporalTagger
from repro.text.analysis import TokenCache
from repro.tlsdata.types import Article

PathLike = Union[str, pathlib.Path]

SEGMENT_MAGIC = "wilson.segment/v1"
SEGMENT_FORMAT_VERSION = 1


@dataclass(frozen=True)
class Segment:
    """One sealed ingest batch: a mini index plus its provenance.

    ``index`` holds the batch's documents under *local* doc ids
    ``0..documents-1``; the live overlay adds a global offset.
    ``touched_dates`` is the set of content dates the batch wrote --
    the precise-invalidation signal for the day-matrix and result
    caches. ``nbytes``/``path`` describe the on-disk form when the
    segment was persisted (``0``/``None`` for memory-only segments).
    """

    seq: int
    index: InvertedIndex
    touched_dates: frozenset
    articles: int
    nbytes: int = 0
    path: Optional[pathlib.Path] = None

    @property
    def documents(self) -> int:
        return len(self.index)

    @property
    def version_span(self) -> int:
        """How much this segment advances the live ``index_version``."""
        return self.index.index_version

    def __repr__(self) -> str:
        return (
            f"Segment(seq={self.seq}, documents={self.documents}, "
            f"articles={self.articles}, "
            f"touched_dates={len(self.touched_dates)})"
        )


def build_segment(
    seq: int,
    articles: Sequence[Article],
    tagger: TemporalTagger,
    cache: Optional[TokenCache] = None,
) -> Segment:
    """Expand *articles* into a sealed in-memory segment.

    Articles expand through :func:`repro.search.engine.expand_article`
    -- the same single source of truth ``SearchEngine.add_article``
    uses -- so a streamed batch produces exactly the documents a cold
    re-index of the same articles would.
    """
    articles = list(articles)
    index = InvertedIndex(cache=cache)
    touched = set()
    for article in articles:
        for text, date, pub_date, article_id, is_ref in expand_article(
            article, tagger
        ):
            index.add(
                text,
                date=date,
                publication_date=pub_date,
                article_id=article_id,
                is_reference=is_ref,
            )
            touched.add(date)
    return Segment(
        seq=seq,
        index=index,
        touched_dates=frozenset(touched),
        articles=len(articles),
    )


def write_segment(segment: Segment, path: PathLike) -> Segment:
    """Persist *segment* as a ``wilson.segment/v1`` file.

    Returns a copy of the segment carrying ``path`` and the on-disk
    ``nbytes`` (the pending-compaction accounting the metrics and
    ``index-info`` report).
    """
    path = pathlib.Path(path)
    docs = [segment.index.document(i) for i in range(segment.documents)]
    texts_buf, texts_indptr = _pack_strings([d.text for d in docs])
    articles_buf, articles_indptr = _pack_strings(
        [d.article_id for d in docs]
    )
    arrays = {
        "texts_buf": texts_buf,
        "texts_indptr": texts_indptr,
        "articles_buf": articles_buf,
        "articles_indptr": articles_indptr,
        "doc_dates": np.asarray(
            [d.date.toordinal() for d in docs], dtype=np.int64
        ),
        "doc_pub_dates": np.asarray(
            [d.publication_date.toordinal() for d in docs],
            dtype=np.int64,
        ),
        "doc_is_reference": np.asarray(
            [1 if d.is_reference else 0 for d in docs], dtype=np.uint8
        ),
    }
    cache = segment.index.cache
    meta = {
        "segment_seq": segment.seq,
        "documents": segment.documents,
        "articles": segment.articles,
        "touched_dates": sorted(
            d.isoformat() for d in segment.touched_dates
        ),
        "analyzer": {
            "stem": cache.stem if cache is not None else True,
            "drop_stopwords": (
                cache.drop_stopwords if cache is not None else True
            ),
        },
    }
    write_section_file(
        path, SEGMENT_MAGIC, SEGMENT_FORMAT_VERSION, arrays, meta
    )
    return dataclasses.replace(
        segment, path=path, nbytes=path.stat().st_size
    )


def load_segment(
    path: PathLike, cache: Optional[TokenCache] = None
) -> Segment:
    """Restore a segment written by :func:`write_segment`.

    Documents replay through :meth:`InvertedIndex.add` with the given
    analyzer cache; an analyzer mismatch with the file's recorded
    configuration raises :class:`SnapshotError` (replaying with a
    different analyzer would silently change postings). Never leaves
    partial state: any corruption raises before a segment is returned.
    """
    path = pathlib.Path(path)
    header, arrays = read_section_file(
        path, SEGMENT_MAGIC, SEGMENT_FORMAT_VERSION
    )
    analyzer = header.get("analyzer") or {}
    if cache is not None and (
        bool(analyzer.get("stem", True)) != cache.stem
        or bool(analyzer.get("drop_stopwords", True))
        != cache.drop_stopwords
    ):
        raise SnapshotError(
            "segment analyzer configuration "
            f"{analyzer!r} does not match the provided cache"
        )
    try:
        texts = _unpack_strings(
            arrays["texts_buf"], arrays["texts_indptr"]
        )
        article_ids = _unpack_strings(
            arrays["articles_buf"], arrays["articles_indptr"]
        )
        dates = arrays["doc_dates"].tolist()
        pub_dates = arrays["doc_pub_dates"].tolist()
        is_reference = arrays["doc_is_reference"].tolist()
    except KeyError as exc:
        raise SnapshotError(f"segment is missing section {exc}") from exc
    counts = {
        len(texts), len(article_ids), len(dates),
        len(pub_dates), len(is_reference),
    }
    if len(counts) != 1:
        raise SnapshotError("segment sections disagree on document count")
    declared = header.get("documents")
    if declared is not None and int(declared) != len(texts):
        raise SnapshotError(
            f"segment header declares {declared} documents, "
            f"sections carry {len(texts)}"
        )
    from_ordinal = datetime.date.fromordinal
    index = InvertedIndex(cache=cache)
    touched = set()
    for text, aid, date, pub, ref in zip(
        texts, article_ids, dates, pub_dates, is_reference
    ):
        content_date = from_ordinal(int(date))
        index.add(
            text,
            date=content_date,
            publication_date=from_ordinal(int(pub)),
            article_id=aid,
            is_reference=bool(ref),
        )
        touched.add(content_date)
    return Segment(
        seq=int(header.get("segment_seq", 0)),
        index=index,
        touched_dates=frozenset(touched),
        articles=int(header.get("articles", 0)),
        nbytes=path.stat().st_size,
        path=path,
    )


def segment_info(path: PathLike) -> dict:
    """Parse and validate a segment's meta header (payload unread).

    The O(1) accessor behind ``index-info --segments``: sequence,
    document/article counts, touched dates and payload size without
    replaying the batch. Raises :class:`SnapshotError` on a missing or
    malformed file.
    """
    try:
        with pathlib.Path(path).open("rb") as handle:
            return _read_header(
                handle, magics={SEGMENT_MAGIC: SEGMENT_FORMAT_VERSION}
            )[0]
    except OSError as exc:
        raise SnapshotError(f"cannot read segment: {exc}") from exc


def list_segments(directory: PathLike) -> List[pathlib.Path]:
    """Segment files in *directory*, sorted by ascending sequence."""
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("segment-*.seg"))
