"""Folding sealed segments back into a fresh base index.

Compaction replays the overlay's documents -- base first, then every
sealed segment in order -- through :meth:`InvertedIndex.add` into a
fresh index, then atomically swaps it in as the new base
(:meth:`LiveIndex.replace_base`). Replaying the same documents in the
same order is what makes the guarantee trivial: the compacted index
*is* the cold re-index of the streamed corpus, so a snapshot written
from it is byte-identical to one written after a cold re-index
(asserted by ``tests/test_ingest_plane.py``).

The fold runs entirely off the query hot path: readers keep serving
the old ``(base, segments)`` view until the single atomic swap, and
segments sealed *while* the fold runs survive it -- ``replace_base``
only consumes the prefix the compactor actually folded. One compaction
runs at a time (serialized by an internal lock).
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass
from typing import Optional, Union

import threading

from repro.ingest.live import LiveIndex
from repro.search.index import InvertedIndex

PathLike = Union[str, pathlib.Path]


@dataclass(frozen=True)
class CompactionReport:
    """What one compaction folded and what it cost."""

    folded_segments: int
    folded_documents: int
    documents: int
    seconds: float
    reclaimed_bytes: int
    snapshot_path: Optional[pathlib.Path] = None


class Compactor:
    """Folds a :class:`LiveIndex`'s segments into a fresh base."""

    def __init__(self, live: LiveIndex) -> None:
        self.live = live
        self._lock = threading.Lock()

    def compact(
        self,
        snapshot_path: Optional[PathLike] = None,
        snapshot_format: str = "v2",
    ) -> CompactionReport:
        """Fold every currently sealed segment into a new base index.

        With *snapshot_path* the compacted index is also persisted as a
        ``wilson.snapshot`` of *snapshot_format* -- the file a restarted
        worker boots from without replaying any segment. Returns a
        :class:`CompactionReport`; folding zero segments is a cheap
        no-op (the snapshot, when requested, is still written).
        """
        with self._lock:
            started = time.perf_counter()
            live = self.live
            state = live._state  # one consistent (base, segments) view
            base, segments = state.base, state.segments
            if segments:
                fresh = InvertedIndex(cache=live.cache)
                for doc_id in range(base.num_documents):
                    document = base.document(doc_id)
                    fresh.add(
                        document.text,
                        date=document.date,
                        publication_date=document.publication_date,
                        article_id=document.article_id,
                        is_reference=document.is_reference,
                    )
                for segment in segments:
                    for local in range(segment.documents):
                        document = segment.index.document(local)
                        fresh.add(
                            document.text,
                            date=document.date,
                            publication_date=document.publication_date,
                            article_id=document.article_id,
                            is_reference=document.is_reference,
                        )
                # Replaying bumps the version once per document; restore
                # the overlay's revision (covers a base restored with a
                # version ahead of its document count).
                fresh.advance_version(
                    base.index_version
                    + sum(s.version_span for s in segments)
                )
                live.replace_base(fresh, folded_segments=len(segments))
                compacted: InvertedIndex = fresh
            else:
                compacted = base
            reclaimed = 0
            for segment in segments:
                if segment.path is not None:
                    try:
                        segment.path.unlink()
                        reclaimed += segment.nbytes
                    except OSError:
                        pass
            written: Optional[pathlib.Path] = None
            if snapshot_path is not None:
                from repro.search.snapshot import save_snapshot

                written = pathlib.Path(snapshot_path)
                save_snapshot(
                    compacted, written, snapshot_format=snapshot_format
                )
            return CompactionReport(
                folded_segments=len(segments),
                folded_documents=sum(s.documents for s in segments),
                documents=compacted.num_documents,
                seconds=time.perf_counter() - started,
                reclaimed_bytes=reclaimed,
                snapshot_path=written,
            )
