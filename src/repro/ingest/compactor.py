"""Folding sealed segments back into a fresh base index.

Compaction replays the overlay's documents -- base first, then every
sealed segment in order -- through :meth:`InvertedIndex.add` into a
fresh index, then atomically swaps it in as the new base
(:meth:`LiveIndex.replace_base`). Replaying the same documents in the
same order is what makes the guarantee trivial: the compacted index
*is* the cold re-index of the streamed corpus, so a snapshot written
from it is byte-identical to one written after a cold re-index
(asserted by ``tests/test_ingest_plane.py``).

The fold runs entirely off the query hot path: readers keep serving
the old ``(base, segments)`` view until the single atomic swap, and
segments sealed *while* the fold runs survive it -- ``replace_base``
only consumes the prefix the compactor actually folded. One compaction
runs at a time (serialized by an internal lock).

Durability contract: a persisted segment file is the *only* durable
copy of its acknowledged writes until a snapshot containing those
documents exists on disk. Folding a segment into the in-memory base
does not change that, so segment files are unlinked **only after** a
compacted snapshot has been durably written (snapshots are written to
a temporary file and atomically renamed, so a crash mid-write never
destroys the previous one). A compaction without a snapshot keeps the
folded files on disk; they remain tracked and are reclaimed by the
next snapshot-writing compaction, whose base -- and therefore whose
snapshot -- contains their documents.
"""

from __future__ import annotations

import os
import pathlib
import time
from dataclasses import dataclass
from typing import List, Optional, Union

import threading

from repro.ingest.live import LiveIndex
from repro.ingest.segment import Segment
from repro.search.index import InvertedIndex

PathLike = Union[str, pathlib.Path]


@dataclass(frozen=True)
class CompactionReport:
    """What one compaction folded and what it cost."""

    folded_segments: int
    folded_documents: int
    documents: int
    seconds: float
    reclaimed_bytes: int
    snapshot_path: Optional[pathlib.Path] = None


def _save_snapshot_atomic(
    index: InvertedIndex, path: pathlib.Path, snapshot_format: str
) -> None:
    """Write a snapshot via a temp file + rename, never a torn target.

    The target may be the recovery snapshot that durably covers
    already-unlinked segment files: overwriting it in place would make
    a crash mid-write lose those writes permanently.
    """
    from repro.search.snapshot import save_snapshot

    tmp = path.with_name(path.name + ".tmp")
    save_snapshot(index, tmp, snapshot_format=snapshot_format)
    os.replace(tmp, path)


class Compactor:
    """Folds a :class:`LiveIndex`'s segments into a fresh base."""

    def __init__(self, live: LiveIndex) -> None:
        self.live = live
        self._lock = threading.Lock()
        #: Persisted segments already folded into the in-memory base
        #: but not yet covered by an on-disk snapshot. Their files must
        #: survive until one is written (see module docstring).
        self._uncovered: List[Segment] = []

    def compact(
        self,
        snapshot_path: Optional[PathLike] = None,
        snapshot_format: str = "v2",
    ) -> CompactionReport:
        """Fold every currently sealed segment into a new base index.

        With *snapshot_path* the compacted index is also persisted as a
        ``wilson.snapshot`` of *snapshot_format* -- the file a restarted
        worker boots from without replaying any segment -- and the
        folded segments' files (plus any kept by earlier snapshot-less
        compactions) are unlinked, since the snapshot now durably
        covers them. Without one, persisted segment files are **kept**:
        the in-memory fold alone is not durable, and deleting them
        would silently lose acknowledged writes on the next restart.
        Returns a :class:`CompactionReport`; folding zero segments is a
        cheap no-op (the snapshot, when requested, is still written).
        """
        with self._lock:
            started = time.perf_counter()
            live = self.live
            state = live._state  # one consistent (base, segments) view
            base, segments = state.base, state.segments
            if segments:
                fresh = InvertedIndex(cache=live.cache)
                for doc_id in range(base.num_documents):
                    document = base.document(doc_id)
                    fresh.add(
                        document.text,
                        date=document.date,
                        publication_date=document.publication_date,
                        article_id=document.article_id,
                        is_reference=document.is_reference,
                    )
                for segment in segments:
                    for local in range(segment.documents):
                        document = segment.index.document(local)
                        fresh.add(
                            document.text,
                            date=document.date,
                            publication_date=document.publication_date,
                            article_id=document.article_id,
                            is_reference=document.is_reference,
                        )
                # Replaying bumps the version once per document; restore
                # the overlay's revision (covers a base restored with a
                # version ahead of its document count).
                fresh.advance_version(
                    base.index_version
                    + sum(s.version_span for s in segments)
                )
                live.replace_base(fresh, folded_segments=len(segments))
                compacted: InvertedIndex = fresh
            else:
                compacted = base
            written: Optional[pathlib.Path] = None
            if snapshot_path is not None:
                written = pathlib.Path(snapshot_path)
                _save_snapshot_atomic(
                    compacted, written, snapshot_format
                )
            persisted = [s for s in segments if s.path is not None]
            reclaimed = 0
            if written is not None:
                # The snapshot durably holds every folded document --
                # this round's and every earlier uncovered round's (the
                # base it was written from retains them) -- so their
                # files are now redundant.
                for segment in persisted + self._uncovered:
                    try:
                        segment.path.unlink()
                        reclaimed += segment.nbytes
                    except OSError:
                        pass
                self._uncovered = []
            else:
                self._uncovered.extend(persisted)
            return CompactionReport(
                folded_segments=len(segments),
                folded_documents=sum(s.documents for s in segments),
                documents=compacted.num_documents,
                seconds=time.perf_counter() - started,
                reclaimed_bytes=reclaimed,
                snapshot_path=written,
            )
