"""Streaming ingest: live document ingest under serving traffic.

The write path of the serving stack (see ``docs/ingest.md``): articles
stream into a bounded :class:`IngestQueue`, a :class:`SegmentWriter`
thread seals them into append-only ``wilson.segment/v1`` delta
segments, a :class:`LiveIndex` overlays sealed segments on the base
(mmap or copied) snapshot with exact merged BM25 statistics, and a
:class:`Compactor` periodically folds segments back into a fresh
snapshot off the hot path. Each seal bumps ``index_version`` and
reports its touched content dates, driving precise day-scoped cache
invalidation instead of full flushes.
"""

from repro.ingest.compactor import CompactionReport, Compactor
from repro.ingest.live import LiveIndex
from repro.ingest.plane import (
    INGEST_COUNTERS,
    INGEST_GAUGES,
    INGEST_HISTOGRAMS,
    INGEST_METRIC_NAMES,
    IngestConfig,
    IngestPlane,
)
from repro.ingest.queue import IngestQueue
from repro.ingest.segment import (
    SEGMENT_FORMAT_VERSION,
    SEGMENT_MAGIC,
    Segment,
    build_segment,
    list_segments,
    load_segment,
    segment_info,
    write_segment,
)
from repro.ingest.writer import SegmentWriter

__all__ = [
    "CompactionReport",
    "Compactor",
    "INGEST_COUNTERS",
    "INGEST_GAUGES",
    "INGEST_HISTOGRAMS",
    "INGEST_METRIC_NAMES",
    "IngestConfig",
    "IngestPlane",
    "IngestQueue",
    "LiveIndex",
    "SEGMENT_FORMAT_VERSION",
    "SEGMENT_MAGIC",
    "Segment",
    "SegmentWriter",
    "build_segment",
    "list_segments",
    "load_segment",
    "segment_info",
    "write_segment",
]
