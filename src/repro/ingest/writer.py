"""The background seal loop: queue batches into sealed segments.

:class:`SegmentWriter` owns the single writer thread of the ingest
plane. It drains the :class:`~repro.ingest.queue.IngestQueue` into
batches (bounded by article count and batch age) and hands each to the
plane's seal path -- expansion, mini-index build, optional persist,
overlay append, cache invalidation, metrics. Everything expensive thus
happens on this one thread; query threads only ever swap-read the
overlay state, and HTTP handlers only enqueue.
"""

from __future__ import annotations

import threading
from typing import Optional


class SegmentWriter:
    """Drains an ingest queue into sealed segments on one thread."""

    def __init__(self, plane) -> None:
        self.plane = plane
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._sealing = False

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="wilson-segment-writer", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        plane = self.plane
        config = plane.config
        timeout = max(config.batch_age_ms, 1.0) / 1000.0
        while not self._stop.is_set():
            batch = plane.queue.drain(
                config.batch_articles, timeout=timeout
            )
            if batch:
                self._seal(batch)

    def _seal(self, batch) -> None:
        """Seal one batch drained (leased) from the plane's queue."""
        self._sealing = True
        try:
            self.plane._seal_batch(batch)
        except Exception:
            self.plane._record_seal_error(len(batch))
        finally:
            self._sealing = False
            # Release the lease last: queue.wait_idle only reports idle
            # once the batch is sealed (or its error recorded), so a
            # flush() that returns True really covers this batch.
            self.plane.queue.task_done()

    def flush(self, timeout: float = 10.0) -> bool:
        """Wait until every queued article has been drained *and* sealed.

        Idleness is the queue's lease accounting, not a depth poll: a
        batch counts in flight from the instant ``drain`` dequeues it
        until its seal completes, so there is no window where a
        just-drained, not-yet-sealed batch reads as flushed.
        """
        return self.plane.queue.wait_idle(timeout)

    def stop(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop the writer; with *drain* seal everything still queued.

        Draining first closes the queue (new offers are rejected), so
        the backlog is bounded and shutdown terminates.
        """
        queue = self.plane.queue
        queue.close()
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            self._thread = None
        if drain:
            while True:
                batch = queue.drain(
                    self.plane.config.batch_articles, timeout=0
                )
                if not batch:
                    break
                self._seal(batch)
