"""A tiny process-local metrics registry (counters, gauges, histograms).

Where :mod:`repro.obs.trace` answers *"where did this one run spend its
time?"*, the :class:`Metrics` registry answers *"what does the
distribution look like across many runs?"* -- the service-side view for
the Section 5 real-time system. Zero dependencies, thread-safe, and
entirely opt-in: nothing in the pipeline records metrics unless a
registry is installed (see :mod:`repro.obs.profile`).

Usage::

    metrics = Metrics()
    metrics.counter("queries_served").inc()
    metrics.gauge("index_sentences").set(123456)
    metrics.histogram("query_seconds").observe(0.042)
    print(metrics.snapshot())
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, value: float = 1.0) -> None:
        """Increase the counter; *value* must be non-negative."""
        if value < 0:
            raise ValueError(f"counter increments must be >= 0, got {value}")
        with self._lock:
            self._value += value

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (queue depth, index size)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, value: float) -> None:
        with self._lock:
            self._value += value

    @property
    def value(self) -> float:
        return self._value


def percentile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolated percentile of pre-sorted *sorted_values*.

    ``q`` is in [0, 100]. Matches ``numpy.percentile``'s default (linear)
    interpolation without importing numpy.
    """
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must lie in [0, 100], got {q}")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = (len(sorted_values) - 1) * (q / 100.0)
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    fraction = position - lower
    return (
        sorted_values[lower] * (1.0 - fraction)
        + sorted_values[upper] * fraction
    )


class Histogram:
    """Stores raw observations and summarises them with percentiles.

    Observations are kept exactly (no bucketing) -- the registry lives for
    one process/benchmark run, so memory is bounded by call volume, and
    exact percentiles are worth more than constant space here.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._observations: List[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._observations.append(float(value))

    @property
    def count(self) -> int:
        return len(self._observations)

    @property
    def total(self) -> float:
        """Sum of all observations (the Prometheus summary ``_sum``)."""
        with self._lock:
            return sum(self._observations)

    def summary(self) -> Dict[str, float]:
        """count / mean / min / max / p50 / p90 / p99 of the observations."""
        with self._lock:
            values = sorted(self._observations)
        if not values:
            return {"count": 0}
        return {
            "count": float(len(values)),
            "mean": sum(values) / len(values),
            "min": values[0],
            "max": values[-1],
            "p50": percentile(values, 50.0),
            "p90": percentile(values, 90.0),
            "p99": percentile(values, 99.0),
        }


class Metrics:
    """Get-or-create registry of named counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name)
            return self._histograms[name]

    def snapshot(self) -> dict:
        """Point-in-time dump: every instrument, JSON-serialisable."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: counter.value for name, counter in sorted(counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(gauges.items())
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(histograms.items())
            },
        }

    def render_prometheus(self, namespace: str = "wilson") -> str:
        """The registry in Prometheus text exposition format (v0.0.4).

        Dotted instrument names become underscore-separated metric names
        under *namespace* (``serve.requests`` ->
        ``wilson_serve_requests_total``); counters get the conventional
        ``_total`` suffix and histograms render as summaries with
        ``quantile`` labels plus ``_sum`` / ``_count`` series. This is
        what the serving tier's ``GET /metrics`` endpoint returns (see
        docs/serving.md).
        """
        with self._lock:
            counters = dict(sorted(self._counters.items()))
            gauges = dict(sorted(self._gauges.items()))
            histograms = dict(sorted(self._histograms.items()))
        lines: List[str] = []

        def metric_name(name: str) -> str:
            sanitized = "".join(
                ch if ch.isalnum() or ch == "_" else "_" for ch in name
            )
            return f"{namespace}_{sanitized}" if namespace else sanitized

        for name, counter in counters.items():
            full = metric_name(name) + "_total"
            lines.append(f"# TYPE {full} counter")
            lines.append(f"{full} {counter.value:g}")
        for name, gauge in gauges.items():
            full = metric_name(name)
            lines.append(f"# TYPE {full} gauge")
            lines.append(f"{full} {gauge.value:g}")
        for name, histogram in histograms.items():
            full = metric_name(name)
            summary = histogram.summary()
            lines.append(f"# TYPE {full} summary")
            for quantile, key in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")):
                if key in summary:
                    lines.append(
                        f'{full}{{quantile="{quantile}"}} {summary[key]:g}'
                    )
            lines.append(f"{full}_sum {histogram.total:g}")
            lines.append(f"{full}_count {int(summary['count'])}")
        return "\n".join(lines) + "\n"

    def render(self) -> str:
        """Human-readable one-line-per-instrument dump."""
        snap = self.snapshot()
        lines: List[str] = []
        for name, value in snap["counters"].items():
            lines.append(f"counter   {name} = {value:g}")
        for name, value in snap["gauges"].items():
            lines.append(f"gauge     {name} = {value:g}")
        for name, summary in snap["histograms"].items():
            parts = " ".join(
                f"{key}={summary[key]:g}"
                for key in ("count", "mean", "p50", "p90", "p99")
                if key in summary
            )
            lines.append(f"histogram {name} {parts}")
        return "\n".join(lines)
