"""Hierarchical stage tracing for the WILSON pipeline.

A :class:`Tracer` records a tree of timed :class:`Span` objects plus named
counters, giving per-stage visibility into a timeline run: date-graph
construction, PageRank, per-day TextRank, post-processing, compression.
The span/counter vocabulary is a documented contract -- see
``docs/observability.md`` -- so perf PRs can cite stable stage names.

Design constraints:

* **zero dependencies** -- stdlib only, importable everywhere;
* **no-op by default** -- every traced function takes ``tracer=None`` and
  routes through :data:`NULL_TRACER`, whose span/count methods do nothing,
  so untraced runs pay one attribute lookup per stage;
* **monotonic clocks** -- all durations come from
  :func:`time.perf_counter`, never ``time.time``;
* **thread-safe counters** -- parallel daily summarisation may count from
  worker threads (spans stay on the thread that opened the tracer).

Usage::

    tracer = Tracer()
    timeline = wilson.summarize_corpus(corpus, tracer=tracer)
    print(tracer.render())            # human tree
    payload = tracer.to_dict()        # wilson.trace/v1 JSON document
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

#: Version tag carried by every trace document; bump on breaking changes
#: to the JSON layout (see docs/observability.md).
SCHEMA_VERSION = "wilson.trace/v1"


@dataclass
class Span:
    """One timed stage: a name, a duration, counters, and child spans."""

    name: str
    start: float = 0.0
    end: Optional[float] = None
    counters: Dict[str, float] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration_seconds(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def self_seconds(self) -> float:
        """Duration not attributed to any child span."""
        return max(
            0.0,
            self.duration_seconds
            - sum(child.duration_seconds for child in self.children),
        )

    def count(self, name: str, value: float = 1.0) -> None:
        """Add *value* to this span's counter *name*."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """The span subtree in trace-JSON form (see docs/observability.md)."""
        return {
            "name": self.name,
            "duration_seconds": self.duration_seconds,
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }


class _NullSpan(Span):
    """The span handed out by :class:`NullTracer`; absorbs everything."""

    def __init__(self) -> None:
        super().__init__(name="null")

    def count(self, name: str, value: float = 1.0) -> None:
        pass


class Tracer:
    """Collects a forest of timed spans plus run-level counters.

    Spans nest via the :meth:`span` context manager; counters recorded with
    :meth:`count` are attached to the innermost open span *and* aggregated
    across the whole run in :attr:`counters`, so repeated spans (one per
    day, one per PageRank run) sum up naturally.
    """

    #: Distinguishes real tracers from :data:`NULL_TRACER` without
    #: isinstance checks in hot paths.
    enabled: bool = True

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.counters: Dict[str, float] = {}
        self._stack: List[Span] = []
        self._lock = threading.RLock()

    # -- recording -----------------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Open a child span of the innermost open span (or a new root)."""
        entry = Span(name=name, start=time.perf_counter())
        with self._lock:
            if self._stack:
                self._stack[-1].children.append(entry)
            else:
                self.spans.append(entry)
            self._stack.append(entry)
        try:
            yield entry
        finally:
            entry.end = time.perf_counter()
            with self._lock:
                if self._stack and self._stack[-1] is entry:
                    self._stack.pop()

    @contextmanager
    def root_span(self, name: str) -> Iterator[Span]:
        """Like :meth:`span`, but re-entrant: if a span called *name* is
        already open, yield it instead of nesting a duplicate.

        Lets ``Wilson.summarize`` own the ``pipeline`` root while still
        being callable from ``summarize_corpus`` (which opened it first).
        """
        with self._lock:
            open_span = next(
                (s for s in self._stack if s.name == name), None
            )
        if open_span is not None:
            yield open_span
            return
        with self.span(name) as entry:
            yield entry

    def count(self, name: str, value: float = 1.0) -> None:
        """Add *value* to run-level counter *name* (and the open span's)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + value
            if self._stack:
                self._stack[-1].count(name, value)

    # -- inspection ----------------------------------------------------------

    def walk(self) -> Iterator[Span]:
        """Depth-first iteration over every recorded span."""
        for root in self.spans:
            yield from root.walk()

    def find(self, name: str) -> List[Span]:
        """Every recorded span named *name* (depth-first order)."""
        return [span for span in self.walk() if span.name == name]

    def total_seconds(self, name: str) -> float:
        """Summed duration of every span named *name*."""
        return sum(span.duration_seconds for span in self.find(name))

    def span_names(self) -> List[str]:
        """Sorted distinct names of every recorded span."""
        return sorted({span.name for span in self.walk()})

    # -- export --------------------------------------------------------------

    def to_dict(self) -> dict:
        """The full trace as a ``wilson.trace/v1`` document."""
        return {
            "schema": SCHEMA_VERSION,
            "spans": [span.to_dict() for span in self.spans],
            "counters": dict(self.counters),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The trace document serialised to JSON."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Human-readable tree: durations, percentages, counters."""
        lines: List[str] = []
        total = sum(span.duration_seconds for span in self.spans)

        def emit(span: Span, depth: int) -> None:
            share = (
                f" ({span.duration_seconds / total * 100.0:5.1f}%)"
                if total > 0
                else ""
            )
            lines.append(
                f"{'  ' * depth}{span.name:<32} "
                f"{span.duration_seconds * 1e3:10.3f} ms{share}"
            )
            for key in sorted(span.counters):
                lines.append(
                    f"{'  ' * (depth + 1)}| {key} = {span.counters[key]:g}"
                )
            for child in span.children:
                emit(child, depth + 1)

        for root in self.spans:
            emit(root, 0)
        return "\n".join(lines)


class NullTracer(Tracer):
    """The default tracer: records nothing, costs (almost) nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_span = _NullSpan()

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        yield self._null_span

    @contextmanager
    def root_span(self, name: str) -> Iterator[Span]:
        yield self._null_span

    def count(self, name: str, value: float = 1.0) -> None:
        pass


#: Shared no-op tracer; every traced function falls back to it.
NULL_TRACER = NullTracer()


def ensure_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Normalise an optional ``tracer=`` argument (``None`` -> no-op)."""
    return tracer if tracer is not None else NULL_TRACER


def stage_breakdown(tracer: Tracer) -> List[Tuple[str, float, float]]:
    """Aggregate spans by name: ``(name, total_seconds, percent_of_run)``.

    The percentage is relative to the summed root-span duration; rows are
    ordered by first appearance (depth-first), so the pipeline stages come
    out in execution order.
    """
    total = sum(span.duration_seconds for span in tracer.spans)
    order: List[str] = []
    sums: Dict[str, float] = {}
    for span in tracer.walk():
        if span.name not in sums:
            order.append(span.name)
            sums[span.name] = 0.0
        sums[span.name] += span.duration_seconds
    return [
        (
            name,
            sums[name],
            (sums[name] / total * 100.0) if total > 0 else 0.0,
        )
        for name in order
    ]


def validate_trace(payload: object) -> List[str]:
    """Validate a trace document against the ``wilson.trace/v1`` schema.

    Returns a list of human-readable problems; an empty list means the
    document conforms to the contract in ``docs/observability.md``.
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        return [f"trace document must be an object, got {type(payload).__name__}"]
    if payload.get("schema") != SCHEMA_VERSION:
        errors.append(
            f"schema must be {SCHEMA_VERSION!r}, got {payload.get('schema')!r}"
        )
    counters = payload.get("counters")
    if not isinstance(counters, dict):
        errors.append("counters must be an object")
    else:
        errors.extend(_validate_counters(counters, "counters"))
    spans = payload.get("spans")
    if not isinstance(spans, list):
        errors.append("spans must be an array")
    else:
        for i, span in enumerate(spans):
            errors.extend(_validate_span(span, f"spans[{i}]"))
    return errors


def _validate_counters(counters: dict, where: str) -> List[str]:
    errors = []
    for key, value in counters.items():
        if not isinstance(key, str):
            errors.append(f"{where} key {key!r} must be a string")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"{where}[{key!r}] must be a number, got {value!r}")
    return errors


def _validate_span(span: object, where: str) -> List[str]:
    if not isinstance(span, dict):
        return [f"{where} must be an object, got {type(span).__name__}"]
    errors: List[str] = []
    name = span.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"{where}.name must be a non-empty string")
    duration = span.get("duration_seconds")
    if (
        not isinstance(duration, (int, float))
        or isinstance(duration, bool)
        or duration < 0
    ):
        errors.append(f"{where}.duration_seconds must be a number >= 0")
    counters = span.get("counters")
    if not isinstance(counters, dict):
        errors.append(f"{where}.counters must be an object")
    else:
        errors.extend(_validate_counters(counters, f"{where}.counters"))
    children = span.get("children")
    if not isinstance(children, list):
        errors.append(f"{where}.children must be an array")
    else:
        for i, child in enumerate(children):
            errors.extend(_validate_span(child, f"{where}.children[{i}]"))
    return errors
