"""The ``@profiled`` hook: opt-in latency histograms for hot functions.

Decorating a function marks it as a profiling point. By default the
decorator is a single ``is None`` check per call -- no timing, no
allocation -- so tier-1 timings are unaffected. Installing a
:class:`~repro.obs.metrics.Metrics` registry (globally via
:func:`enable_profiling`, or per-function via ``metrics=``) turns every
call into a :func:`time.perf_counter`-timed observation in the histogram
``profile.<name>.seconds``.

Usage::

    @profiled
    def pagerank_matrix(...): ...

    with profiling(metrics):          # or enable_profiling(metrics)
        run_benchmark()
    print(metrics.histogram("profile.pagerank_matrix.seconds").summary())
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional, TypeVar

from repro.obs.metrics import Metrics

F = TypeVar("F", bound=Callable)

#: The process-wide registry observed by ``@profiled`` functions;
#: ``None`` (the default) keeps every hook a no-op.
_active_metrics: Optional[Metrics] = None


def enable_profiling(metrics: Metrics) -> None:
    """Install *metrics* as the process-wide profiling registry."""
    global _active_metrics
    _active_metrics = metrics


def disable_profiling() -> None:
    """Return every ``@profiled`` hook to its no-op state."""
    global _active_metrics
    _active_metrics = None


def active_profiling() -> Optional[Metrics]:
    """The currently installed registry, or ``None``."""
    return _active_metrics


@contextmanager
def profiling(metrics: Optional[Metrics] = None) -> Iterator[Metrics]:
    """Scoped profiling: install a registry, restore the previous on exit."""
    global _active_metrics
    registry = metrics if metrics is not None else Metrics()
    previous = _active_metrics
    _active_metrics = registry
    try:
        yield registry
    finally:
        _active_metrics = previous


def profiled(
    func: Optional[F] = None,
    *,
    name: Optional[str] = None,
    metrics: Optional[Metrics] = None,
) -> Callable:
    """Mark a function as a profiling point.

    Parameters
    ----------
    name:
        Histogram name component; defaults to the function's
        ``__qualname__``. The full histogram name is
        ``profile.<name>.seconds``.
    metrics:
        Bind the hook to a fixed registry instead of the process-wide one
        (useful in tests).
    """

    def decorate(target: F) -> F:
        label = f"profile.{name or target.__qualname__}.seconds"

        @functools.wraps(target)
        def wrapper(*args, **kwargs):
            registry = metrics if metrics is not None else _active_metrics
            if registry is None:
                return target(*args, **kwargs)
            start = time.perf_counter()
            try:
                return target(*args, **kwargs)
            finally:
                registry.histogram(label).observe(
                    time.perf_counter() - start
                )

        wrapper.__wrapped__ = target
        return wrapper  # type: ignore[return-value]

    if func is not None:
        return decorate(func)
    return decorate
