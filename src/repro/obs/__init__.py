"""Pipeline observability: stage tracing, metrics, profiling hooks.

Three independent, zero-dependency instruments (contract in
``docs/observability.md``):

* :mod:`repro.obs.trace` -- :class:`Tracer`, hierarchical timed spans with
  counters; every pipeline stage takes an optional ``tracer=`` and is a
  no-op without one;
* :mod:`repro.obs.metrics` -- :class:`Metrics`, a registry of counters /
  gauges / histograms with percentile summaries, for cross-run service
  telemetry;
* :mod:`repro.obs.profile` -- the :func:`profiled` decorator, opt-in
  latency histograms on hot functions.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, Metrics, percentile
from repro.obs.profile import (
    active_profiling,
    disable_profiling,
    enable_profiling,
    profiled,
    profiling,
)
from repro.obs.trace import (
    NULL_TRACER,
    SCHEMA_VERSION,
    NullTracer,
    Span,
    Tracer,
    ensure_tracer,
    stage_breakdown,
    validate_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "NULL_TRACER",
    "NullTracer",
    "SCHEMA_VERSION",
    "Span",
    "Tracer",
    "active_profiling",
    "disable_profiling",
    "enable_profiling",
    "ensure_tracer",
    "percentile",
    "profiled",
    "profiling",
    "stage_breakdown",
    "validate_trace",
]
