"""Sharded batch execution with per-shard fault isolation.

WILSON's divide-and-conquer design makes each topic's timeline cheap
(``O(T^2 + t*N^2)``), so a dataset sweep -- or a burst of real-time
queries -- is embarrassingly parallel *across* topics. This module is the
process-level exploitation of that decomposition: :func:`run_sharded`
fans a picklable task out over a pool of workers, one shard per item,
and merges the results back **in input order** so parallel sweeps stay
deterministic.

The scheduler's contract is fault isolation, not just speed:

* a shard whose worker **raises** is retried up to ``retries`` times
  with exponential backoff;
* a shard whose worker **hangs** past ``timeout_seconds`` has its worker
  process killed (the pool is rebuilt; innocent in-flight shards are
  resubmitted without an attempt penalty);
* a shard whose worker returns a **corrupt shape** (rejected by the
  optional ``validate`` hook) counts as a failure like any other;
* a shard that exhausts its attempts is recorded as a **degraded**
  :class:`ShardResult` -- the sweep always completes and always returns
  one result per input item.

Backends (:attr:`ShardPolicy.backend`):

``"process"``
    A :class:`concurrent.futures.ProcessPoolExecutor`. The only backend
    that can *kill* a hung worker: on timeout the pool's worker
    processes are terminated and the pool is rebuilt. Tasks, items and
    results must be picklable.
``"thread"``
    A :class:`concurrent.futures.ThreadPoolExecutor`. For shard tasks
    that share in-process read-only state (the real-time system's search
    index, the thread-safe :class:`~repro.text.analysis.TokenCache`).
    Timeouts are cooperative: the attempt is abandoned and retried, but
    the runaway thread cannot be killed and its eventual result is
    discarded.
``"inline"``
    Sequential execution in the calling thread -- the deterministic
    reference path. Retry/degrade semantics apply; timeouts are not
    enforced (nothing to kill).

Telemetry (the ``runtime.*`` contract, see docs/runtime.md and
docs/observability.md): the sweep runs inside a ``runtime`` span and
counts ``runtime.shards`` / ``runtime.ok`` / ``runtime.degraded`` /
``runtime.retries`` / ``runtime.timeouts`` / ``runtime.failures``. An
optional :class:`~repro.obs.metrics.Metrics` registry additionally
records the per-shard latency histogram ``runtime.shard_seconds``.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.obs.metrics import Metrics
from repro.obs.trace import Tracer, ensure_tracer

#: Valid :attr:`ShardPolicy.backend` values.
BACKENDS = ("process", "thread", "inline")

#: Shard statuses.
STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"


@dataclass(frozen=True)
class ShardPolicy:
    """How a sharded sweep schedules, times out, and retries its shards.

    ``retries`` counts *re*-attempts: a shard runs at most
    ``1 + retries`` times before it is recorded as degraded.
    ``timeout_seconds=None`` disables deadlines. Backoff before the
    n-th retry is ``backoff_seconds * backoff_multiplier**(n-1)``,
    scheduled without blocking other shards.
    """

    workers: int = 1
    timeout_seconds: Optional[float] = None
    retries: int = 2
    backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    backend: str = "process"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError(
                f"timeout_seconds must be None or > 0, got "
                f"{self.timeout_seconds}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_seconds < 0:
            raise ValueError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got "
                f"{self.backoff_multiplier}"
            )
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )

    @property
    def max_attempts(self) -> int:
        return 1 + self.retries

    def backoff_for(self, completed_attempts: int) -> float:
        """Backoff delay before the attempt after *completed_attempts*."""
        if completed_attempts <= 0 or self.backoff_seconds == 0:
            return 0.0
        return self.backoff_seconds * (
            self.backoff_multiplier ** (completed_attempts - 1)
        )


@dataclass
class ShardResult:
    """The outcome of one shard: a value, or a degraded record.

    ``attempts`` counts executions that *charged* this shard (an attempt
    lost to another shard's pool kill is rescheduled for free).
    ``failures`` keeps one human-readable line per charged failure;
    ``error`` is the last of them (``None`` for a first-try success).
    """

    index: int
    key: str
    status: str = STATUS_OK
    value: Any = None
    attempts: int = 0
    timeouts: int = 0
    seconds: float = 0.0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def degraded(self) -> bool:
        return self.status == STATUS_DEGRADED

    @property
    def retried(self) -> int:
        """Charged attempts beyond the first."""
        return max(0, self.attempts - 1)

    @property
    def error(self) -> Optional[str]:
        return self.failures[-1] if self.failures else None


@dataclass
class ShardReport:
    """All shard results of one sweep, in input order, plus sweep totals."""

    results: List[ShardResult]
    seconds: float
    policy: ShardPolicy

    @property
    def ok_results(self) -> List[ShardResult]:
        return [r for r in self.results if r.ok]

    @property
    def degraded_results(self) -> List[ShardResult]:
        return [r for r in self.results if r.degraded]

    @property
    def num_degraded(self) -> int:
        return len(self.degraded_results)

    @property
    def total_retries(self) -> int:
        return sum(r.retried for r in self.results)

    @property
    def total_timeouts(self) -> int:
        return sum(r.timeouts for r in self.results)

    def values(self, default: Any = None) -> List[Any]:
        """Shard values in input order; degraded shards yield *default*."""
        return [r.value if r.ok else default for r in self.results]

    def raise_if_degraded(self) -> "ShardReport":
        """Raise :class:`DegradedSweepError` unless every shard is ok."""
        if self.num_degraded:
            raise DegradedSweepError(self.degraded_results)
        return self


class DegradedSweepError(RuntimeError):
    """A sweep finished with degraded shards a caller refused to accept."""

    def __init__(self, degraded: Sequence[ShardResult]) -> None:
        self.degraded = list(degraded)
        lines = ", ".join(
            f"{r.key}: {r.error}" for r in self.degraded
        )
        super().__init__(
            f"{len(self.degraded)} shard(s) degraded ({lines})"
        )


@dataclass
class _ShardState:
    """Scheduler-internal bookkeeping for one shard."""

    index: int
    key: str
    item: Any
    attempts: int = 0
    timeouts: int = 0
    seconds: float = 0.0
    failures: List[str] = field(default_factory=list)
    ready_at: float = 0.0  # monotonic eligibility time (backoff)

    def charge_failure(
        self, policy: ShardPolicy, message: str, timed_out: bool = False
    ) -> None:
        self.attempts += 1
        self.failures.append(message)
        if timed_out:
            self.timeouts += 1
        self.ready_at = time.perf_counter() + policy.backoff_for(
            self.attempts
        )

    @property
    def exhausted(self) -> bool:
        return bool(self.failures) and self.attempts >= 0

    def result(self, status: str, value: Any = None) -> ShardResult:
        return ShardResult(
            index=self.index,
            key=self.key,
            status=status,
            value=value,
            attempts=self.attempts,
            timeouts=self.timeouts,
            seconds=self.seconds,
            failures=list(self.failures),
        )


def _describe_failure(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _validate_value(
    validate: Optional[Callable[[Any], None]], value: Any
) -> Optional[str]:
    """Run the shape validator; a failure string, or ``None`` when valid."""
    if validate is None:
        return None
    try:
        validate(value)
    except Exception as exc:  # noqa: BLE001 -- any rejection degrades
        return f"invalid result: {_describe_failure(exc)}"
    return None


def _terminate_pool(executor: ProcessPoolExecutor) -> None:
    """Kill a process pool, including any hung worker.

    ``ProcessPoolExecutor`` has no public kill switch; terminating the
    worker processes is the only way to reclaim one stuck in an
    unbounded computation. ``_processes`` is a CPython implementation
    detail, so fall back to a plain (non-killing) shutdown if it moves
    -- the scheduler stays correct either way, it just leaks the hung
    worker until process exit.
    """
    processes = getattr(executor, "_processes", None)
    if processes:
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already-dead workers
                pass
    executor.shutdown(wait=False, cancel_futures=True)


def run_sharded(
    task: Callable[[Any], Any],
    items: Sequence[Any],
    policy: Optional[ShardPolicy] = None,
    *,
    keys: Optional[Sequence[str]] = None,
    validate: Optional[Callable[[Any], None]] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[Metrics] = None,
) -> ShardReport:
    """Run ``task(item)`` for every item under *policy*; merge in order.

    Parameters
    ----------
    task:
        The per-shard callable. Must be picklable (a module-level
        function or :func:`functools.partial` of one) for the process
        backend.
    items:
        One shard per item. Items (and results) must be picklable for
        the process backend.
    keys:
        Optional human-readable shard names for reports and telemetry;
        defaults to ``shard[<index>]``.
    validate:
        Optional shape check called on every returned value; raising
        marks the attempt failed ("corrupt shape"), subject to the same
        retry/degrade policy as a crash.
    tracer, metrics:
        Optional observability sinks (see module docstring).

    Returns
    -------
    A :class:`ShardReport` with exactly ``len(items)`` results in input
    order. Degraded shards carry their failure history; the sweep never
    raises because of a failing shard.
    """
    policy = policy or ShardPolicy()
    tracer = ensure_tracer(tracer)
    if keys is None:
        keys = [f"shard[{i}]" for i in range(len(items))]
    elif len(keys) != len(items):
        raise ValueError(
            f"keys/items length mismatch: {len(keys)} != {len(items)}"
        )
    states = [
        _ShardState(index=i, key=key, item=item)
        for i, (key, item) in enumerate(zip(keys, items))
    ]
    started = time.perf_counter()
    with tracer.span("runtime"):
        tracer.count("runtime.shards", len(states))
        if policy.backend == "inline" or not states:
            results = _run_inline(task, states, policy, validate)
        else:
            results = _run_pooled(task, states, policy, validate)
        report = ShardReport(
            results=results,
            seconds=time.perf_counter() - started,
            policy=policy,
        )
        tracer.count("runtime.ok", len(report.ok_results))
        tracer.count("runtime.degraded", report.num_degraded)
        tracer.count("runtime.retries", report.total_retries)
        tracer.count("runtime.timeouts", report.total_timeouts)
        tracer.count(
            "runtime.failures",
            sum(len(r.failures) for r in report.results),
        )
    if metrics is not None:
        metrics.counter("runtime.shards").inc(len(report.results))
        metrics.counter("runtime.ok").inc(len(report.ok_results))
        metrics.counter("runtime.degraded").inc(report.num_degraded)
        metrics.counter("runtime.retries").inc(report.total_retries)
        metrics.counter("runtime.timeouts").inc(report.total_timeouts)
        histogram = metrics.histogram("runtime.shard_seconds")
        for result in report.ok_results:
            histogram.observe(result.seconds)
    return report


# -- inline backend ------------------------------------------------------------


def _run_inline(
    task: Callable[[Any], Any],
    states: List[_ShardState],
    policy: ShardPolicy,
    validate: Optional[Callable[[Any], None]],
) -> List[ShardResult]:
    results: List[Optional[ShardResult]] = [None] * len(states)
    for state in states:
        while True:
            delay = state.ready_at - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            attempt_start = time.perf_counter()
            try:
                value = task(state.item)
            except Exception as exc:  # noqa: BLE001 -- isolate the shard
                state.charge_failure(policy, _describe_failure(exc))
            else:
                problem = _validate_value(validate, value)
                if problem is None:
                    state.attempts += 1
                    state.seconds = time.perf_counter() - attempt_start
                    results[state.index] = state.result(STATUS_OK, value)
                    break
                state.charge_failure(policy, problem)
            if state.attempts >= policy.max_attempts:
                results[state.index] = state.result(STATUS_DEGRADED)
                break
    return results  # type: ignore[return-value]


# -- pooled backends (process / thread) ----------------------------------------


@dataclass
class _InFlight:
    """A submitted attempt: its shard, start time, and deadline."""

    state: _ShardState
    started: float
    deadline: Optional[float]


def _run_pooled(
    task: Callable[[Any], Any],
    states: List[_ShardState],
    policy: ShardPolicy,
    validate: Optional[Callable[[Any], None]],
) -> List[ShardResult]:
    """The shared scheduler loop for the process and thread backends."""
    results: List[Optional[ShardResult]] = [None] * len(states)
    pending: List[_ShardState] = list(states)
    in_flight: Dict[Future, _InFlight] = {}
    executor: Optional[object] = None
    is_process = policy.backend == "process"

    def make_executor():
        if is_process:
            return ProcessPoolExecutor(max_workers=policy.workers)
        return ThreadPoolExecutor(
            max_workers=policy.workers,
            thread_name_prefix="runtime-shard",
        )

    def settle(state: _ShardState) -> None:
        """Record a shard's final outcome or requeue it for a retry."""
        if state.attempts >= policy.max_attempts:
            results[state.index] = state.result(STATUS_DEGRADED)
        else:
            pending.append(state)

    try:
        while pending or in_flight:
            now = time.perf_counter()
            # Submit every eligible shard while workers are free.
            pending.sort(key=lambda s: (s.ready_at, s.index))
            while pending and len(in_flight) < policy.workers:
                if pending[0].ready_at > now:
                    break
                state = pending.pop(0)
                if executor is None:
                    executor = make_executor()
                future = executor.submit(task, state.item)
                deadline = (
                    now + policy.timeout_seconds
                    if policy.timeout_seconds is not None
                    else None
                )
                in_flight[future] = _InFlight(state, now, deadline)

            if not in_flight:
                # Everything is backing off; sleep until the next shard
                # becomes eligible.
                next_ready = min(s.ready_at for s in pending)
                time.sleep(max(0.0, next_ready - time.perf_counter()))
                continue

            # Wake at the earliest of: a completion, the nearest
            # deadline, or the nearest backoff expiry.
            wait_until = [
                f.deadline for f in in_flight.values()
                if f.deadline is not None
            ]
            wait_until.extend(s.ready_at for s in pending)
            timeout = (
                max(0.0, min(wait_until) - time.perf_counter())
                if wait_until
                else None
            )
            done, _ = wait(
                tuple(in_flight),
                timeout=timeout,
                return_when=FIRST_COMPLETED,
            )

            broken_pool = False
            for future in done:
                flight = in_flight.pop(future)
                state = flight.state
                try:
                    value = future.result()
                except BrokenProcessPool:
                    # A worker died hard (segfault / os._exit). The pool
                    # cannot attribute the death, so every in-flight
                    # shard is charged one attempt and the pool rebuilt.
                    broken_pool = True
                    state.charge_failure(
                        policy, "worker process died (broken pool)"
                    )
                    settle(state)
                    continue
                except Exception as exc:  # noqa: BLE001 -- shard crash
                    state.charge_failure(policy, _describe_failure(exc))
                    settle(state)
                    continue
                problem = _validate_value(validate, value)
                if problem is None:
                    state.attempts += 1
                    state.seconds = time.perf_counter() - flight.started
                    results[state.index] = state.result(STATUS_OK, value)
                else:
                    state.charge_failure(policy, problem)
                    settle(state)

            if broken_pool:
                for future, flight in list(in_flight.items()):
                    flight.state.charge_failure(
                        policy, "worker process died (broken pool)"
                    )
                    settle(flight.state)
                in_flight.clear()
                if executor is not None:
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = None
                continue

            # Deadline enforcement.
            now = time.perf_counter()
            overdue = [
                (future, flight)
                for future, flight in in_flight.items()
                if flight.deadline is not None and now >= flight.deadline
                and not future.done()
            ]
            if not overdue:
                continue
            for future, flight in overdue:
                del in_flight[future]
                flight.state.charge_failure(
                    policy,
                    f"timeout after {policy.timeout_seconds:.3g}s",
                    timed_out=True,
                )
                settle(flight.state)
            if is_process:
                # The hung worker holds a pool slot until killed; the
                # only remedy is to kill the pool. Innocent in-flight
                # shards are resubmitted without an attempt penalty.
                for future, flight in list(in_flight.items()):
                    flight.state.ready_at = 0.0
                    pending.append(flight.state)
                in_flight.clear()
                if executor is not None:
                    _terminate_pool(executor)
                    executor = None
            else:
                # Threads cannot be killed; abandon the attempt and let
                # the stray thread's eventual result fall on the floor.
                for future in (f for f, _ in overdue):
                    future.cancel()
    finally:
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
    return results  # type: ignore[return-value]
