"""Sharded batch execution for multi-topic sweeps and query bursts.

See :mod:`repro.runtime.sharding` for the scheduler and docs/runtime.md
for the sharding model, failure semantics, and telemetry contract.
"""

from repro.runtime.sharding import (
    BACKENDS,
    DegradedSweepError,
    ShardPolicy,
    ShardReport,
    ShardResult,
    run_sharded,
)

__all__ = [
    "BACKENDS",
    "DegradedSweepError",
    "ShardPolicy",
    "ShardReport",
    "ShardResult",
    "run_sharded",
]
