"""Approximate randomization significance testing (Noreen, 1989).

The paper tests WILSON's ROUGE improvements over ASMDS / TLSConstraints with
an approximate randomization test at p < 0.05 (Section 3.1.4). The test:
given paired per-timeline scores of two systems, repeatedly swap each pair
with probability 1/2 and count how often the absolute mean difference of a
shuffled assignment reaches the observed one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class SignificanceResult:
    """Outcome of an approximate randomization test."""

    observed_difference: float
    p_value: float
    num_shuffles: int

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the difference is significant at level *alpha*."""
        return self.p_value < alpha


def approximate_randomization_test(
    scores_a: Sequence[float],
    scores_b: Sequence[float],
    num_shuffles: int = 10_000,
    seed: int = 0,
) -> SignificanceResult:
    """Two-sided approximate randomization test on paired scores.

    Parameters
    ----------
    scores_a, scores_b:
        Paired per-instance scores of the two systems (same length and
        instance order).
    num_shuffles:
        Number of random sign flips; 10k gives a p-value resolution of 1e-4.
    seed:
        RNG seed for reproducibility.

    Returns
    -------
    :class:`SignificanceResult` with the add-one-smoothed p-value
    ``(extreme + 1) / (shuffles + 1)``.
    """
    if len(scores_a) != len(scores_b):
        raise ValueError(
            f"paired scores must align: {len(scores_a)} vs {len(scores_b)}"
        )
    if not scores_a:
        raise ValueError("cannot test empty score lists")
    if num_shuffles < 1:
        raise ValueError(f"num_shuffles must be >= 1, got {num_shuffles}")

    n = len(scores_a)
    observed = abs(
        sum(scores_a) / n - sum(scores_b) / n
    )
    rng = random.Random(seed)
    extreme = 0
    for _ in range(num_shuffles):
        sum_a = 0.0
        sum_b = 0.0
        for a, b in zip(scores_a, scores_b):
            if rng.random() < 0.5:
                a, b = b, a
            sum_a += a
            sum_b += b
        if abs(sum_a / n - sum_b / n) >= observed:
            extreme += 1
    return SignificanceResult(
        observed_difference=observed,
        p_value=(extreme + 1) / (num_shuffles + 1),
        num_shuffles=num_shuffles,
    )
