"""ROUGE summary-evaluation metrics (Lin, 2004).

Implements the metrics the paper reports with ROUGE-1.5.5 semantics:

* **ROUGE-N** (N = 1, 2): n-gram overlap F1 with clipped counts;
* **ROUGE-S\\*** : skip-bigram overlap F1 with *unlimited* gap (the ``S*``
  configuration), including the quadratic pair expansion.

Preprocessing matches the common ROUGE-1.5.5 invocation used by the TLS
literature: lower-casing, Porter stemming (``-m``) and stopword removal
(``-s``). Both knobs are exposed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Counter as CounterType
from typing import Dict, List, Sequence, Tuple, Union

from repro.text.tokenize import tokenize_for_matching

TextLike = Union[str, Sequence[str]]


@dataclass(frozen=True)
class RougeScore:
    """Precision / recall / F1 triple."""

    precision: float
    recall: float
    f1: float

    @classmethod
    def from_counts(
        cls, hits: float, system_total: float, reference_total: float
    ) -> "RougeScore":
        precision = hits / system_total if system_total > 0 else 0.0
        recall = hits / reference_total if reference_total > 0 else 0.0
        if precision + recall == 0:
            return cls(precision, recall, 0.0)
        return cls(
            precision,
            recall,
            2 * precision * recall / (precision + recall),
        )


def _to_tokens(
    text: TextLike, stem: bool, drop_stopwords: bool
) -> List[str]:
    """Normalise raw text (or a list of sentences) into scoring tokens."""
    if isinstance(text, str):
        text = [text]
    tokens: List[str] = []
    for sentence in text:
        tokens.extend(
            tokenize_for_matching(
                sentence, stem=stem, drop_stopwords=drop_stopwords
            )
        )
    return tokens


def ngram_counts(tokens: Sequence[str], n: int) -> CounterType[Tuple[str, ...]]:
    """Multiset of n-grams of *tokens*."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return Counter(
        tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)
    )


def skip_bigram_counts(
    tokens: Sequence[str],
) -> CounterType[Tuple[str, str]]:
    """Multiset of skip-bigrams with unlimited gap (ROUGE-S*)."""
    counts: CounterType[Tuple[str, str]] = Counter()
    for i in range(len(tokens)):
        first = tokens[i]
        for j in range(i + 1, len(tokens)):
            counts[(first, tokens[j])] += 1
    return counts


def _overlap(
    system: CounterType, reference: CounterType
) -> float:
    """Clipped overlapping count between two multisets."""
    if len(reference) < len(system):
        system, reference = reference, system
    return float(
        sum(
            min(count, reference[gram])
            for gram, count in system.items()
            if gram in reference
        )
    )


def rouge_n(
    system: TextLike,
    reference: TextLike,
    n: int,
    stem: bool = True,
    drop_stopwords: bool = True,
) -> RougeScore:
    """ROUGE-N F1 between a system text and a reference text."""
    system_tokens = _to_tokens(system, stem, drop_stopwords)
    reference_tokens = _to_tokens(reference, stem, drop_stopwords)
    system_counts = ngram_counts(system_tokens, n)
    reference_counts = ngram_counts(reference_tokens, n)
    return RougeScore.from_counts(
        _overlap(system_counts, reference_counts),
        sum(system_counts.values()),
        sum(reference_counts.values()),
    )


def rouge_s_star(
    system: TextLike,
    reference: TextLike,
    stem: bool = True,
    drop_stopwords: bool = True,
    max_tokens: int = 2000,
) -> RougeScore:
    """ROUGE-S* (unlimited-gap skip-bigram) F1.

    ``max_tokens`` truncates extremely long inputs before the quadratic
    pair expansion; 2000 tokens already allows ~2M skip-bigram pairs and is
    far beyond any timeline in the evaluation.
    """
    system_tokens = _to_tokens(system, stem, drop_stopwords)[:max_tokens]
    reference_tokens = _to_tokens(reference, stem, drop_stopwords)[
        :max_tokens
    ]
    system_counts = skip_bigram_counts(system_tokens)
    reference_counts = skip_bigram_counts(reference_tokens)
    return RougeScore.from_counts(
        _overlap(system_counts, reference_counts),
        sum(system_counts.values()),
        sum(reference_counts.values()),
    )


def _lcs_length(a: Sequence[str], b: Sequence[str]) -> int:
    """Length of the longest common subsequence of two token lists."""
    if not a or not b:
        return 0
    # Rolling single-row DP keeps memory linear in len(b).
    previous = [0] * (len(b) + 1)
    for token_a in a:
        current = [0]
        for j, token_b in enumerate(b, start=1):
            if token_a == token_b:
                current.append(previous[j - 1] + 1)
            else:
                current.append(max(previous[j], current[-1]))
        previous = current
    return previous[-1]


def rouge_l(
    system: TextLike,
    reference: TextLike,
    stem: bool = True,
    drop_stopwords: bool = True,
) -> RougeScore:
    """ROUGE-L: longest-common-subsequence F1.

    Not reported in the paper, but part of any complete ROUGE toolkit;
    provided for downstream users. Uses the summary-level formulation on
    the concatenated token streams.
    """
    system_tokens = _to_tokens(system, stem, drop_stopwords)
    reference_tokens = _to_tokens(reference, stem, drop_stopwords)
    lcs = _lcs_length(system_tokens, reference_tokens)
    return RougeScore.from_counts(
        float(lcs), len(system_tokens), len(reference_tokens)
    )


def rouge_scores(
    system: TextLike,
    reference: TextLike,
    stem: bool = True,
    drop_stopwords: bool = True,
) -> Dict[str, RougeScore]:
    """All three paper metrics plus ROUGE-L."""
    return {
        "rouge-1": rouge_n(system, reference, 1, stem, drop_stopwords),
        "rouge-2": rouge_n(system, reference, 2, stem, drop_stopwords),
        "rouge-s*": rouge_s_star(system, reference, stem, drop_stopwords),
        "rouge-l": rouge_l(system, reference, stem, drop_stopwords),
    }
