"""Per-date diagnostics: *why* a timeline scored what it scored.

Aggregate ROUGE numbers hide which dates carried the score. This module
breaks a system/reference pair down date by date -- exact hits, near
misses, misses and spurious selections, each with its content overlap --
the report a practitioner reads before deciding whether the date stage
or the sentence stage needs work.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import List, Optional

from repro.evaluation.rouge import rouge_n
from repro.tlsdata.types import Timeline


@dataclass(frozen=True)
class DateDiagnostic:
    """The fate of one reference date in the generated timeline.

    ``status`` is one of ``exact`` (same date selected), ``near``
    (a selected date within the tolerance), or ``missed``.
    ``content_f1`` is the ROUGE-1 F1 of the matched day's summary against
    the reference summary (0.0 for misses).
    """

    reference_date: datetime.date
    status: str
    matched_date: Optional[datetime.date]
    gap_days: Optional[int]
    content_f1: float


@dataclass(frozen=True)
class TimelineDiagnostics:
    """Full per-date breakdown of a system/reference pair."""

    per_date: List[DateDiagnostic]
    spurious_dates: List[datetime.date]

    @property
    def num_exact(self) -> int:
        return sum(1 for d in self.per_date if d.status == "exact")

    @property
    def num_near(self) -> int:
        return sum(1 for d in self.per_date if d.status == "near")

    @property
    def num_missed(self) -> int:
        return sum(1 for d in self.per_date if d.status == "missed")

    def summary_lines(self) -> List[str]:
        """Readable report lines, one per reference date plus a footer."""
        lines = []
        for diagnostic in self.per_date:
            if diagnostic.status == "exact":
                detail = f"content R1 {diagnostic.content_f1:.2f}"
            elif diagnostic.status == "near":
                detail = (
                    f"matched {diagnostic.matched_date} "
                    f"({diagnostic.gap_days:+d}d), "
                    f"content R1 {diagnostic.content_f1:.2f}"
                )
            else:
                detail = "no selected date within tolerance"
            lines.append(
                f"{diagnostic.reference_date} [{diagnostic.status:6s}] "
                f"{detail}"
            )
        lines.append(
            f"exact {self.num_exact} / near {self.num_near} / "
            f"missed {self.num_missed} / spurious "
            f"{len(self.spurious_dates)}"
        )
        return lines


def diagnose_timeline(
    system: Timeline,
    reference: Timeline,
    tolerance_days: int = 3,
) -> TimelineDiagnostics:
    """Break down how *system* covers each reference date.

    Each reference date is classified as ``exact``, ``near`` (nearest
    selected date within ±*tolerance_days*), or ``missed``; system dates
    matching no reference date within the tolerance are reported as
    spurious.
    """
    if tolerance_days < 0:
        raise ValueError(
            f"tolerance_days must be >= 0, got {tolerance_days}"
        )
    system_dates = system.dates
    per_date: List[DateDiagnostic] = []
    used_for_reference: set = set()
    for reference_date in reference.dates:
        reference_summary = reference.summary(reference_date)
        if reference_date in system:
            used_for_reference.add(reference_date)
            per_date.append(
                DateDiagnostic(
                    reference_date=reference_date,
                    status="exact",
                    matched_date=reference_date,
                    gap_days=0,
                    content_f1=rouge_n(
                        system.summary(reference_date),
                        reference_summary,
                        1,
                    ).f1,
                )
            )
            continue
        near = [
            date
            for date in system_dates
            if abs((date - reference_date).days) <= tolerance_days
        ]
        if near:
            matched = min(
                near, key=lambda date: abs((date - reference_date).days)
            )
            used_for_reference.add(matched)
            per_date.append(
                DateDiagnostic(
                    reference_date=reference_date,
                    status="near",
                    matched_date=matched,
                    gap_days=(matched - reference_date).days,
                    content_f1=rouge_n(
                        system.summary(matched), reference_summary, 1
                    ).f1,
                )
            )
            continue
        per_date.append(
            DateDiagnostic(
                reference_date=reference_date,
                status="missed",
                matched_date=None,
                gap_days=None,
                content_f1=0.0,
            )
        )

    reference_dates = reference.dates
    spurious = [
        date
        for date in system_dates
        if all(
            abs((date - reference_date).days) > tolerance_days
            for reference_date in reference_dates
        )
    ]
    return TimelineDiagnostics(per_date=per_date, spurious_dates=spurious)
