"""Mean Absolute Percentage Error (Figure 6)."""

from __future__ import annotations

from typing import Sequence


def mape(predicted: Sequence[float], actual: Sequence[float]) -> float:
    """MAPE of predicted vs. actual values, as a fraction (0.2 = 20%).

    Used to score predicted timeline-date counts against the ground-truth
    counts. Actual values must be non-zero.
    """
    if len(predicted) != len(actual):
        raise ValueError(
            f"predicted ({len(predicted)}) and actual ({len(actual)}) "
            "must align"
        )
    if not predicted:
        raise ValueError("cannot compute MAPE of empty sequences")
    total = 0.0
    for p, a in zip(predicted, actual):
        if a == 0:
            raise ValueError("actual values must be non-zero for MAPE")
        total += abs(p - a) / abs(a)
    return total / len(predicted)
