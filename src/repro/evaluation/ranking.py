"""Rank-aware measurements for the journalist evaluation (Table 9)."""

from __future__ import annotations

import math
from typing import Sequence


def mean_reciprocal_rank(ranks: Sequence[int]) -> float:
    """MRR of a method given its 1-based rank in each evaluation."""
    if not ranks:
        return 0.0
    for rank in ranks:
        if rank < 1:
            raise ValueError(f"ranks are 1-based, got {rank}")
    return sum(1.0 / rank for rank in ranks) / len(ranks)


def dcg(ranks: Sequence[int]) -> float:
    """Discounted cumulative gain a method accrues over evaluations.

    Each evaluation contributes ``1 / log2(rank + 1)``: rank 1 is worth 1.0,
    rank 2 ~0.63, rank 3 0.5 -- the convention that reproduces the scale of
    the paper's Table 9 (max 10.0 over ten evaluations).
    """
    if not ranks:
        return 0.0
    total = 0.0
    for rank in ranks:
        if rank < 1:
            raise ValueError(f"ranks are 1-based, got {rank}")
        total += 1.0 / math.log2(rank + 1)
    return total


def rank_histogram(ranks: Sequence[int], max_rank: int = 3) -> list:
    """Counts of 1st/2nd/.../max_rank placements (Table 9's rank columns)."""
    histogram = [0] * max_rank
    for rank in ranks:
        if 1 <= rank <= max_rank:
            histogram[rank - 1] += 1
    return histogram
