"""Bootstrap confidence intervals for per-instance metric means.

The paper reports point estimates plus an approximate randomization test;
a reproduction repo should also quantify the uncertainty of its own
numbers, since the synthetic datasets have only 19/22 instances. This
module provides percentile-bootstrap confidence intervals over the
per-timeline scores produced by the experiment runner.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class ConfidenceInterval:
    """A percentile bootstrap confidence interval around a mean."""

    mean: float
    lower: float
    upper: float
    confidence: float
    num_resamples: int

    def __contains__(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    def __str__(self) -> str:
        return (
            f"{self.mean:.4f} "
            f"[{self.lower:.4f}, {self.upper:.4f}]"
        )


def bootstrap_mean_ci(
    scores: Sequence[float],
    confidence: float = 0.95,
    num_resamples: int = 10_000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile bootstrap CI of the mean of *scores*.

    Parameters
    ----------
    scores:
        Per-instance metric values (e.g. one concat ROUGE-2 per timeline).
    confidence:
        Two-sided coverage, e.g. 0.95.
    num_resamples:
        Bootstrap resamples; 10k keeps percentile noise below ~1e-3.
    seed:
        RNG seed for reproducibility.
    """
    if not scores:
        raise ValueError("cannot bootstrap an empty score list")
    if not 0.0 < confidence < 1.0:
        raise ValueError(
            f"confidence must lie in (0, 1), got {confidence}"
        )
    if num_resamples < 1:
        raise ValueError(
            f"num_resamples must be >= 1, got {num_resamples}"
        )
    n = len(scores)
    mean = sum(scores) / n
    rng = random.Random(seed)
    resampled_means = []
    for _ in range(num_resamples):
        total = 0.0
        for _ in range(n):
            total += scores[rng.randrange(n)]
        resampled_means.append(total / n)
    resampled_means.sort()
    alpha = (1.0 - confidence) / 2.0
    lower_index = int(alpha * num_resamples)
    upper_index = min(
        num_resamples - 1, int((1.0 - alpha) * num_resamples)
    )
    return ConfidenceInterval(
        mean=mean,
        lower=resampled_means[lower_index],
        upper=resampled_means[upper_index],
        confidence=confidence,
        num_resamples=num_resamples,
    )


def bootstrap_difference_ci(
    scores_a: Sequence[float],
    scores_b: Sequence[float],
    confidence: float = 0.95,
    num_resamples: int = 10_000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Paired bootstrap CI of ``mean(a) - mean(b)``.

    Instances are resampled jointly (paired), the right design when two
    systems were evaluated on the same timelines. An interval excluding
    zero corroborates a significant difference.
    """
    if len(scores_a) != len(scores_b):
        raise ValueError(
            f"paired scores must align: {len(scores_a)} vs {len(scores_b)}"
        )
    differences = [a - b for a, b in zip(scores_a, scores_b)]
    return bootstrap_mean_ci(
        differences,
        confidence=confidence,
        num_resamples=num_resamples,
        seed=seed,
    )
