"""Evaluation substrate: ROUGE, timeline metrics, significance, rankings."""

from repro.evaluation.bootstrap import (
    ConfidenceInterval,
    bootstrap_difference_ci,
    bootstrap_mean_ci,
)
from repro.evaluation.diagnostics import (
    DateDiagnostic,
    TimelineDiagnostics,
    diagnose_timeline,
)
from repro.evaluation.rouge import (
    RougeScore,
    rouge_l,
    rouge_n,
    rouge_s_star,
    rouge_scores,
)
from repro.evaluation.timeline_rouge import (
    TimelineRouge,
    agreement_rouge,
    align_rouge,
    concat_rouge,
)
from repro.evaluation.date_metrics import (
    date_coverage,
    date_f1,
    date_precision_recall,
)
from repro.evaluation.significance import approximate_randomization_test
from repro.evaluation.ranking import dcg, mean_reciprocal_rank
from repro.evaluation.mape import mape
from repro.evaluation.journalist import JournalistPanel, JudgeWeights

__all__ = [
    "ConfidenceInterval",
    "DateDiagnostic",
    "JournalistPanel",
    "JudgeWeights",
    "RougeScore",
    "TimelineDiagnostics",
    "TimelineRouge",
    "agreement_rouge",
    "align_rouge",
    "approximate_randomization_test",
    "bootstrap_difference_ci",
    "bootstrap_mean_ci",
    "concat_rouge",
    "date_coverage",
    "date_f1",
    "date_precision_recall",
    "dcg",
    "diagnose_timeline",
    "mape",
    "mean_reciprocal_rank",
    "rouge_l",
    "rouge_n",
    "rouge_s_star",
    "rouge_scores",
]
