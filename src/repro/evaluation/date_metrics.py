"""Date-selection metrics: F1, coverage, uniformity (Sections 2.2, 3.1.4)."""

from __future__ import annotations

import datetime
from typing import Sequence, Tuple

from repro.core.date_selection import uniformity  # noqa: F401  (re-export)


def date_precision_recall(
    selected: Sequence[datetime.date],
    reference: Sequence[datetime.date],
) -> Tuple[float, float]:
    """Exact-match precision and recall of a date selection."""
    selected_set = set(selected)
    reference_set = set(reference)
    if not selected_set or not reference_set:
        return 0.0, 0.0
    hits = len(selected_set & reference_set)
    return hits / len(selected_set), hits / len(reference_set)


def date_f1(
    selected: Sequence[datetime.date],
    reference: Sequence[datetime.date],
) -> float:
    """Exact-match F1 of a date selection."""
    precision, recall = date_precision_recall(selected, reference)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def date_coverage(
    selected: Sequence[datetime.date],
    reference: Sequence[datetime.date],
    tolerance_days: int = 3,
) -> float:
    """Fraction of reference dates with a selected date within ±tolerance.

    Section 2.2.2: a ground-truth date ``g`` counts as covered when any
    selected date lies within ``g ± tolerance_days``.
    """
    if tolerance_days < 0:
        raise ValueError(
            f"tolerance_days must be >= 0, got {tolerance_days}"
        )
    if not reference:
        return 0.0
    selected_set = set(selected)
    covered = 0
    for target in reference:
        for offset in range(-tolerance_days, tolerance_days + 1):
            if target + datetime.timedelta(days=offset) in selected_set:
                covered += 1
                break
    return covered / len(reference)
