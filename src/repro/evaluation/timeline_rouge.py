"""Timeline-aware ROUGE (Martschat & Markert, 2017).

Plain ROUGE over concatenated summaries ignores *when* content is placed on
the timeline. The tilse evaluation library the paper uses adds two
time-sensitive variants, reproduced here from their published definitions:

* **concat** -- all daily summaries concatenated; date placement ignored.
* **agreement** -- only n-grams placed on a date that appears in *both*
  timelines can match; precision/recall denominators still count all
  content, so putting good text on a wrong date costs precision.
* **align+ m:1** -- every system date is aligned to its best reference date
  (several system dates may share one reference date); matched n-gram
  counts are discounted by ``1 / (1 + day_distance)``, so near-miss dates
  receive partial credit.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.evaluation.rouge import (
    RougeScore,
    _overlap,
    _to_tokens,
    ngram_counts,
)
from repro.tlsdata.types import Timeline


@dataclass(frozen=True)
class TimelineRouge:
    """The full tilse-style metric set for one system/reference pair."""

    concat: Dict[int, RougeScore]
    agreement: Dict[int, RougeScore]
    align: Dict[int, RougeScore]

    def row(self) -> Dict[str, float]:
        """Flat mapping used by the Table 7 harness."""
        return {
            "concat_r1": self.concat[1].f1,
            "concat_r2": self.concat[2].f1,
            "agreement_r1": self.agreement[1].f1,
            "agreement_r2": self.agreement[2].f1,
            "align_r1": self.align[1].f1,
            "align_r2": self.align[2].f1,
        }


def _date_counts(
    timeline: Timeline, n: int, stem: bool, drop_stopwords: bool
) -> Dict[datetime.date, Dict]:
    counts = {}
    for date, sentences in timeline.items():
        tokens = _to_tokens(sentences, stem, drop_stopwords)
        counts[date] = ngram_counts(tokens, n)
    return counts


def concat_rouge(
    system: Timeline,
    reference: Timeline,
    n: int,
    stem: bool = True,
    drop_stopwords: bool = True,
) -> RougeScore:
    """ROUGE-N over the chronologically concatenated summaries."""
    system_tokens = _to_tokens(
        system.all_sentences(), stem, drop_stopwords
    )
    reference_tokens = _to_tokens(
        reference.all_sentences(), stem, drop_stopwords
    )
    system_counts = ngram_counts(system_tokens, n)
    reference_counts = ngram_counts(reference_tokens, n)
    return RougeScore.from_counts(
        _overlap(system_counts, reference_counts),
        sum(system_counts.values()),
        sum(reference_counts.values()),
    )


def agreement_rouge(
    system: Timeline,
    reference: Timeline,
    n: int,
    stem: bool = True,
    drop_stopwords: bool = True,
) -> RougeScore:
    """ROUGE-N restricted to exactly matching dates.

    Hits accumulate only on dates present in both timelines; the
    denominators cover *all* system / reference content.
    """
    system_by_date = _date_counts(system, n, stem, drop_stopwords)
    reference_by_date = _date_counts(reference, n, stem, drop_stopwords)
    hits = 0.0
    for date, system_counts in system_by_date.items():
        reference_counts = reference_by_date.get(date)
        if reference_counts:
            hits += _overlap(system_counts, reference_counts)
    system_total = sum(
        sum(c.values()) for c in system_by_date.values()
    )
    reference_total = sum(
        sum(c.values()) for c in reference_by_date.values()
    )
    return RougeScore.from_counts(hits, system_total, reference_total)


def _best_alignment(
    system_date: datetime.date,
    system_counts: Dict,
    reference_by_date: Dict[datetime.date, Dict],
) -> Tuple[Optional[datetime.date], float]:
    """The reference date maximising discounted overlap for a system date."""
    best_date: Optional[datetime.date] = None
    best_value = 0.0
    for reference_date, reference_counts in reference_by_date.items():
        distance = abs((system_date - reference_date).days)
        discount = 1.0 / (1.0 + distance)
        value = discount * _overlap(system_counts, reference_counts)
        if value > best_value or (
            value == best_value
            and best_date is not None
            and value > 0
            and distance
            < abs((system_date - best_date).days)
        ):
            best_value = value
            best_date = reference_date
    return best_date, best_value


def align_rouge(
    system: Timeline,
    reference: Timeline,
    n: int,
    stem: bool = True,
    drop_stopwords: bool = True,
    mode: str = "m:1",
) -> RougeScore:
    """Align-based ROUGE-N with date alignment (align+).

    ``mode='m:1'`` (the paper's choice): each system date is aligned to
    the reference date maximising the distance-discounted overlap;
    several system dates may share a reference date.

    ``mode='1:1'``: the globally optimal one-to-one assignment between
    system and reference dates (Hungarian algorithm over discounted
    overlaps), the stricter variant from Martschat & Markert (2017).

    The discounted hits of all aligned pairs form the numerator; the
    denominators count all system / reference content.
    """
    if mode not in ("m:1", "1:1"):
        raise ValueError(f"mode must be 'm:1' or '1:1', got {mode!r}")
    system_by_date = _date_counts(system, n, stem, drop_stopwords)
    reference_by_date = _date_counts(reference, n, stem, drop_stopwords)
    system_total = sum(sum(c.values()) for c in system_by_date.values())
    reference_total = sum(
        sum(c.values()) for c in reference_by_date.values()
    )
    if not system_by_date or not reference_by_date:
        return RougeScore.from_counts(0.0, system_total, reference_total)

    if mode == "m:1":
        hits = 0.0
        for system_date, system_counts in system_by_date.items():
            _, value = _best_alignment(
                system_date, system_counts, reference_by_date
            )
            hits += value
        return RougeScore.from_counts(
            hits, system_total, reference_total
        )

    # 1:1 — maximum-weight bipartite assignment over discounted overlaps.
    from scipy.optimize import linear_sum_assignment

    system_dates = list(system_by_date)
    reference_dates = list(reference_by_date)
    weights = np.zeros(
        (len(system_dates), len(reference_dates)), dtype=np.float64
    )
    for i, system_date in enumerate(system_dates):
        for j, reference_date in enumerate(reference_dates):
            distance = abs((system_date - reference_date).days)
            weights[i, j] = _overlap(
                system_by_date[system_date],
                reference_by_date[reference_date],
            ) / (1.0 + distance)
    rows, cols = linear_sum_assignment(-weights)
    hits = float(weights[rows, cols].sum())
    return RougeScore.from_counts(hits, system_total, reference_total)


def timeline_rouge(
    system: Timeline,
    reference: Timeline,
    orders: Sequence[int] = (1, 2),
    stem: bool = True,
    drop_stopwords: bool = True,
) -> TimelineRouge:
    """Compute concat / agreement / align ROUGE for several n-gram orders."""
    return TimelineRouge(
        concat={
            n: concat_rouge(system, reference, n, stem, drop_stopwords)
            for n in orders
        },
        agreement={
            n: agreement_rouge(system, reference, n, stem, drop_stopwords)
            for n in orders
        },
        align={
            n: align_rouge(system, reference, n, stem, drop_stopwords)
            for n in orders
        },
    )
