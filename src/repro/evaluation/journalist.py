"""Simulated journalist evaluation (Table 9).

The paper had two Washington Post journalists rank three machine-generated
timelines against the human-written reference on *comprehensiveness* and
*readability*. Human judges are unavailable here, so a seeded panel of
"journalist proxies" scores each candidate timeline by:

* **content fidelity** -- concat ROUGE-2 F1 against the reference (does the
  timeline say the right things);
* **date coverage** -- fraction of reference dates covered within ±3 days
  (does it cover the story's beats);
* **readability** -- a penalty for over-long or fragment-like summary
  sentences.

Each judge perturbs the blended score with Gaussian noise and produces a
ranking; the panel aggregates by mean rank (ties broken by blended score).
EXPERIMENTS.md labels the resulting Table 9 as *simulated*.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.evaluation.date_metrics import date_coverage
from repro.evaluation.timeline_rouge import concat_rouge
from repro.text.tokenize import tokenize
from repro.tlsdata.types import Timeline


@dataclass(frozen=True)
class JudgeWeights:
    """Blend weights of the proxy judges' scoring rubric."""

    content: float = 0.6
    coverage: float = 0.3
    readability: float = 0.1
    noise_scale: float = 0.02


def readability_score(timeline: Timeline) -> float:
    """Heuristic readability in [0, 1]: penalise fragments and run-ons.

    Ideal news summary sentences run roughly 10-35 tokens; sentences far
    outside that band read as fragments or pile-ups (cf. the WILSON output
    in Table 10 that concatenates bullet fragments).
    """
    sentences = timeline.all_sentences()
    if not sentences:
        return 0.0
    total = 0.0
    for sentence in sentences:
        length = len(tokenize(sentence))
        if 10 <= length <= 35:
            total += 1.0
        elif length < 10:
            total += length / 10.0
        else:
            total += max(0.0, 1.0 - (length - 35) / 50.0)
    return total / len(sentences)


@dataclass
class JournalistPanel:
    """A seeded panel of proxy judges producing one consensus ranking."""

    num_judges: int = 2
    weights: JudgeWeights = JudgeWeights()
    seed: int = 0

    def components(
        self, candidate: Timeline, reference: Timeline
    ) -> Dict[str, float]:
        """Raw rubric components of one candidate timeline."""
        return {
            "content": concat_rouge(candidate, reference, n=2).f1,
            "coverage": date_coverage(candidate.dates, reference.dates),
            "readability": readability_score(candidate),
        }

    def blended_score(
        self, candidate: Timeline, reference: Timeline
    ) -> float:
        """The noise-free rubric score of one candidate timeline."""
        parts = self.components(candidate, reference)
        w = self.weights
        return (
            w.content * parts["content"]
            + w.coverage * parts["coverage"]
            + w.readability * parts["readability"]
        )

    def _normalized_scores(
        self,
        candidates: Mapping[str, Timeline],
        reference: Timeline,
    ) -> Dict[str, float]:
        """Weighted rubric scores with per-evaluation component scaling.

        Raw components live on very different scales (ROUGE-2 F1 tops out
        around 0.1 while coverage and readability approach 1.0), so each
        component is min-max normalised *across the candidates of this
        evaluation* before weighting -- the way a human comparing three
        timelines side by side perceives relative, not absolute, quality.
        """
        names = list(candidates)
        raw = {
            name: self.components(candidates[name], reference)
            for name in names
        }
        keys = ("content", "coverage", "readability")
        normalized: Dict[str, Dict[str, float]] = {
            name: {} for name in names
        }
        for key in keys:
            values = [raw[name][key] for name in names]
            low, high = min(values), max(values)
            for name in names:
                if high > low:
                    normalized[name][key] = (
                        (raw[name][key] - low) / (high - low)
                    )
                else:
                    normalized[name][key] = 0.5
        w = self.weights
        return {
            name: (
                w.content * normalized[name]["content"]
                + w.coverage * normalized[name]["coverage"]
                + w.readability * normalized[name]["readability"]
            )
            for name in names
        }

    def rank(
        self,
        candidates: Mapping[str, Timeline],
        reference: Timeline,
        evaluation_id: int = 0,
    ) -> Dict[str, int]:
        """Consensus 1-based ranks (1 = best) for the candidate systems.

        *evaluation_id* diversifies the judge noise across evaluations while
        keeping the whole study reproducible from ``seed``.
        """
        if not candidates:
            return {}
        names = list(candidates)
        base_scores = self._normalized_scores(candidates, reference)
        rank_sums = {name: 0.0 for name in names}
        for judge in range(self.num_judges):
            rng = random.Random(
                f"judge-{self.seed}-{judge}-{evaluation_id}"
            )
            noisy = {
                name: base_scores[name]
                + rng.gauss(0.0, self.weights.noise_scale)
                for name in names
            }
            ordered = sorted(names, key=lambda n: -noisy[n])
            for position, name in enumerate(ordered, start=1):
                rank_sums[name] += position
        consensus = sorted(
            names, key=lambda n: (rank_sums[n], -base_scores[n])
        )
        return {name: position for position, name in enumerate(consensus, 1)}

    def evaluate_study(
        self,
        evaluations: Sequence[Mapping[str, Timeline]],
        references: Sequence[Timeline],
    ) -> Dict[str, List[int]]:
        """Run the full study; returns each system's rank per evaluation."""
        if len(evaluations) != len(references):
            raise ValueError(
                "evaluations and references must align: "
                f"{len(evaluations)} vs {len(references)}"
            )
        ranks: Dict[str, List[int]] = {}
        for evaluation_id, (candidates, reference) in enumerate(
            zip(evaluations, references)
        ):
            result = self.rank(
                candidates, reference, evaluation_id=evaluation_id
            )
            for name, rank in result.items():
                ranks.setdefault(name, []).append(rank)
        return ranks
