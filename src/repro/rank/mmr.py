"""Maximal Marginal Relevance re-ranking (Carbonell & Goldstein, 1998).

WILSON's post-processing is "similar to MMR" (Section 2.3.1): it admits
sentences in relevance order while rejecting those too similar to already
selected content. The classic trade-off form lives here as a reusable
substrate; the threshold variant the paper actually uses is implemented in
:mod:`repro.core.postprocess`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.text.similarity import sparse_cosine

SparseVector = Dict[int, float]


def mmr_rerank(
    vectors: Sequence[SparseVector],
    relevance: Sequence[float],
    limit: int,
    trade_off: float = 0.7,
) -> List[int]:
    """Greedy MMR selection.

    At each step picks the candidate maximising
    ``trade_off * relevance - (1 - trade_off) * max_sim_to_selected``.

    Parameters
    ----------
    vectors:
        Sparse TF-IDF vectors of the candidates.
    relevance:
        Relevance score of each candidate (e.g. TextRank importance).
    limit:
        Number of items to select.
    trade_off:
        Lambda in [0, 1]; 1.0 reduces to plain relevance ranking.

    Returns
    -------
    Selected candidate indices in selection order.
    """
    if len(vectors) != len(relevance):
        raise ValueError(
            f"vectors ({len(vectors)}) and relevance ({len(relevance)}) "
            "must align"
        )
    if not 0.0 <= trade_off <= 1.0:
        raise ValueError(f"trade_off must lie in [0, 1], got {trade_off}")
    remaining = list(range(len(vectors)))
    selected: List[int] = []
    while remaining and len(selected) < limit:
        best_index = None
        best_score = float("-inf")
        for candidate in remaining:
            penalty = 0.0
            for chosen in selected:
                penalty = max(
                    penalty, sparse_cosine(vectors[candidate], vectors[chosen])
                )
            score = (
                trade_off * relevance[candidate]
                - (1.0 - trade_off) * penalty
            )
            if score > best_score:
                best_score = score
                best_index = candidate
        assert best_index is not None
        selected.append(best_index)
        remaining.remove(best_index)
    return selected
