"""TextRank sentence ranking (Mihalcea & Tarau, 2004).

WILSON's daily summariser runs TextRank on each selected day's sentences,
with BM25 relevance as the (asymmetric) edge weight following Barrios et al.
(2016): sentence *i* scores sentence *j* as if *i* were the query, producing
a directed graph on which PageRank selects the central sentences.

:func:`textrank_bm25` also supports a *personalised* restart distribution,
used by the optional query-biased daily summarisation extension (the
paper's "balancing local and global summarization" future-work direction):
biasing the random walk toward query-relevant sentences blends global
topical relevance into the otherwise purely local day ranking.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.graph.pagerank import DEFAULT_DAMPING, pagerank_matrix
from repro.obs.trace import Tracer
from repro.text.analysis import TokenCache, tokenize_with
from repro.text.bm25 import BM25, BM25IdMatrices, BM25Parameters


def textrank_scores(
    similarity: np.ndarray,
    damping: float = DEFAULT_DAMPING,
    personalization: Optional[np.ndarray] = None,
    tracer: Optional[Tracer] = None,
) -> np.ndarray:
    """PageRank importance scores from a sentence similarity matrix.

    The diagonal is ignored (a sentence cannot vote for itself); negative
    similarities are clipped to zero. A *personalization* vector biases
    the restart distribution (``None`` = uniform).
    """
    matrix = np.array(similarity, dtype=np.float64, copy=True)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(
            f"similarity matrix must be square, got shape {matrix.shape}"
        )
    np.fill_diagonal(matrix, 0.0)
    np.clip(matrix, 0.0, None, out=matrix)
    return pagerank_matrix(
        matrix,
        damping=damping,
        personalization=personalization,
        tracer=tracer,
        counter_prefix="textrank",
    )


def textrank_bm25(
    sentences: Sequence[str],
    damping: float = DEFAULT_DAMPING,
    params: BM25Parameters = BM25Parameters(),
    query: Sequence[str] = (),
    query_bias: float = 0.0,
    tracer: Optional[Tracer] = None,
    cache: Optional[TokenCache] = None,
) -> List[int]:
    """Rank *sentences* by BM25-TextRank; returns indices, best first.

    Ties break toward the earlier sentence, which favours ledes -- the same
    behaviour as stable sorting of PageRank scores.

    Parameters
    ----------
    query, query_bias:
        With ``query_bias > 0`` the restart distribution blends the
        uniform distribution with the sentences' BM25 relevance to
        *query*: ``(1 - bias) * uniform + bias * relevance``. ``0.0``
        (the default) is the plain TextRank the paper uses.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; each underlying
        PageRank run counts ``textrank_runs`` / ``textrank_iterations``.
    cache:
        Optional shared :class:`~repro.text.analysis.TokenCache`;
        sentences seen by any earlier stage (or a previous day) are not
        re-tokenised.
    """
    if not 0.0 <= query_bias <= 1.0:
        raise ValueError(
            f"query_bias must lie in [0, 1], got {query_bias}"
        )
    if not sentences:
        return []
    if len(sentences) == 1:
        return [0]
    if cache is not None:
        # The cache hands out interned token-id arrays, so the whole
        # BM25 graph builds without touching a string: per-document term
        # frequencies come from one np.unique over (row, token-id) keys.
        id_arrays = [cache.token_ids(text) for text in sentences]
        index = BM25IdMatrices(
            id_arrays, len(cache.vocabulary), params=params
        )
    else:
        tokenised = tokenize_with(cache, sentences)
        index = BM25(tokenised, params=params)
    adjacency = index.pairwise_matrix()

    personalization: Optional[np.ndarray] = None
    if query_bias > 0.0 and query:
        query_tokens = tokenize_with(cache, [" ".join(query)])[0]
        if cache is not None:
            vocabulary_get = cache.vocabulary.get
            query_ids = [
                token_id
                for token_id in map(vocabulary_get, query_tokens)
                if token_id is not None
            ]
            relevance = index.scores(query_ids)
        else:
            relevance = index.scores(query_tokens)
        total = relevance.sum()
        n = len(sentences)
        uniform = np.full(n, 1.0 / n)
        if total > 0:
            personalization = (
                (1.0 - query_bias) * uniform
                + query_bias * relevance / total
            )
        else:
            personalization = uniform

    scores = textrank_scores(
        adjacency,
        damping=damping,
        personalization=personalization,
        tracer=tracer,
    )
    order = np.argsort(-scores, kind="stable")
    return [int(i) for i in order]
