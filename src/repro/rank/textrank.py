"""TextRank sentence ranking (Mihalcea & Tarau, 2004).

WILSON's daily summariser runs TextRank on each selected day's sentences,
with BM25 relevance as the (asymmetric) edge weight following Barrios et al.
(2016): sentence *i* scores sentence *j* as if *i* were the query, producing
a directed graph on which PageRank selects the central sentences.

:func:`textrank_bm25` also supports a *personalised* restart distribution,
used by the optional query-biased daily summarisation extension (the
paper's "balancing local and global summarization" future-work direction):
biasing the random walk toward query-relevant sentences blends global
topical relevance into the otherwise purely local day ranking.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.graph.pagerank import DEFAULT_DAMPING, pagerank_matrix
from repro.obs.trace import Tracer
from repro.text.analysis import TokenCache, tokenize_with
from repro.text.bm25 import BM25, BM25IdMatrices, BM25Parameters

#: Default per-sentence neighbour cap for the BM25 TextRank graph. Days
#: with at most this many other sentences are untouched (the truncation
#: is a no-op below the cap), so small fixtures keep exact results while
#: heavy days drop their weakest edges before PageRank.
DEFAULT_TEXTRANK_NEIGHBORS = 128


def textrank_scores(
    similarity: np.ndarray,
    damping: float = DEFAULT_DAMPING,
    personalization: Optional[np.ndarray] = None,
    tracer: Optional[Tracer] = None,
) -> np.ndarray:
    """PageRank importance scores from a sentence similarity matrix.

    The diagonal is ignored (a sentence cannot vote for itself); negative
    similarities are clipped to zero. A *personalization* vector biases
    the restart distribution (``None`` = uniform).
    """
    matrix = np.array(similarity, dtype=np.float64, copy=True)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(
            f"similarity matrix must be square, got shape {matrix.shape}"
        )
    np.fill_diagonal(matrix, 0.0)
    np.clip(matrix, 0.0, None, out=matrix)
    return pagerank_matrix(
        matrix,
        damping=damping,
        personalization=personalization,
        tracer=tracer,
        counter_prefix="textrank",
    )


def truncate_neighbors(
    matrix: np.ndarray,
    neighbor_top_k: Optional[int],
    tracer: Optional[Tracer] = None,
) -> np.ndarray:
    """Keep only each row's ``neighbor_top_k`` strongest edges.

    A no-op (the input is returned untouched) when the cap is ``None``
    or the graph is already within it -- which makes the default cap
    exact on small days while bounding the PageRank work on heavy ones.
    Emits the ``prune.textrank_rows_truncated`` /
    ``prune.textrank_edges_dropped`` counters when truncation happens.
    """
    if neighbor_top_k is None:
        return matrix
    if neighbor_top_k < 1:
        raise ValueError(
            f"neighbor_top_k must be None or >= 1, got {neighbor_top_k}"
        )
    n = matrix.shape[0]
    if n - 1 <= neighbor_top_k:
        return matrix
    keep = np.argpartition(matrix, -neighbor_top_k, axis=1)
    keep = keep[:, -neighbor_top_k:]
    mask = np.zeros(matrix.shape, dtype=bool)
    mask[np.arange(n)[:, None], keep] = True
    truncated = np.where(mask, matrix, 0.0)
    if tracer is not None:
        tracer.count("prune.textrank_rows_truncated", n)
        tracer.count(
            "prune.textrank_edges_dropped",
            int(np.count_nonzero(matrix) - np.count_nonzero(truncated)),
        )
    return truncated


def _build_bm25_index(
    sentences: Sequence[str],
    params: BM25Parameters,
    cache: Optional[TokenCache],
):
    if cache is not None:
        # The cache hands out interned token-id arrays, so the whole
        # BM25 graph builds without touching a string: per-document term
        # frequencies come from one np.unique over (row, token-id) keys.
        id_arrays = [cache.token_ids(text) for text in sentences]
        return BM25IdMatrices(
            id_arrays, len(cache.vocabulary), params=params
        )
    tokenised = tokenize_with(cache, sentences)
    return BM25(tokenised, params=params)


def bm25_adjacency(
    sentences: Sequence[str],
    params: BM25Parameters = BM25Parameters(),
    cache: Optional[TokenCache] = None,
    neighbor_top_k: Optional[int] = None,
    tracer: Optional[Tracer] = None,
) -> np.ndarray:
    """The (optionally truncated) BM25 TextRank adjacency of *sentences*.

    Exactly the matrix :func:`textrank_bm25` ranks on; exposed so the
    daily summariser can memoise it per ``(index_version, date)`` and
    share it across concurrent queries (see
    :class:`repro.core.daily.DayMatrixCache`).
    """
    index = _build_bm25_index(sentences, params, cache)
    return truncate_neighbors(
        index.pairwise_matrix(), neighbor_top_k, tracer=tracer
    )


def textrank_bm25(
    sentences: Sequence[str],
    damping: float = DEFAULT_DAMPING,
    params: BM25Parameters = BM25Parameters(),
    query: Sequence[str] = (),
    query_bias: float = 0.0,
    tracer: Optional[Tracer] = None,
    cache: Optional[TokenCache] = None,
    neighbor_top_k: Optional[int] = None,
    adjacency: Optional[np.ndarray] = None,
) -> List[int]:
    """Rank *sentences* by BM25-TextRank; returns indices, best first.

    Ties break toward the earlier sentence, which favours ledes -- the same
    behaviour as stable sorting of PageRank scores.

    Parameters
    ----------
    query, query_bias:
        With ``query_bias > 0`` the restart distribution blends the
        uniform distribution with the sentences' BM25 relevance to
        *query*: ``(1 - bias) * uniform + bias * relevance``. ``0.0``
        (the default) is the plain TextRank the paper uses.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; each underlying
        PageRank run counts ``textrank_runs`` / ``textrank_iterations``.
    cache:
        Optional shared :class:`~repro.text.analysis.TokenCache`;
        sentences seen by any earlier stage (or a previous day) are not
        re-tokenised.
    neighbor_top_k:
        Optional per-sentence edge cap (see :func:`truncate_neighbors`);
        ``None`` keeps the dense graph.
    adjacency:
        Optional precomputed (and possibly truncated) adjacency from
        :func:`bm25_adjacency` -- the memoisation hook. Must have been
        built from exactly these sentences with the same parameters.
    """
    if not 0.0 <= query_bias <= 1.0:
        raise ValueError(
            f"query_bias must lie in [0, 1], got {query_bias}"
        )
    if not sentences:
        return []
    if len(sentences) == 1:
        return [0]
    index = None
    if adjacency is None:
        index = _build_bm25_index(sentences, params, cache)
        adjacency = truncate_neighbors(
            index.pairwise_matrix(), neighbor_top_k, tracer=tracer
        )

    personalization: Optional[np.ndarray] = None
    if query_bias > 0.0 and query:
        if index is None:
            index = _build_bm25_index(sentences, params, cache)
        query_tokens = tokenize_with(cache, [" ".join(query)])[0]
        if cache is not None:
            vocabulary_get = cache.vocabulary.get
            query_ids = [
                token_id
                for token_id in map(vocabulary_get, query_tokens)
                if token_id is not None
            ]
            relevance = index.scores(query_ids)
        else:
            relevance = index.scores(query_tokens)
        total = relevance.sum()
        n = len(sentences)
        uniform = np.full(n, 1.0 / n)
        if total > 0:
            personalization = (
                (1.0 - query_bias) * uniform
                + query_bias * relevance / total
            )
        else:
            personalization = uniform

    scores = textrank_scores(
        adjacency,
        damping=damping,
        personalization=personalization,
        tracer=tracer,
    )
    order = np.argsort(-scores, kind="stable")
    return [int(i) for i in order]
