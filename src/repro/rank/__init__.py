"""Sentence-ranking substrate: TextRank and MMR re-ranking."""

from repro.rank.mmr import mmr_rerank
from repro.rank.textrank import textrank_bm25, textrank_scores

__all__ = ["mmr_rerank", "textrank_bm25", "textrank_scores"]
