"""The TILSE submodular framework (Martschat & Markert, 2018).

The paper's primary baseline casts timeline summarization as constrained
submodular maximisation in the style of Lin & Bilmes (2011):

``F(S) = L(S) + lambda * R(S)`` where

* ``L(S) = sum_i min(sum_{j in S} w_ij, alpha * sum_j w_ij)`` rewards
  *coverage* of the corpus with clipped saturation, and
* ``R(S) = sum_k sqrt(sum_{j in S and P_k} r_j)`` rewards *diversity*
  across temporal clusters ``P_k`` (``r_j`` = mean similarity of *j* to the
  corpus).

Two temporal variants are reproduced:

* **ASMDS** -- TLS as plain multi-document summarization: a global budget
  of ``t * n`` sentences, dates emerge from the selection (temporal
  clusters are week buckets).
* **TLSConstraints** -- explicit timeline constraints: at most ``n``
  sentences per date and at most ``t`` distinct dates (clusters are day
  buckets).

Both require the **full pairwise sentence-similarity matrix** -- the
``O((TN)^2)`` computation responsible for the quadratic runtime curve of
Figure 2. The greedy argmax is evaluated with vectorised numpy, exactly as
a careful implementation of the original would be.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import TimelineMethod, group_texts_by_date
from repro.text.similarity import cosine_similarity_matrix
from repro.text.tfidf import TfidfModel
from repro.text.tokenize import tokenize_for_matching
from repro.tlsdata.types import DatedSentence, Timeline


@dataclass
class SubmodularConfig:
    """Free parameters of the submodular objective.

    ``coverage_saturation`` is the Lin-Bilmes alpha expressed as a fraction
    of each sentence's total similarity mass; ``diversity_weight`` is
    lambda. ``mode`` selects the temporal variant.
    """

    mode: str = "constraints"  # "asmds" | "constraints"
    coverage_saturation: float = 0.1
    diversity_weight: float = 6.0
    #: Week width (days) of ASMDS's temporal diversity clusters.
    cluster_days: int = 7
    #: Optional candidate-pool cap (mimics TILSE's keyword filtering);
    #: ``None`` keeps every sentence.
    max_candidates: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in ("asmds", "constraints"):
            raise ValueError(
                f"mode must be 'asmds' or 'constraints', got {self.mode!r}"
            )
        if not 0.0 < self.coverage_saturation <= 1.0:
            raise ValueError(
                "coverage_saturation must lie in (0, 1], got "
                f"{self.coverage_saturation}"
            )
        if self.diversity_weight < 0:
            raise ValueError("diversity_weight must be non-negative")


def keyword_filter(
    dated_sentences: Sequence[DatedSentence],
    query: Sequence[str],
) -> List[DatedSentence]:
    """Keep sentences sharing at least one (stemmed) token with the query.

    Mirrors the keyword pre-filtering [12] applies to make the submodular
    framework tractable; the paper runs both systems on this filtered pool
    for the Table 7 comparison.
    """
    if not query:
        return list(dated_sentences)
    query_tokens = set(tokenize_for_matching(" ".join(query)))
    if not query_tokens:
        return list(dated_sentences)
    kept = [
        sentence
        for sentence in dated_sentences
        if query_tokens & set(tokenize_for_matching(sentence.text))
    ]
    return kept if kept else list(dated_sentences)


class SubmodularSummarizer(TimelineMethod):
    """Greedy maximisation of the temporally sensitive submodular objective."""

    def __init__(self, config: Optional[SubmodularConfig] = None) -> None:
        self.config = config or SubmodularConfig()
        self.name = (
            "ASMDS" if self.config.mode == "asmds" else "TLSConstraints"
        )

    # -- candidate preparation ---------------------------------------------------

    def _candidates(
        self, dated_sentences: Sequence[DatedSentence]
    ) -> List[Tuple[datetime.date, str]]:
        grouped = group_texts_by_date(dated_sentences)
        candidates: List[Tuple[datetime.date, str]] = []
        for date in sorted(grouped):
            for text in grouped[date]:
                candidates.append((date, text))
        limit = self.config.max_candidates
        if limit is not None and len(candidates) > limit:
            candidates = candidates[:limit]
        return candidates

    def _clusters(
        self, dates: Sequence[datetime.date]
    ) -> np.ndarray:
        """Cluster id per candidate: week buckets (ASMDS) or days."""
        if not dates:
            return np.zeros(0, dtype=np.int64)
        origin = min(dates)
        if self.config.mode == "asmds":
            width = self.config.cluster_days
        else:
            width = 1
        return np.array(
            [(d - origin).days // width for d in dates], dtype=np.int64
        )

    # -- greedy optimisation -------------------------------------------------------

    def generate(
        self,
        dated_sentences: Sequence[DatedSentence],
        num_dates: int,
        num_sentences: int,
        query: Sequence[str] = (),
    ) -> Timeline:
        del query
        candidates = self._candidates(dated_sentences)
        if not candidates:
            return Timeline()
        texts = [text for _, text in candidates]
        dates = [date for date, _ in candidates]

        tokenised = [tokenize_for_matching(text) for text in texts]
        model = TfidfModel()
        matrix = model.fit_transform_matrix(tokenised)
        # The O(M^2) pairwise similarity computation.
        similarity = cosine_similarity_matrix(matrix)
        np.fill_diagonal(similarity, 0.0)

        total_mass = similarity.sum(axis=1)
        caps = self.config.coverage_saturation * total_mass
        singleton_reward = total_mass / max(1, len(candidates))
        clusters = self._clusters(dates)
        num_clusters = int(clusters.max()) + 1 if len(clusters) else 0

        budget = num_dates * num_sentences
        coverage = np.zeros(len(candidates), dtype=np.float64)
        cluster_mass = np.zeros(num_clusters, dtype=np.float64)
        selected: List[int] = []
        selected_mask = np.zeros(len(candidates), dtype=bool)
        per_date: Dict[datetime.date, int] = {}

        clipped = np.minimum(coverage, caps)
        for _ in range(budget):
            # Vectorised marginal coverage gain of every candidate.
            gains = (
                np.minimum(coverage[:, None] + similarity, caps[:, None])
                - clipped[:, None]
            ).sum(axis=0)
            # Diversity gain: sqrt cluster growth.
            base = np.sqrt(cluster_mass)
            grown = np.sqrt(cluster_mass[clusters] + singleton_reward)
            gains = gains + self.config.diversity_weight * (
                grown - base[clusters]
            )
            gains[selected_mask] = -np.inf
            if self.config.mode == "constraints":
                for index, date in enumerate(dates):
                    if selected_mask[index]:
                        continue
                    count = per_date.get(date, 0)
                    if count >= num_sentences:
                        gains[index] = -np.inf
                    elif (
                        count == 0 and len(per_date) >= num_dates
                    ):
                        gains[index] = -np.inf
            best = int(np.argmax(gains))
            if not np.isfinite(gains[best]) or gains[best] <= 0:
                break
            selected.append(best)
            selected_mask[best] = True
            per_date[dates[best]] = per_date.get(dates[best], 0) + 1
            coverage = coverage + similarity[:, best]
            clipped = np.minimum(coverage, caps)
            cluster_mass[clusters[best]] += singleton_reward[best]

        timeline = Timeline()
        for index in selected:
            timeline.add(dates[index], texts[index])
        return timeline


def asmds(config: Optional[SubmodularConfig] = None) -> SubmodularSummarizer:
    """The ASMDS variant (global budget, week-level diversity clusters)."""
    base = config or SubmodularConfig()
    return SubmodularSummarizer(replace(base, mode="asmds"))


def tls_constraints(
    config: Optional[SubmodularConfig] = None,
) -> SubmodularSummarizer:
    """The TLSConstraints variant (per-date and date-count constraints)."""
    base = config or SubmodularConfig()
    return SubmodularSummarizer(replace(base, mode="constraints"))
