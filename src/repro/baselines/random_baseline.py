"""The Random baseline: random dates, random sentences (Table 5)."""

from __future__ import annotations

import random
from typing import Sequence

from repro.baselines.base import TimelineMethod, group_texts_by_date
from repro.tlsdata.types import DatedSentence, Timeline


class RandomBaseline(TimelineMethod):
    """Uniformly random date and sentence selection."""

    name = "Random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def generate(
        self,
        dated_sentences: Sequence[DatedSentence],
        num_dates: int,
        num_sentences: int,
        query: Sequence[str] = (),
    ) -> Timeline:
        del query
        rng = random.Random(f"random-baseline-{self.seed}")
        grouped = group_texts_by_date(dated_sentences)
        if not grouped:
            return Timeline()
        candidates = sorted(grouped)
        chosen_dates = rng.sample(
            candidates, k=min(num_dates, len(candidates))
        )
        timeline = Timeline()
        for date in sorted(chosen_dates):
            pool = grouped[date]
            picks = rng.sample(pool, k=min(num_sentences, len(pool)))
            for sentence in picks:
                timeline.add(date, sentence)
        return timeline
