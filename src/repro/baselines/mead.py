"""MEAD (Radev et al., 2004): centroid-based multi-document summarization.

MEAD scores each sentence by a linear blend of (a) *centroid value* -- the
sum of the corpus-centroid weights of its terms, (b) *position* -- earlier
sentences in an article score higher, and (c) *first-sentence overlap*.
For timeline generation the standard adaptation selects the most heavily
reported dates, then fills each with its top-MEAD sentences.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.baselines.base import TimelineMethod, date_volumes
from repro.text.similarity import sparse_cosine
from repro.text.tfidf import TfidfModel
from repro.text.tokenize import tokenize_for_matching
from repro.tlsdata.types import DatedSentence, Timeline


@dataclass(frozen=True)
class _Candidate:
    date: datetime.date
    text: str
    position: int  # order of first appearance within its date pool


class MeadBaseline(TimelineMethod):
    """Centroid + position + first-sentence-overlap scoring.

    Parameters
    ----------
    centroid_weight, position_weight, first_weight:
        Blend weights of the three MEAD features.
    redundancy_threshold:
        Cosine cut-off for within-timeline redundancy.
    """

    name = "MEAD"

    def __init__(
        self,
        centroid_weight: float = 1.0,
        position_weight: float = 0.5,
        first_weight: float = 0.5,
        redundancy_threshold: float = 0.7,
    ) -> None:
        self.centroid_weight = centroid_weight
        self.position_weight = position_weight
        self.first_weight = first_weight
        self.redundancy_threshold = redundancy_threshold

    def generate(
        self,
        dated_sentences: Sequence[DatedSentence],
        num_dates: int,
        num_sentences: int,
        query: Sequence[str] = (),
    ) -> Timeline:
        del query
        volumes = date_volumes(dated_sentences)
        if not volumes:
            return Timeline()
        # Most heavily reported dates carry the events.
        selected_dates = sorted(
            date for date, _ in volumes[:num_dates]
        )

        # Candidate pools per selected date, with in-day positions.
        pools: Dict[datetime.date, List[_Candidate]] = {
            date: [] for date in selected_dates
        }
        seen: Dict[datetime.date, set] = {d: set() for d in selected_dates}
        for sentence in dated_sentences:
            pool = pools.get(sentence.date)
            if pool is None:
                continue
            if sentence.text in seen[sentence.date]:
                continue
            seen[sentence.date].add(sentence.text)
            pool.append(
                _Candidate(sentence.date, sentence.text, len(pool))
            )

        all_candidates = [c for pool in pools.values() for c in pool]
        tokenised = [
            tokenize_for_matching(c.text) for c in all_candidates
        ]
        model = TfidfModel()
        model.fit(tokenised)
        vectors = model.transform_many(tokenised)

        # Corpus centroid: mean TF-IDF vector.
        centroid: Dict[int, float] = {}
        for vector in vectors:
            for key, value in vector.items():
                centroid[key] = centroid.get(key, 0.0) + value
        if all_candidates:
            centroid = {
                k: v / len(all_candidates) for k, v in centroid.items()
            }

        vector_by_id = dict(zip(map(id, all_candidates), vectors))

        timeline = Timeline()
        selected_vectors: List[dict] = []
        for date in selected_dates:
            pool = pools[date]
            if not pool:
                continue
            first_vector = vector_by_id[id(pool[0])]
            scored = []
            for candidate in pool:
                vector = vector_by_id[id(candidate)]
                centroid_value = sparse_cosine(vector, centroid)
                position_value = 1.0 / (1.0 + candidate.position)
                first_value = sparse_cosine(vector, first_vector)
                score = (
                    self.centroid_weight * centroid_value
                    + self.position_weight * position_value
                    + self.first_weight * first_value
                )
                scored.append((score, candidate, vector))
            scored.sort(key=lambda item: -item[0])
            taken = 0
            for _score, candidate, vector in scored:
                if taken >= num_sentences:
                    break
                if any(
                    sparse_cosine(vector, other)
                    >= self.redundancy_threshold
                    for other in selected_vectors
                ):
                    continue
                timeline.add(date, candidate.text)
                selected_vectors.append(vector)
                taken += 1
        return timeline
