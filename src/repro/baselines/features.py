"""Sentence feature extraction for the supervised baselines.

Tran et al. (2013), Wang et al. (2015/2016) and related supervised TLS
systems learn a sentence-importance model from surface, frequency and
temporal features. This module computes a fixed feature vector per
candidate ``(date, sentence)`` and the standard regression target: the
best date-discounted ROUGE-1 F1 of the sentence against the reference
daily summaries.
"""

from __future__ import annotations

import datetime
import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.baselines.base import group_texts_by_date
from repro.evaluation.rouge import rouge_n
from repro.text.bm25 import BM25
from repro.text.similarity import sparse_cosine
from repro.text.tfidf import TfidfModel
from repro.text.tokenize import tokenize, tokenize_for_matching
from repro.tlsdata.types import DatedSentence, Timeline

#: Names of the extracted features, in column order. Deliberately limited
#: to what the pre-WILSON supervised systems used: surface, frequency and
#: *sentence-level* temporal features ("treat date information the same as
#: text information and include it as one of the features", Section 1).
#: The date-reference-graph aggregate is WILSON's own contribution and is
#: therefore not handed to the baselines.
FEATURE_NAMES: Tuple[str, ...] = (
    "log_day_sentences",
    "log_day_articles",
    "num_temporal_expressions",
    "sentence_length",
    "mean_tfidf",
    "max_tfidf",
    "centroid_cosine",
    "bm25_query",
    "window_position",
    "top_term_fraction",
)


@dataclass
class FeatureMatrix:
    """Candidates of one instance with their features (and targets)."""

    candidates: List[Tuple[datetime.date, str]]
    features: np.ndarray  # (num_candidates, num_features)
    targets: np.ndarray  # (num_candidates,); zeros when unlabelled


def extract_features(
    dated_sentences: Sequence[DatedSentence],
    query: Sequence[str] = (),
    reference: Timeline = None,
    date_tolerance_days: int = 2,
) -> FeatureMatrix:
    """Extract the feature matrix (and targets when *reference* given).

    The target of a candidate is ``max_ref rouge1_f1 / (1 + gap_days)``
    over reference dates within ``date_tolerance_days``, the conventional
    regression label for extractive TLS.
    """
    grouped = group_texts_by_date(dated_sentences)
    candidates: List[Tuple[datetime.date, str]] = []
    for date in sorted(grouped):
        for text in grouped[date]:
            candidates.append((date, text))
    if not candidates:
        return FeatureMatrix(
            candidates=[],
            features=np.zeros((0, len(FEATURE_NAMES))),
            targets=np.zeros(0),
        )

    # Per-date statistics and per-text temporal expression counts. Day
    # volumes deliberately count *publication* activity only: aggregating
    # mention-pooled sentences would hand the baselines the date-reference
    # signal that is WILSON's contribution.
    day_sentences: Dict[datetime.date, int] = {}
    day_articles: Dict[datetime.date, set] = {}
    mention_counts: Dict[str, int] = {}
    for sentence in dated_sentences:
        if sentence.is_reference:
            mention_counts[sentence.text] = (
                mention_counts.get(sentence.text, 0) + 1
            )
        else:
            day_sentences[sentence.date] = (
                day_sentences.get(sentence.date, 0) + 1
            )
            day_articles.setdefault(sentence.date, set()).add(
                sentence.article_id
            )

    tokenised = [tokenize_for_matching(text) for _, text in candidates]
    model = TfidfModel()
    model.fit(tokenised)
    vectors = model.transform_many(tokenised)
    centroid: Dict[int, float] = {}
    for vector in vectors:
        for key, value in vector.items():
            centroid[key] = centroid.get(key, 0.0) + value
    centroid = {k: v / len(vectors) for k, v in centroid.items()}

    # Top corpus terms by summed TF-IDF mass.
    term_mass: Dict[int, float] = {}
    for vector in vectors:
        for key, value in vector.items():
            term_mass[key] = term_mass.get(key, 0.0) + value
    top_terms = set(
        sorted(term_mass, key=lambda k: -term_mass[k])[:100]
    )

    bm25 = BM25(tokenised)
    query_tokens = tokenize_for_matching(" ".join(query)) if query else []
    bm25_scores = (
        bm25.scores(query_tokens)
        if query_tokens
        else np.zeros(len(candidates))
    )

    window_start = min(grouped)
    window_end = max(grouped)
    span = max(1, (window_end - window_start).days)

    rows = np.zeros(
        (len(candidates), len(FEATURE_NAMES)), dtype=np.float64
    )
    for index, ((date, _text), tokens, vector) in enumerate(
        zip(candidates, tokenised, vectors)
    ):
        weights = list(vector.values())
        rows[index] = (
            math.log1p(day_sentences.get(date, 0)),
            math.log1p(len(day_articles.get(date, ()))),
            float(mention_counts.get(_text, 0)),
            len(tokenize(_text)),
            float(np.mean(weights)) if weights else 0.0,
            float(np.max(weights)) if weights else 0.0,
            sparse_cosine(vector, centroid),
            float(bm25_scores[index]),
            (date - window_start).days / span,
            (
                sum(1 for t in tokens if model.vocabulary.get(t) in top_terms)
                / len(tokens)
                if tokens
                else 0.0
            ),
        )

    targets = np.zeros(len(candidates), dtype=np.float64)
    if reference is not None and len(reference) > 0:
        reference_dates = reference.dates
        for index, (date, text) in enumerate(candidates):
            best = 0.0
            for reference_date in reference_dates:
                gap = abs((date - reference_date).days)
                if gap > date_tolerance_days:
                    continue
                score = rouge_n(
                    text, reference.summary(reference_date), 1
                ).f1 / (1.0 + gap)
                if score > best:
                    best = score
            targets[index] = best
    return FeatureMatrix(
        candidates=candidates, features=rows, targets=targets
    )


def standardize(
    features: np.ndarray, mean: np.ndarray = None, std: np.ndarray = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Z-score features; returns (standardised, mean, std)."""
    if mean is None:
        mean = features.mean(axis=0) if len(features) else np.zeros(
            features.shape[1]
        )
    if std is None:
        std = features.std(axis=0) if len(features) else np.ones(
            features.shape[1]
        )
    safe = np.where(std > 0, std, 1.0)
    return (features - mean) / safe, mean, std
