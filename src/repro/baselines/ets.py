"""ETS (Yan et al., 2011): evolutionary timeline summarization.

ETS frames TLS as a balanced optimisation over four heuristics --
*relevance* (to the whole corpus), *coverage* (of heavily reported dates),
*coherence* (between adjacent daily summaries) and *diversity* (within a
day) -- solved by iterative substitution: starting from a seed selection,
repeatedly swap a selected sentence for an unselected one whenever the
swap improves the combined objective, until a local optimum (or the
iteration budget) is reached. Swap gains are evaluated incrementally: a
substitution only touches its own relevance term, the diversity pairs of
its date, and the coherence pairs with the two adjacent dates.
"""

from __future__ import annotations

import datetime
import random
from typing import Dict, List, Sequence, Tuple

from repro.baselines.base import (
    TimelineMethod,
    date_volumes,
    group_texts_by_date,
)
from repro.text.similarity import sparse_cosine
from repro.text.tfidf import TfidfModel
from repro.text.tokenize import tokenize_for_matching
from repro.tlsdata.types import DatedSentence, Timeline

SparseVector = Dict[int, float]


class EtsBaseline(TimelineMethod):
    """Iterative-substitution optimisation of blended timeline heuristics.

    Parameters
    ----------
    relevance_weight, coherence_weight, diversity_weight:
        Blend weights of the objective terms (coverage is induced by
        restricting candidates to the most reported dates).
    max_rounds:
        Full substitution sweeps before giving up on improvement.
    pool_limit:
        Candidates kept per date (top by corpus-centroid relevance); keeps
        the substitution search tractable on heavy days.
    """

    name = "ETS"

    def __init__(
        self,
        relevance_weight: float = 1.0,
        coherence_weight: float = 0.5,
        diversity_weight: float = 0.5,
        max_rounds: int = 3,
        pool_limit: int = 20,
        seed: int = 0,
    ) -> None:
        self.relevance_weight = relevance_weight
        self.coherence_weight = coherence_weight
        self.diversity_weight = diversity_weight
        self.max_rounds = max_rounds
        self.pool_limit = pool_limit
        self.seed = seed

    # -- incremental objective ---------------------------------------------------

    def _local_value(
        self,
        index: int,
        date: datetime.date,
        chosen: Dict[datetime.date, List[int]],
        dates: List[datetime.date],
        date_position: Dict[datetime.date, int],
        vectors: List[SparseVector],
        relevance: List[float],
    ) -> float:
        """Objective contribution of placing *index* on *date*.

        Covers the terms a single slot participates in: its relevance, its
        diversity pairs within the date, and its coherence pairs with the
        neighbouring dates.
        """
        value = self.relevance_weight * relevance[index]
        for other in chosen[date]:
            if other != index:
                value -= self.diversity_weight * sparse_cosine(
                    vectors[index], vectors[other]
                )
        position = date_position[date]
        for neighbour_position in (position - 1, position + 1):
            if 0 <= neighbour_position < len(dates):
                neighbour = dates[neighbour_position]
                for other in chosen[neighbour]:
                    value += self.coherence_weight * sparse_cosine(
                        vectors[index], vectors[other]
                    )
        return value

    # -- generation ----------------------------------------------------------------

    def generate(
        self,
        dated_sentences: Sequence[DatedSentence],
        num_dates: int,
        num_sentences: int,
        query: Sequence[str] = (),
    ) -> Timeline:
        del query
        grouped = group_texts_by_date(dated_sentences)
        if not grouped:
            return Timeline()
        selected_dates = sorted(
            date
            for date, _ in date_volumes(dated_sentences)[:num_dates]
        )
        date_position = {d: i for i, d in enumerate(selected_dates)}

        candidates: List[Tuple[datetime.date, str]] = []
        pool_indices: Dict[datetime.date, List[int]] = {}
        for date in selected_dates:
            pool_indices[date] = []
            for text in grouped[date]:
                pool_indices[date].append(len(candidates))
                candidates.append((date, text))

        tokenised = [
            tokenize_for_matching(text) for _, text in candidates
        ]
        model = TfidfModel()
        model.fit(tokenised)
        vectors = model.transform_many(tokenised)
        centroid: SparseVector = {}
        for vector in vectors:
            for key, value in vector.items():
                centroid[key] = centroid.get(key, 0.0) + value
        if candidates:
            centroid = {
                k: v / len(candidates) for k, v in centroid.items()
            }
        relevance = [
            sparse_cosine(vector, centroid) for vector in vectors
        ]

        # Prune each date's pool to the most corpus-relevant candidates.
        for date in selected_dates:
            pool_indices[date] = sorted(
                pool_indices[date], key=lambda i: -relevance[i]
            )[: self.pool_limit]

        rng = random.Random(f"ets-{self.seed}")
        chosen: Dict[datetime.date, List[int]] = {}
        for date in selected_dates:
            pool = pool_indices[date]
            chosen[date] = rng.sample(
                pool, k=min(num_sentences, len(pool))
            )

        for _ in range(self.max_rounds):
            improved = False
            for date in selected_dates:
                slots = chosen[date]
                for slot in range(len(slots)):
                    current = slots[slot]
                    current_value = self._local_value(
                        current, date, chosen, selected_dates,
                        date_position, vectors, relevance,
                    )
                    best_candidate = current
                    best_value = current_value
                    for candidate in pool_indices[date]:
                        if candidate in slots:
                            continue
                        value = self._local_value(
                            candidate, date, chosen, selected_dates,
                            date_position, vectors, relevance,
                        )
                        if value > best_value + 1e-12:
                            best_value = value
                            best_candidate = candidate
                    if best_candidate != current:
                        slots[slot] = best_candidate
                        improved = True
            if not improved:
                break

        timeline = Timeline()
        for date in selected_dates:
            for index in chosen[date]:
                timeline.add(date, candidates[index][1])
        return timeline
