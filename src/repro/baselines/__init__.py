"""Competing timeline-summarization methods (Section 3.1.2).

Runnable implementations of every comparison row in Tables 5-8:

* :mod:`random_baseline` -- random date and sentence selection;
* :mod:`chieu` -- Chieu & Lee (2004): date-pivoted TF-IDF "interest";
* :mod:`mead` -- Radev et al. (2004): centroid-based MDS;
* :mod:`ets` -- Yan et al. (2011): evolutionary timeline summarization by
  iterative substitution;
* :mod:`submodular` -- Martschat & Markert (2018): the TILSE framework
  (ASMDS and TLSConstraints), the paper's primary baseline;
* :mod:`uniform` -- truly uniformly distributed dates (Table 3);
* :mod:`oracle` -- ground-truth-date oracles for the empirical upper
  bounds of Table 8;
* :mod:`regression` -- Tran et al. (2013)-style supervised linear
  regression over sentence features;
* :mod:`ltr` -- Tran et al. (2013): pairwise learning-to-rank;
* :mod:`lowrank` -- Wang et al. (2016)-style low-rank approximation;
* :mod:`evolution` -- Liang et al. (2019)-style distributed-representation
  evolutionary selection.
"""

from repro.baselines.base import TimelineMethod
from repro.baselines.chieu import ChieuBaseline
from repro.baselines.ets import EtsBaseline
from repro.baselines.evolution import EvolutionBaseline
from repro.baselines.lowrank import LowRankBaseline
from repro.baselines.ltr import LearningToRankBaseline
from repro.baselines.mead import MeadBaseline
from repro.baselines.oracle import (
    OracleDateSummarizer,
    SupervisedOracleSummarizer,
)
from repro.baselines.random_baseline import RandomBaseline
from repro.baselines.regression import RegressionBaseline
from repro.baselines.submodular import (
    SubmodularConfig,
    SubmodularSummarizer,
    asmds,
    tls_constraints,
)
from repro.baselines.uniform import UniformDateBaseline

__all__ = [
    "ChieuBaseline",
    "EtsBaseline",
    "EvolutionBaseline",
    "LearningToRankBaseline",
    "LowRankBaseline",
    "MeadBaseline",
    "OracleDateSummarizer",
    "RandomBaseline",
    "RegressionBaseline",
    "SubmodularConfig",
    "SubmodularSummarizer",
    "SupervisedOracleSummarizer",
    "TimelineMethod",
    "UniformDateBaseline",
    "asmds",
    "tls_constraints",
]
