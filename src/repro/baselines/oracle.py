"""Oracle methods for the empirical upper bounds of Table 8.

* :class:`OracleDateSummarizer` -- "Ground-truth date + Daily summary":
  the date selection is read from the reference timeline, daily summaries
  still come from WILSON's unsupervised daily summariser. The reference
  *summaries* are never touched, so the bound isolates the contribution of
  perfect date selection.
* :class:`SupervisedOracleSummarizer` -- the submodular framework's bound:
  ground-truth dates *and* direct greedy optimisation of ROUGE F1 against
  the reference summaries (fully supervised; an upper bound by
  construction).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.base import TimelineMethod, group_texts_by_date
from repro.core.daily import DailySummarizer
from repro.core.postprocess import assemble_timeline, take_top_sentences
from repro.evaluation.rouge import rouge_n
from repro.tlsdata.types import DatedSentence, Timeline


class OracleDateSummarizer(TimelineMethod):
    """Ground-truth dates + unsupervised WILSON daily summarisation."""

    name = "Ground-truth date + Daily summary"

    def __init__(
        self,
        reference: Timeline,
        postprocess: bool = True,
        summarizer: Optional[DailySummarizer] = None,
    ) -> None:
        self.reference = reference
        self.postprocess = postprocess
        self.summarizer = summarizer or DailySummarizer()

    def generate(
        self,
        dated_sentences: Sequence[DatedSentence],
        num_dates: int,
        num_sentences: int,
        query: Sequence[str] = (),
    ) -> Timeline:
        del num_dates, query  # dates come from the reference
        ranked_days = self.summarizer.rank_days(
            dated_sentences, self.reference.dates
        )
        if self.postprocess:
            return assemble_timeline(ranked_days, num_sentences)
        return take_top_sentences(ranked_days, num_sentences)


class SupervisedOracleSummarizer(TimelineMethod):
    """Ground-truth dates + direct greedy ROUGE optimisation.

    For each reference date, greedily adds the candidate sentence whose
    inclusion maximises the ROUGE-N F1 of the day's summary against the
    reference summary -- the supervised upper bound [12] reports.
    """

    name = "Supervised oracle (submodular bound)"

    def __init__(self, reference: Timeline, rouge_order: int = 1) -> None:
        self.reference = reference
        self.rouge_order = rouge_order

    def generate(
        self,
        dated_sentences: Sequence[DatedSentence],
        num_dates: int,
        num_sentences: int,
        query: Sequence[str] = (),
    ) -> Timeline:
        del num_dates, query
        grouped = group_texts_by_date(dated_sentences)
        timeline = Timeline()
        for date in self.reference.dates:
            pool = grouped.get(date, [])
            if not pool:
                continue
            reference_summary = self.reference.summary(date)
            chosen: list = []
            best_score = 0.0
            for _ in range(min(num_sentences, len(pool))):
                best_candidate = None
                for candidate in pool:
                    if candidate in chosen:
                        continue
                    score = rouge_n(
                        chosen + [candidate],
                        reference_summary,
                        self.rouge_order,
                    ).f1
                    if score > best_score:
                        best_score = score
                        best_candidate = candidate
                if best_candidate is None:
                    break
                chosen.append(best_candidate)
            for sentence in chosen:
                timeline.add(date, sentence)
        return timeline
