"""Chieu & Lee (2004): query-based event extraction along a timeline.

The original system scores each sentence by its *interest* -- the summed
TF-IDF similarity to sentences published within a ±10-day window (popular,
bursty content scores high) -- and extracts events in interest order with a
redundancy filter. Dates emerge from the extracted sentences.
"""

from __future__ import annotations

import datetime
from typing import Dict, List, Sequence, Tuple

from repro.baselines.base import TimelineMethod, group_texts_by_date
from repro.text.similarity import sparse_cosine
from repro.text.tfidf import TfidfModel
from repro.text.tokenize import tokenize_for_matching
from repro.tlsdata.types import DatedSentence, Timeline


class ChieuBaseline(TimelineMethod):
    """Date-pivoted TF-IDF interest ranking.

    Parameters
    ----------
    window_days:
        Half-width of the burst window the interest score sums over.
    redundancy_threshold:
        Extracted sentences closer than this cosine to an earlier
        extraction are skipped.
    """

    name = "Chieu et al."

    def __init__(
        self,
        window_days: int = 10,
        redundancy_threshold: float = 0.6,
    ) -> None:
        self.window_days = window_days
        self.redundancy_threshold = redundancy_threshold

    def generate(
        self,
        dated_sentences: Sequence[DatedSentence],
        num_dates: int,
        num_sentences: int,
        query: Sequence[str] = (),
    ) -> Timeline:
        del query
        grouped = group_texts_by_date(dated_sentences)
        if not grouped:
            return Timeline()

        # Flat candidate list with date attribution.
        candidates: List[Tuple[datetime.date, str]] = []
        for date in sorted(grouped):
            for text in grouped[date]:
                candidates.append((date, text))

        tokenised = [
            tokenize_for_matching(text) for _, text in candidates
        ]
        model = TfidfModel()
        model.fit(tokenised)
        vectors = model.transform_many(tokenised)

        # Index candidates by date for windowed interest computation.
        by_date: Dict[datetime.date, List[int]] = {}
        for index, (date, _) in enumerate(candidates):
            by_date.setdefault(date, []).append(index)
        dates_sorted = sorted(by_date)

        interest = [0.0] * len(candidates)
        for date in dates_sorted:
            window_indices: List[int] = []
            for other in dates_sorted:
                if abs((other - date).days) <= self.window_days:
                    window_indices.extend(by_date[other])
            for index in by_date[date]:
                vector = vectors[index]
                score = 0.0
                for other_index in window_indices:
                    if other_index != index:
                        score += sparse_cosine(
                            vector, vectors[other_index]
                        )
                interest[index] = score

        order = sorted(
            range(len(candidates)), key=lambda i: -interest[i]
        )
        timeline = Timeline()
        per_date: Dict[datetime.date, int] = {}
        selected_vectors: List[dict] = []
        for index in order:
            date, text = candidates[index]
            if len(per_date) >= num_dates and date not in per_date:
                continue
            if per_date.get(date, 0) >= num_sentences:
                continue
            vector = vectors[index]
            if any(
                sparse_cosine(vector, other) >= self.redundancy_threshold
                for other in selected_vectors
            ):
                continue
            timeline.add(date, text)
            per_date[date] = per_date.get(date, 0) + 1
            selected_vectors.append(vector)
            if (
                len(per_date) >= num_dates
                and all(v >= num_sentences for v in per_date.values())
            ):
                break
        return timeline
