"""Regression baseline (Tran et al., 2013-style supervised TLS).

Sentence selection is formulated as linear regression: learn ridge weights
from sentence features to the ROUGE-derived relevance target on training
instances, then at generation time (a) score every candidate sentence,
(b) pick the T dates with the highest summed top-scores, and (c) fill each
date with its highest-scoring non-redundant sentences.
"""

from __future__ import annotations

import datetime
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import TimelineMethod
from repro.baselines.features import (
    FeatureMatrix,
    extract_features,
    standardize,
)
from repro.text.similarity import sparse_cosine
from repro.text.tfidf import TfidfModel
from repro.text.tokenize import tokenize_for_matching
from repro.tlsdata.types import DatedSentence, Timeline

TrainingExample = Tuple[Sequence[DatedSentence], Timeline, Sequence[str]]


class RegressionBaseline(TimelineMethod):
    """Ridge regression over sentence features.

    Call :meth:`fit` with training instances before :meth:`generate`;
    unfitted models fall back to a heuristic weight vector (pure feature
    sum), so the method degrades gracefully rather than failing.
    """

    name = "Regression"

    def __init__(
        self,
        l2: float = 1.0,
        redundancy_threshold: float = 0.7,
    ) -> None:
        self.l2 = l2
        self.redundancy_threshold = redundancy_threshold
        self._weights: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    # -- training ------------------------------------------------------------

    def fit(self, training: Sequence[TrainingExample]) -> "RegressionBaseline":
        """Learn ridge weights from (dated_sentences, reference, query)."""
        matrices: List[FeatureMatrix] = [
            extract_features(dated, query=query, reference=reference)
            for dated, reference, query in training
        ]
        features = np.vstack(
            [m.features for m in matrices if len(m.features)]
        )
        targets = np.concatenate(
            [m.targets for m in matrices if len(m.targets)]
        )
        if not len(features):
            raise ValueError("no training candidates extracted")
        standardized, self._mean, self._std = standardize(features)
        # Ridge: (X'X + l2 I) w = X'y, with a bias column.
        design = np.hstack(
            [standardized, np.ones((len(standardized), 1))]
        )
        gram = design.T @ design + self.l2 * np.eye(design.shape[1])
        self._weights = np.linalg.solve(gram, design.T @ targets)
        return self

    @property
    def is_fitted(self) -> bool:
        return self._weights is not None

    def _predict(self, features: np.ndarray) -> np.ndarray:
        if self._weights is None:
            # Heuristic fallback: equal positive weight on every feature.
            standardized, _, _ = standardize(features)
            return standardized.sum(axis=1)
        standardized, _, _ = standardize(
            features, mean=self._mean, std=self._std
        )
        design = np.hstack(
            [standardized, np.ones((len(standardized), 1))]
        )
        return design @ self._weights

    # -- generation -----------------------------------------------------------

    def generate(
        self,
        dated_sentences: Sequence[DatedSentence],
        num_dates: int,
        num_sentences: int,
        query: Sequence[str] = (),
    ) -> Timeline:
        matrix = extract_features(dated_sentences, query=query)
        if not matrix.candidates:
            return Timeline()
        scores = self._predict(matrix.features)
        return select_by_scores(
            matrix.candidates,
            scores,
            num_dates,
            num_sentences,
            redundancy_threshold=self.redundancy_threshold,
        )


def select_by_scores(
    candidates: Sequence[Tuple[datetime.date, str]],
    scores: np.ndarray,
    num_dates: int,
    num_sentences: int,
    redundancy_threshold: float = 0.7,
) -> Timeline:
    """Shared scored-candidate -> timeline assembly.

    Date score = sum of its top-N candidate scores; the T best dates are
    kept and filled with their best non-redundant sentences.
    """
    by_date: Dict[datetime.date, List[int]] = {}
    for index, (date, _) in enumerate(candidates):
        by_date.setdefault(date, []).append(index)

    date_scores: List[Tuple[float, datetime.date]] = []
    for date, indices in by_date.items():
        top = sorted((scores[i] for i in indices), reverse=True)
        date_scores.append((float(sum(top[:num_sentences])), date))
    date_scores.sort(key=lambda item: (-item[0], item[1]))
    chosen_dates = sorted(date for _, date in date_scores[:num_dates])

    tokenised = {
        index: tokenize_for_matching(candidates[index][1])
        for date in chosen_dates
        for index in by_date[date]
    }
    model = TfidfModel()
    model.fit(list(tokenised.values()))
    vectors = {
        index: model.transform(tokens)
        for index, tokens in tokenised.items()
    }

    timeline = Timeline()
    selected_vectors: List[dict] = []
    for date in chosen_dates:
        ranked = sorted(by_date[date], key=lambda i: -scores[i])
        taken = 0
        for index in ranked:
            if taken >= num_sentences:
                break
            vector = vectors[index]
            if any(
                sparse_cosine(vector, other) >= redundancy_threshold
                for other in selected_vectors
            ):
                continue
            timeline.add(date, candidates[index][1])
            selected_vectors.append(vector)
            taken += 1
    return timeline
