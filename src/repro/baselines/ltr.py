"""Learning-to-rank baseline (Tran et al., 2013).

The original leverages pairwise learning-to-rank over sentence features.
This implementation trains an averaged ranking perceptron on feature
differences of (better, worse) candidate pairs drawn from the training
instances, then scores and assembles timelines exactly like the
regression baseline.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.base import TimelineMethod
from repro.baselines.features import extract_features, standardize
from repro.baselines.regression import TrainingExample, select_by_scores
from repro.tlsdata.types import DatedSentence, Timeline


class LearningToRankBaseline(TimelineMethod):
    """Averaged ranking perceptron over sentence-feature differences.

    Parameters
    ----------
    epochs:
        Passes over the sampled preference pairs.
    pairs_per_instance:
        Preference pairs sampled per training instance; pairs require a
        target margin of at least ``margin``.
    """

    name = "Tran et al."

    def __init__(
        self,
        epochs: int = 5,
        pairs_per_instance: int = 2000,
        margin: float = 0.05,
        redundancy_threshold: float = 0.7,
        seed: int = 0,
    ) -> None:
        self.epochs = epochs
        self.pairs_per_instance = pairs_per_instance
        self.margin = margin
        self.redundancy_threshold = redundancy_threshold
        self.seed = seed
        self._weights: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def fit(
        self, training: Sequence[TrainingExample]
    ) -> "LearningToRankBaseline":
        """Train the ranking perceptron on preference pairs."""
        rng = random.Random(f"ltr-{self.seed}")
        all_features: List[np.ndarray] = []
        pair_diffs: List[np.ndarray] = []
        per_instance: List[tuple] = []
        for dated, reference, query in training:
            matrix = extract_features(
                dated, query=query, reference=reference
            )
            if len(matrix.features):
                all_features.append(matrix.features)
                per_instance.append((matrix.features, matrix.targets))
        if not all_features:
            raise ValueError("no training candidates extracted")
        stacked = np.vstack(all_features)
        _, self._mean, self._std = standardize(stacked)

        for features, targets in per_instance:
            standardized, _, _ = standardize(
                features, mean=self._mean, std=self._std
            )
            n = len(standardized)
            if n < 2:
                continue
            for _ in range(self.pairs_per_instance):
                i = rng.randrange(n)
                j = rng.randrange(n)
                if targets[i] >= targets[j] + self.margin:
                    pair_diffs.append(standardized[i] - standardized[j])
                elif targets[j] >= targets[i] + self.margin:
                    pair_diffs.append(standardized[j] - standardized[i])
        if not pair_diffs:
            raise ValueError(
                "no preference pairs exceeded the target margin"
            )

        dims = pair_diffs[0].shape[0]
        weights = np.zeros(dims)
        averaged = np.zeros(dims)
        steps = 0
        for _ in range(self.epochs):
            rng.shuffle(pair_diffs)
            for diff in pair_diffs:
                if weights @ diff <= 0:
                    weights = weights + diff
                averaged += weights
                steps += 1
        self._weights = averaged / max(1, steps)
        return self

    @property
    def is_fitted(self) -> bool:
        return self._weights is not None

    def generate(
        self,
        dated_sentences: Sequence[DatedSentence],
        num_dates: int,
        num_sentences: int,
        query: Sequence[str] = (),
    ) -> Timeline:
        matrix = extract_features(dated_sentences, query=query)
        if not matrix.candidates:
            return Timeline()
        if self._weights is None:
            standardized, _, _ = standardize(matrix.features)
            scores = standardized.sum(axis=1)
        else:
            standardized, _, _ = standardize(
                matrix.features, mean=self._mean, std=self._std
            )
            scores = standardized @ self._weights
        return select_by_scores(
            matrix.candidates,
            scores,
            num_dates,
            num_sentences,
            redundancy_threshold=self.redundancy_threshold,
        )
