"""Common interface of all timeline-summarization methods."""

from __future__ import annotations

import abc
import datetime
from typing import Dict, List, Sequence, Tuple

from repro.tlsdata.types import DatedSentence, Timeline


class TimelineMethod(abc.ABC):
    """A method that turns dated sentences into a timeline.

    All methods (WILSON variants, baselines, oracles) implement
    :meth:`generate` with the evaluation protocol's knobs: the preset
    number of dates T and sentences per date N.
    """

    #: Human-readable method name used in result tables.
    name: str = "method"

    @abc.abstractmethod
    def generate(
        self,
        dated_sentences: Sequence[DatedSentence],
        num_dates: int,
        num_sentences: int,
        query: Sequence[str] = (),
    ) -> Timeline:
        """Produce a timeline with ~T dates and ~N sentences per date."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def group_texts_by_date(
    dated_sentences: Sequence[DatedSentence],
) -> Dict[datetime.date, List[str]]:
    """Group distinct sentence texts by date, preserving order."""
    grouped: Dict[datetime.date, List[str]] = {}
    seen: Dict[datetime.date, set] = {}
    for sentence in dated_sentences:
        bucket = grouped.setdefault(sentence.date, [])
        texts = seen.setdefault(sentence.date, set())
        if sentence.text not in texts:
            texts.add(sentence.text)
            bucket.append(sentence.text)
    return grouped


def date_volumes(
    dated_sentences: Sequence[DatedSentence],
    publication_only: bool = True,
) -> List[Tuple[datetime.date, int]]:
    """Candidate dates with their sentence counts, heaviest first.

    With ``publication_only`` (the default) a date's volume counts the
    sentences *published* that day -- the classic "most heavily reported
    dates" signal frequency baselines use. Counting mention-pooled
    sentences as well (``publication_only=False``) would silently smuggle
    in the date-reference signal that is WILSON's own contribution.
    """
    if publication_only:
        pool = [s for s in dated_sentences if not s.is_reference]
        if not pool:  # mention-only corpora: fall back to everything
            pool = list(dated_sentences)
    else:
        pool = list(dated_sentences)
    grouped = group_texts_by_date(pool)
    return sorted(
        ((date, len(texts)) for date, texts in grouped.items()),
        key=lambda item: (-item[1], item[0]),
    )
