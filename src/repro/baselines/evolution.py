"""Dynamic evolutionary baseline (Liang et al., 2019-style).

The original builds a dynamic evolutionary framework over distributed
sentence representations: the timeline grows date by date, preferring
dates whose content is both *salient* (central in embedding space) and
*novel* relative to the evolving summary state. This reproduction uses LSA
embeddings (the offline substitute for the original's distributed
representations) and a forward pass with an exponentially decayed state
vector.
"""

from __future__ import annotations

import datetime
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.baselines.base import TimelineMethod, group_texts_by_date
from repro.text.embeddings import LsaEmbedder
from repro.tlsdata.types import DatedSentence, Timeline


class EvolutionBaseline(TimelineMethod):
    """Embedding-centrality timeline evolution.

    Parameters
    ----------
    decay:
        Per-day exponential decay of the evolving story-state vector.
    novelty_weight:
        Weight of the novelty term (1 - similarity to state) in the date
        score; salience gets ``1 - novelty_weight``.
    dimensions:
        LSA embedding dimensionality.
    """

    name = "Liang et al."

    def __init__(
        self,
        decay: float = 0.95,
        novelty_weight: float = 0.35,
        dimensions: int = 48,
        redundancy_threshold: float = 0.8,
    ) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must lie in (0, 1], got {decay}")
        if not 0.0 <= novelty_weight <= 1.0:
            raise ValueError(
                f"novelty_weight must lie in [0, 1], got {novelty_weight}"
            )
        self.decay = decay
        self.novelty_weight = novelty_weight
        self.dimensions = dimensions
        self.redundancy_threshold = redundancy_threshold

    def generate(
        self,
        dated_sentences: Sequence[DatedSentence],
        num_dates: int,
        num_sentences: int,
        query: Sequence[str] = (),
    ) -> Timeline:
        del query
        grouped = group_texts_by_date(dated_sentences)
        if not grouped:
            return Timeline()
        dates = sorted(grouped)
        texts: List[str] = []
        spans: Dict[datetime.date, Tuple[int, int]] = {}
        for date in dates:
            start = len(texts)
            texts.extend(grouped[date])
            spans[date] = (start, len(texts))

        embedder = LsaEmbedder(dimensions=self.dimensions)
        embeddings = embedder.fit_transform(texts)
        corpus_centroid = embeddings.mean(axis=0)
        norm = np.linalg.norm(corpus_centroid)
        if norm > 0:
            corpus_centroid = corpus_centroid / norm

        # Forward pass: score each date by salience + novelty vs. the
        # decayed story state, which is updated with each day's centroid.
        state = np.zeros(embeddings.shape[1])
        date_scores: List[Tuple[float, datetime.date]] = []
        previous_date = dates[0]
        for date in dates:
            start, end = spans[date]
            day_centroid = embeddings[start:end].mean(axis=0)
            day_norm = np.linalg.norm(day_centroid)
            if day_norm > 0:
                day_centroid = day_centroid / day_norm
            salience = float(day_centroid @ corpus_centroid) * np.log1p(
                end - start
            )
            state_norm = np.linalg.norm(state)
            novelty = (
                1.0 - float(day_centroid @ (state / state_norm))
                if state_norm > 0
                else 1.0
            )
            score = (
                (1.0 - self.novelty_weight) * salience
                + self.novelty_weight * novelty
            )
            date_scores.append((score, date))
            gap = (date - previous_date).days
            state = state * (self.decay ** max(0, gap)) + day_centroid
            previous_date = date

        date_scores.sort(key=lambda item: (-item[0], item[1]))
        chosen_dates = sorted(
            date for _, date in date_scores[:num_dates]
        )

        timeline = Timeline()
        selected_embeddings: List[np.ndarray] = []
        for date in chosen_dates:
            start, end = spans[date]
            day_embeddings = embeddings[start:end]
            day_centroid = day_embeddings.mean(axis=0)
            centrality = day_embeddings @ day_centroid
            order = np.argsort(-centrality, kind="stable")
            taken = 0
            for position in order:
                if taken >= num_sentences:
                    break
                candidate = day_embeddings[position]
                if any(
                    float(candidate @ other) >= self.redundancy_threshold
                    for other in selected_embeddings
                ):
                    continue
                timeline.add(date, texts[start + int(position)])
                selected_embeddings.append(candidate)
                taken += 1
        return timeline
