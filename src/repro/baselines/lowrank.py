"""Low-rank approximation baseline (Wang et al., 2016 -- text-only).

The original learns joint low-rank embeddings of news stories and images
and predicts sentence importance from the latent space. Without the image
modality (see DESIGN.md), we reproduce the text half: sentences are mapped
to a truncated-SVD latent space of their TF-IDF matrix, and a ridge model
from latent coordinates (plus the surface features) to the ROUGE-derived
relevance target provides the importance scores.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.base import TimelineMethod
from repro.text.embeddings import truncated_svd
from repro.baselines.features import extract_features, standardize
from repro.baselines.regression import TrainingExample, select_by_scores
from repro.text.tfidf import TfidfModel
from repro.text.tokenize import tokenize_for_matching
from repro.tlsdata.types import DatedSentence, Timeline


class LowRankBaseline(TimelineMethod):
    """Latent (SVD) + surface features, ridge-regressed to relevance."""

    name = "Wang et al. (Text)"

    def __init__(
        self,
        rank: int = 32,
        l2: float = 1.0,
        redundancy_threshold: float = 0.7,
    ) -> None:
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        self.rank = rank
        self.l2 = l2
        self.redundancy_threshold = redundancy_threshold
        self._weights: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    # -- latent features ---------------------------------------------------------

    def _latent(self, texts: Sequence[str]) -> np.ndarray:
        """Per-instance truncated-SVD coordinates of the sentences."""
        tokenised = [tokenize_for_matching(text) for text in texts]
        model = TfidfModel()
        matrix = model.fit_transform_matrix(tokenised)
        k = min(self.rank, min(matrix.shape) - 1)
        if k < 1:
            return np.zeros((len(texts), self.rank))
        u, s, _vt = truncated_svd(matrix, k)
        latent = u * s  # scale coordinates by singular values
        if k < self.rank:
            latent = np.hstack(
                [latent, np.zeros((len(texts), self.rank - k))]
            )
        # Use coordinate magnitudes: sign of SVD axes is arbitrary across
        # instances, so only |coordinate| transfers between corpora.
        return np.abs(latent)

    def _design(
        self, dated_sentences: Sequence[DatedSentence], query: Sequence[str],
        reference: Timeline = None,
    ):
        matrix = extract_features(
            dated_sentences, query=query, reference=reference
        )
        if not matrix.candidates:
            return matrix, np.zeros((0, self.rank))
        latent = self._latent([text for _, text in matrix.candidates])
        return matrix, latent

    # -- training ------------------------------------------------------------------

    def fit(self, training: Sequence[TrainingExample]) -> "LowRankBaseline":
        """Ridge-fit latent + surface features to the relevance target."""
        blocks: List[np.ndarray] = []
        targets: List[np.ndarray] = []
        for dated, reference, query in training:
            matrix, latent = self._design(
                dated, query=query, reference=reference
            )
            if not len(matrix.features):
                continue
            blocks.append(np.hstack([matrix.features, latent]))
            targets.append(matrix.targets)
        if not blocks:
            raise ValueError("no training candidates extracted")
        features = np.vstack(blocks)
        target = np.concatenate(targets)
        standardized, self._mean, self._std = standardize(features)
        design = np.hstack(
            [standardized, np.ones((len(standardized), 1))]
        )
        gram = design.T @ design + self.l2 * np.eye(design.shape[1])
        self._weights = np.linalg.solve(gram, design.T @ target)
        return self

    @property
    def is_fitted(self) -> bool:
        return self._weights is not None

    # -- generation ------------------------------------------------------------------

    def generate(
        self,
        dated_sentences: Sequence[DatedSentence],
        num_dates: int,
        num_sentences: int,
        query: Sequence[str] = (),
    ) -> Timeline:
        matrix, latent = self._design(dated_sentences, query=query)
        if not matrix.candidates:
            return Timeline()
        features = np.hstack([matrix.features, latent])
        if self._weights is None:
            standardized, _, _ = standardize(features)
            scores = standardized.sum(axis=1)
        else:
            standardized, _, _ = standardize(
                features, mean=self._mean, std=self._std
            )
            design = np.hstack(
                [standardized, np.ones((len(standardized), 1))]
            )
            scores = design @ self._weights
        return select_by_scores(
            matrix.candidates,
            scores,
            num_dates,
            num_sentences,
            redundancy_threshold=self.redundancy_threshold,
        )
