"""Uniform date selection with TextRank daily summaries (Table 3).

The "Uniform" row of Table 3: dates are spread truly uniformly over the
corpus window (snapped to days that actually carry sentences), then each
day is summarised exactly like WILSON summarises its selected days. High
date *coverage*, poor date *F1* -- the contrast the paper uses to motivate
the recency adjustment.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.base import TimelineMethod
from repro.core.pipeline import Wilson, WilsonConfig
from repro.tlsdata.types import DatedSentence, Timeline


class UniformDateBaseline(TimelineMethod):
    """Truly uniformly distributed dates + BM25-TextRank daily summaries."""

    name = "Uniform"

    def __init__(self, postprocess: bool = True) -> None:
        self.postprocess = postprocess

    def generate(
        self,
        dated_sentences: Sequence[DatedSentence],
        num_dates: int,
        num_sentences: int,
        query: Sequence[str] = (),
    ) -> Timeline:
        wilson = Wilson(
            WilsonConfig(
                num_dates=num_dates,
                sentences_per_date=num_sentences,
                uniform_dates=True,
                recency_adjustment=False,
                postprocess=self.postprocess,
            )
        )
        return wilson.summarize(
            dated_sentences,
            num_dates=num_dates,
            num_sentences=num_sentences,
            query=query,
        )
