"""Hot numeric kernels over plain arrays (the compiled-later tier).

Every performance-critical inner computation of the pipeline lives here
as a pure function over array arguments:

* :func:`bm25_build` -- per-document BM25 factor matrices (CSR triples)
  from concatenated token-id arrays, the core of
  :class:`repro.text.bm25.BM25IdMatrices`;
* :func:`bm25_saturate` -- the saturated document-side BM25 factor,
  shared by :class:`repro.text.bm25.BM25`'s string path;
* :func:`csr_matvec` -- BM25 score accumulation (one sparse
  matrix-vector product over CSR postings statistics);
* :func:`bm25_day_matrix` -- the all-pairs BM25 TextRank adjacency of a
  day's sentences (``Q @ S.T`` with a zeroed diagonal);
* :func:`pagerank_iterate` -- the buffered PageRank power iteration;
* :func:`redundancy_accept` -- the CSR-batched cross-date redundancy
  check of the post-processing round-robin.

The contract, enforced by ``tests/test_kernels.py``:

* **inputs are never mutated** -- every function runs correctly on
  ``writeable=False`` arrays, which is what lets the zero-copy snapshot
  tier (:mod:`repro.search.snapshot`, ``mode="mmap"``) hand read-only
  ``MAP_SHARED`` views straight into the hot paths;
* **scratch is allocated explicitly** -- any buffer a kernel writes to
  is created inside the kernel (or is the returned result);
* **numerics are bit-identical** to the expression forms these kernels
  replaced: callers' golden/equivalence tests hold across the refactor.

Keeping the kernels free of Python-object traffic (no dicts, no strings,
no scipy-object ownership beyond locally constructed matrices) is what
would let a numba/Cython build drop in behind the same signatures.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "bm25_build",
    "bm25_saturate",
    "csr_matvec",
    "bm25_day_matrix",
    "pagerank_iterate",
    "redundancy_accept",
]


def bm25_saturate(
    tf: np.ndarray,
    entry_rows: np.ndarray,
    doc_lengths: np.ndarray,
    avgdl: float,
    k1: float,
    b: float,
) -> np.ndarray:
    """Saturated document-side BM25 factors for CSR entry data.

    ``result[e] = tf[e] * (k1 + 1) / (tf[e] + norm[entry_rows[e]])``
    with ``norm[d] = k1 * (1 - b + b * doc_lengths[d] / avgdl)`` -- the
    per-posting value of the BM25 document side. All inputs are read
    only; the result is a fresh ``float64`` array.
    """
    tf = np.asarray(tf, dtype=np.float64)
    if tf.size == 0:
        return np.zeros(0, dtype=np.float64)
    lengths = np.asarray(doc_lengths, dtype=np.float64)
    norms = k1 * (1.0 - b + b * lengths / avgdl)
    return tf * (k1 + 1.0) / (tf + norms[np.asarray(entry_rows)])


def bm25_build(
    ids_cat: np.ndarray,
    row_lengths: np.ndarray,
    vocabulary_size: int,
    k1: float,
    b: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, float]:
    """BM25 factor matrices from concatenated per-document token ids.

    *ids_cat* concatenates every document's token-id array (documents
    with zero tokens contribute nothing); *row_lengths* carries each
    document's token count, so ``row_lengths.sum() == len(ids_cat)``.

    Returns ``(indptr, indices, doc_data, query_data, idf_per_column,
    avgdl)`` -- the shared CSR structure of the document-side and
    query-side factor matrices in canonical (sorted, deduplicated)
    order, plus the per-column IDF and the average document length. All
    returned arrays are freshly allocated; the inputs are never written.
    """
    row_lengths = np.asarray(row_lengths, dtype=np.int64)
    n = int(row_lengths.shape[0])
    width = max(int(vocabulary_size), 1)
    doc_lens = row_lengths.astype(np.float64)
    mean_len = float(doc_lens.mean()) if n else 0.0
    avgdl = mean_len if mean_len > 0 else 1.0

    total = int(row_lengths.sum())
    if total == 0:
        return (
            np.zeros(n + 1, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
            np.zeros(0, dtype=np.float64),
            np.zeros(width, dtype=np.float64),
            avgdl,
        )

    ids_cat = np.asarray(ids_cat, dtype=np.int64)
    row_arr = np.repeat(np.arange(n, dtype=np.int64), row_lengths)
    # One sorted unique over the composite key yields, in canonical CSR
    # order, every (document, token) posting and its term frequency.
    composite = row_arr * width + ids_cat
    postings, tf_counts = np.unique(composite, return_counts=True)
    rows = postings // width
    cols = postings % width
    tf_arr = tf_counts.astype(np.float64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])

    # IDF: df counts distinct (document, token) pairs per token; one
    # math.log per *distinct* df, applied by table lookup.
    df = np.bincount(cols, minlength=width)
    present = np.flatnonzero(df)
    distinct_dfs = np.unique(df[present])
    table = np.zeros(int(distinct_dfs.max()) + 1, dtype=np.float64)
    for value in distinct_dfs.tolist():
        table[value] = math.log(1.0 + (n - value + 0.5) / (value + 0.5))
    idf_per_column = np.zeros(width, dtype=np.float64)
    idf_per_column[present] = table[df[present]]

    doc_data = bm25_saturate(tf_arr, rows, doc_lens, avgdl, k1, b)
    query_data = tf_arr * idf_per_column[cols]
    return indptr, cols, doc_data, query_data, idf_per_column, avgdl


def csr_matvec(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    shape: Tuple[int, int],
    vector: np.ndarray,
) -> np.ndarray:
    """``M @ vector`` for the CSR matrix ``(data, indices, indptr)``.

    The BM25 score accumulation: with *data* carrying the saturated
    document-side factors and *vector* the per-column query weights,
    the result is every document's BM25 relevance at once. Summation
    order follows the CSR storage order, so passing a matrix's own
    arrays reproduces ``matrix @ vector`` bit for bit.
    """
    from scipy import sparse

    matrix = sparse.csr_matrix(
        (data, indices, indptr), shape=shape, copy=False
    )
    return np.asarray(matrix @ np.asarray(vector), dtype=np.float64)


def bm25_day_matrix(
    query_data: np.ndarray,
    doc_data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    shape: Tuple[int, int],
) -> np.ndarray:
    """All-pairs BM25 matrix ``M[i, j] = score(doc_i as query, doc_j)``.

    *query_data* and *doc_data* share one CSR structure ``(indices,
    indptr)`` over *shape* ``(documents, vocabulary)``; the result is
    the dense ``Q @ S.T`` with a zeroed diagonal (a sentence must not
    vote for itself) -- the adjacency of the BM25-TextRank sentence
    graph. Both sides are re-sorted into canonical column order on
    private copies (matching the historical construction exactly), so
    the inputs are never written.
    """
    from scipy import sparse

    n = shape[0]
    if n == 0:
        return np.zeros((0, 0), dtype=np.float64)
    query_side = sparse.csr_matrix(
        (
            np.array(query_data, dtype=np.float64),
            np.array(indices),
            np.array(indptr),
        ),
        shape=shape,
    )
    doc_side = sparse.csr_matrix(
        (
            np.array(doc_data, dtype=np.float64),
            np.array(indices),
            np.array(indptr),
        ),
        shape=shape,
    )
    query_side.sort_indices()
    doc_side.sort_indices()
    matrix = (query_side @ doc_side.T).toarray().astype(
        np.float64, copy=False
    )
    np.fill_diagonal(matrix, 0.0)
    return matrix


def pagerank_iterate(
    transition: np.ndarray,
    restart: np.ndarray,
    dangling: np.ndarray,
    damping: float,
    max_iterations: int,
    tolerance: float,
) -> Tuple[np.ndarray, int]:
    """Buffered PageRank power iteration; returns ``(rank, iterations)``.

    *transition* is the row-stochastic matrix (dangling rows may hold
    anything -- their mass is redistributed through *restart* per the
    boolean *dangling* mask), *restart* the normalised restart
    distribution. Convergence is declared when the L1 change drops
    below ``tolerance * n``. The returned rank vector sums to 1.

    Every iteration writes into preallocated ping-pong buffers via
    ufunc ``out=`` -- the arithmetic (and hence the result, bit for
    bit) matches the expression form, without allocating four
    temporaries per sweep. The inputs are only ever read.
    """
    transition = np.asarray(transition, dtype=np.float64)
    restart = np.asarray(restart, dtype=np.float64)
    n = transition.shape[0]
    dangling = np.asarray(dangling, dtype=bool)
    has_dangling = bool(dangling.any())

    base = (1.0 - damping) * restart
    rank = restart.copy()
    new_rank = np.empty(n, dtype=np.float64)
    diff = np.empty(n, dtype=np.float64)
    dangling_term = (
        np.empty(n, dtype=np.float64) if has_dangling else None
    )
    threshold = tolerance * n
    iterations = 0
    for _ in range(max_iterations):
        iterations += 1
        np.matmul(rank, transition, out=new_rank)
        np.multiply(new_rank, damping, out=new_rank)
        if has_dangling:
            # new = damping*(rank@T) + (damping*mass)*restart + base,
            # summed left to right exactly as written.
            np.multiply(
                restart,
                damping * rank[dangling].sum(),
                out=dangling_term,
            )
            np.add(new_rank, dangling_term, out=new_rank)
        np.add(new_rank, base, out=new_rank)
        np.subtract(new_rank, rank, out=diff)
        np.abs(diff, out=diff)
        converged = diff.sum() < threshold
        rank, new_rank = new_rank, rank
        if converged:
            break
    return rank / rank.sum(), iterations


def redundancy_accept(
    cand_data: np.ndarray,
    cand_indices: np.ndarray,
    cand_indptr: np.ndarray,
    num_offers: int,
    num_features: int,
    acc_data: Optional[np.ndarray],
    acc_indices: Optional[np.ndarray],
    acc_indptr: Optional[np.ndarray],
    num_accepted: int,
    threshold: float,
) -> List[int]:
    """One post-processing round's redundancy decisions, in offer order.

    The candidate rows (L2-normalised TF-IDF, so dot products are
    cosines) are scored against the already-accepted pool with a single
    sparse product, then against the offers accepted *earlier in the
    same round* (the only sequential dependency). Returns the positions
    of the accepted offers.

    ``acc_*`` may be ``None`` (an empty accepted pool); *num_accepted*
    is the pool's row count. No input array is ever written.
    """
    from scipy import sparse

    candidates = sparse.csr_matrix(
        (cand_data, cand_indices, cand_indptr),
        shape=(num_offers, num_features),
        copy=False,
    )
    if acc_data is not None and num_accepted:
        accepted_matrix = sparse.csr_matrix(
            (acc_data, acc_indices, acc_indptr),
            shape=(num_accepted, num_features),
            copy=False,
        )
        against_pool = np.asarray(
            (candidates @ accepted_matrix.T).todense()
        ).max(axis=1)
    else:
        against_pool = np.zeros(num_offers, dtype=np.float64)
    # Offers of one round also compete with each other, in order.
    intra = np.asarray((candidates @ candidates.T).todense())
    accepted_in_round: List[int] = []
    for position in range(num_offers):
        redundant = against_pool[position] >= threshold or (
            accepted_in_round
            and intra[position, accepted_in_round].max() >= threshold
        )
        if not redundant:
            accepted_in_round.append(position)
    return accepted_in_round
