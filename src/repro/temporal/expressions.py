"""Recognition and normalisation of temporal expressions in news text."""

from __future__ import annotations

import datetime
import re
from dataclasses import dataclass
from typing import List, Optional

from repro.temporal.calendar_utils import (
    NUMBER_WORDS,
    WEEKDAY_NAMES,
    month_number,
    most_recent_weekday,
    resolve_year,
    safe_date,
)


@dataclass(frozen=True)
class TemporalExpression:
    """A recognised temporal expression.

    Attributes
    ----------
    text:
        The matched surface form.
    start, end:
        Character span within the source sentence.
    date:
        The resolved calendar date, or ``None`` when the expression could
        not be anchored (e.g. a relative expression without a publication
        date).
    kind:
        One of ``iso``, ``month_day_year``, ``day_month_year``, ``numeric``,
        ``month_day``, ``day_month``, ``relative_day``, ``weekday``,
        ``ago``.
    """

    text: str
    start: int
    end: int
    date: Optional[datetime.date]
    kind: str


_MONTH = (
    r"(?:Jan(?:uary|\.)?|Feb(?:ruary|\.)?|Mar(?:ch|\.)?|Apr(?:il|\.)?|May|"
    r"Jun(?:e|\.)?|Jul(?:y|\.)?|Aug(?:ust|\.)?|Sep(?:t(?:ember|\.)?|\.)?|"
    r"Oct(?:ober|\.)?|Nov(?:ember|\.)?|Dec(?:ember|\.)?)"
)
_DAY = r"(?:[12][0-9]|3[01]|0?[1-9])(?:st|nd|rd|th)?"
_YEAR = r"(?:19|20)\d{2}"
_WEEKDAY = (
    r"(?:Monday|Tuesday|Wednesday|Thursday|Friday|Saturday|Sunday)"
)
_NUMBER_WORD = r"(?:one|two|three|four|five|six|seven|eight|nine|ten|eleven|twelve|a|an|\d+)"

# Ordered patterns: earlier, more specific patterns win overlapping spans.
_PATTERNS = [
    ("iso", re.compile(r"\b(\d{4})-(\d{2})-(\d{2})\b")),
    (
        "month_day_year",
        re.compile(
            rf"\b({_MONTH})\s+({_DAY})\s*,?\s+({_YEAR})\b", re.IGNORECASE
        ),
    ),
    (
        "day_month_year",
        re.compile(
            rf"\b({_DAY})\s+({_MONTH})\s*,?\s+({_YEAR})\b", re.IGNORECASE
        ),
    ),
    (
        "numeric",
        re.compile(r"\b(\d{1,2})/(\d{1,2})/(\d{4})\b"),
    ),
    (
        # "June 12-15": a day range; resolves to its *start* day.
        "day_range",
        re.compile(
            rf"\b({_MONTH})\s+({_DAY})\s*[-–]\s*({_DAY})\b",
            re.IGNORECASE,
        ),
    ),
    (
        "month_day",
        re.compile(rf"\b({_MONTH})\s+({_DAY})\b", re.IGNORECASE),
    ),
    (
        "day_month",
        re.compile(rf"\b({_DAY})\s+({_MONTH})\b", re.IGNORECASE),
    ),
    (
        # "early June" / "mid-March 2019" / "late October".
        "month_part",
        re.compile(
            rf"\b(early|mid|late)[-\s]({_MONTH})(?:\s+({_YEAR}))?\b",
            re.IGNORECASE,
        ),
    ),
    (
        "relative_day",
        re.compile(r"\b(today|yesterday|tomorrow|tonight|this morning|"
                   r"this afternoon|this evening)\b", re.IGNORECASE),
    ),
    (
        "weekday",
        re.compile(
            rf"\b(last|next|this|on)?\s*({_WEEKDAY})\b", re.IGNORECASE
        ),
    ),
    (
        "ago",
        re.compile(
            rf"\b({_NUMBER_WORD})\s+(day|week|month)s?\s+ago\b",
            re.IGNORECASE,
        ),
    ),
    (
        # "last week" / "last month" -- coarse, resolved to the midpoint
        # of the prior period.
        "relative_period",
        re.compile(
            r"\b(last|next)\s+(week|month)\b", re.IGNORECASE
        ),
    ),
]

_ORDINAL_SUFFIX = re.compile(r"(st|nd|rd|th)$", re.IGNORECASE)


def _strip_ordinal(day_text: str) -> int:
    return int(_ORDINAL_SUFFIX.sub("", day_text))


def _number_word(text: str) -> int:
    text = text.lower()
    if text.isdigit():
        return int(text)
    return NUMBER_WORDS[text]


def _resolve(
    kind: str,
    match: "re.Match[str]",
    anchor: Optional[datetime.date],
) -> Optional[datetime.date]:
    """Map a regex match to a calendar date."""
    if kind == "iso":
        return safe_date(
            int(match.group(1)), int(match.group(2)), int(match.group(3))
        )
    if kind == "month_day_year":
        month = month_number(match.group(1))
        if month is None:
            return None
        return safe_date(
            int(match.group(3)), month, _strip_ordinal(match.group(2))
        )
    if kind == "day_month_year":
        month = month_number(match.group(2))
        if month is None:
            return None
        return safe_date(
            int(match.group(3)), month, _strip_ordinal(match.group(1))
        )
    if kind == "numeric":
        # Interpreted as US-style MM/DD/YYYY, the dominant convention in the
        # corpora the paper targets.
        return safe_date(
            int(match.group(3)), int(match.group(1)), int(match.group(2))
        )
    if kind == "month_day":
        if anchor is None:
            return None
        month = month_number(match.group(1))
        if month is None:
            return None
        return resolve_year(month, _strip_ordinal(match.group(2)), anchor)
    if kind == "day_month":
        if anchor is None:
            return None
        month = month_number(match.group(2))
        if month is None:
            return None
        return resolve_year(month, _strip_ordinal(match.group(1)), anchor)
    if kind == "day_range":
        month = month_number(match.group(1))
        if month is None:
            return None
        if anchor is None:
            return None
        return resolve_year(month, _strip_ordinal(match.group(2)), anchor)
    if kind == "month_part":
        month = month_number(match.group(2))
        if month is None:
            return None
        day = {"early": 5, "mid": 15, "late": 25}[
            match.group(1).lower()
        ]
        if match.group(3):
            return safe_date(int(match.group(3)), month, day)
        if anchor is None:
            return None
        return resolve_year(month, day, anchor)
    if kind == "relative_day":
        if anchor is None:
            return None
        word = match.group(1).lower()
        if word == "yesterday":
            return anchor - datetime.timedelta(days=1)
        if word == "tomorrow":
            return anchor + datetime.timedelta(days=1)
        return anchor  # today / tonight / this morning|afternoon|evening
    if kind == "relative_period":
        if anchor is None:
            return None
        direction = -1 if match.group(1).lower() == "last" else 1
        days = {"week": 7, "month": 30}[match.group(2).lower()]
        return anchor + datetime.timedelta(days=direction * days)
    if kind == "weekday":
        if anchor is None:
            return None
        modifier = (match.group(1) or "").lower()
        weekday = WEEKDAY_NAMES[match.group(2).lower()]
        if modifier == "next":
            direction = "future"
        elif modifier == "last":
            direction = "past"
        else:
            # Bare or "on"/"this" weekday: news reporting overwhelmingly
            # refers to the occurrence nearest the publication date.
            direction = "nearest"
        resolved = most_recent_weekday(weekday, anchor, direction)
        if modifier == "last" and resolved == anchor:
            resolved -= datetime.timedelta(days=7)
        if modifier == "next" and resolved == anchor:
            resolved += datetime.timedelta(days=7)
        return resolved
    if kind == "ago":
        if anchor is None:
            return None
        quantity = _number_word(match.group(1))
        unit = match.group(2).lower()
        days = {"day": 1, "week": 7, "month": 30}[unit] * quantity
        return anchor - datetime.timedelta(days=days)
    raise ValueError(f"unknown expression kind: {kind!r}")


def find_expressions(
    sentence: str,
    anchor: Optional[datetime.date] = None,
) -> List[TemporalExpression]:
    """Find all temporal expressions in *sentence*.

    *anchor* is the document creation time (publication date) used to
    resolve relative and underspecified expressions. Overlapping matches are
    resolved in favour of the more specific (earlier-listed) pattern.
    """
    taken: List[range] = []
    expressions: List[TemporalExpression] = []
    for kind, pattern in _PATTERNS:
        for match in pattern.finditer(sentence):
            span = range(match.start(), match.end())
            if any(
                span.start < other.stop and other.start < span.stop
                for other in taken
            ):
                continue
            date = _resolve(kind, match, anchor)
            taken.append(span)
            expressions.append(
                TemporalExpression(
                    text=match.group(0),
                    start=match.start(),
                    end=match.end(),
                    date=date,
                    kind=kind,
                )
            )
    expressions.sort(key=lambda e: e.start)
    return expressions
