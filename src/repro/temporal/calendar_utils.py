"""Calendar helpers shared by the temporal tagger."""

from __future__ import annotations

import calendar
import datetime
from typing import Optional

MONTH_NAMES = {
    "january": 1, "february": 2, "march": 3, "april": 4, "may": 5,
    "june": 6, "july": 7, "august": 8, "september": 9, "october": 10,
    "november": 11, "december": 12,
}

MONTH_ABBREVIATIONS = {
    "jan": 1, "feb": 2, "mar": 3, "apr": 4, "may": 5, "jun": 6,
    "jul": 7, "aug": 8, "sep": 9, "sept": 9, "oct": 10, "nov": 11,
    "dec": 12,
}

WEEKDAY_NAMES = {
    "monday": 0, "tuesday": 1, "wednesday": 2, "thursday": 3,
    "friday": 4, "saturday": 5, "sunday": 6,
}

NUMBER_WORDS = {
    "one": 1, "two": 2, "three": 3, "four": 4, "five": 5, "six": 6,
    "seven": 7, "eight": 8, "nine": 9, "ten": 10, "eleven": 11,
    "twelve": 12, "a": 1, "an": 1,
}


def month_number(name: str) -> Optional[int]:
    """Month number for a full or abbreviated month *name* (or ``None``)."""
    key = name.lower().rstrip(".")
    return MONTH_NAMES.get(key) or MONTH_ABBREVIATIONS.get(key)


def safe_date(year: int, month: int, day: int) -> Optional[datetime.date]:
    """Construct a date, returning ``None`` for invalid combinations."""
    try:
        return datetime.date(year, month, day)
    except ValueError:
        return None


def clamp_day(year: int, month: int, day: int) -> datetime.date:
    """Construct a date, clamping *day* into the month's valid range."""
    last = calendar.monthrange(year, month)[1]
    return datetime.date(year, month, min(max(day, 1), last))


def resolve_year(
    month: int, day: int, anchor: datetime.date
) -> Optional[datetime.date]:
    """Resolve a year-less ``month day`` against the *anchor* date.

    News copy such as "on June 12" nearly always refers to the occurrence of
    that calendar day nearest the publication date, so we pick among the
    anchor's year and its two neighbours the candidate minimising the
    absolute day distance to the anchor.
    """
    candidates = []
    for year in (anchor.year - 1, anchor.year, anchor.year + 1):
        candidate = safe_date(year, month, day)
        if candidate is not None:
            candidates.append(candidate)
    if not candidates:
        return None
    return min(candidates, key=lambda d: abs((d - anchor).days))


def most_recent_weekday(
    weekday: int, anchor: datetime.date, direction: str = "past"
) -> datetime.date:
    """The nearest date with the given *weekday* relative to *anchor*.

    ``direction='past'`` returns the most recent such day strictly before or
    on the anchor's week context; ``'future'`` the next occurrence;
    ``'nearest'`` whichever occurrence is closer (ties resolve to the past,
    matching how reporting usually references weekdays).
    """
    delta_past = (anchor.weekday() - weekday) % 7
    delta_future = (weekday - anchor.weekday()) % 7
    if direction == "past":
        return anchor - datetime.timedelta(days=delta_past)
    if direction == "future":
        return anchor + datetime.timedelta(days=delta_future)
    if direction == "nearest":
        if delta_past <= delta_future:
            return anchor - datetime.timedelta(days=delta_past)
        return anchor + datetime.timedelta(days=delta_future)
    raise ValueError(f"unknown direction: {direction!r}")


def parse_iso(text: str) -> Optional[datetime.date]:
    """Parse a strict ``YYYY-MM-DD`` string (or return ``None``)."""
    try:
        return datetime.date.fromisoformat(text)
    except ValueError:
        return None
