"""The temporal tagger: sentences in, dated sentences out.

Implements the preprocessing contract from Definition 2 and Appendix A of
the paper: every sentence is paired with (a) each *distinct* date expression
it contains and (b) the publication date of its article.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.temporal.expressions import TemporalExpression, find_expressions


@dataclass(frozen=True)
class TaggedSentence:
    """A sentence with its publication date and resolved date mentions."""

    text: str
    publication_date: datetime.date
    mentioned_dates: Tuple[datetime.date, ...] = ()
    expressions: Tuple[TemporalExpression, ...] = field(
        default=(), compare=False, repr=False
    )

    @property
    def all_dates(self) -> Tuple[datetime.date, ...]:
        """Publication date plus distinct mentioned dates, pub date first."""
        dates = [self.publication_date]
        for date in self.mentioned_dates:
            if date not in dates:
                dates.append(date)
        return tuple(dates)


@dataclass
class TemporalTagger:
    """Rule-based temporal tagger (HeidelTime substitute).

    Parameters
    ----------
    window:
        Optional ``(start, end)`` date window; resolved dates outside it are
        discarded, mirroring how the paper restricts timelines to the query
        window ``[t1, t2]``.
    include_relative:
        Whether relative expressions (``yesterday``, weekday names, ``ago``)
        are resolved; explicit dates are always tagged.
    """

    window: Optional[Tuple[datetime.date, datetime.date]] = None
    include_relative: bool = True

    _RELATIVE_KINDS = frozenset(
        {"relative_day", "weekday", "ago", "relative_period"}
    )

    def tag_sentence(
        self,
        sentence: str,
        publication_date: datetime.date,
    ) -> TaggedSentence:
        """Tag one sentence, resolving expressions against its pub date."""
        expressions = find_expressions(sentence, anchor=publication_date)
        if not self.include_relative:
            expressions = [
                e for e in expressions if e.kind not in self._RELATIVE_KINDS
            ]
        mentioned: List[datetime.date] = []
        for expression in expressions:
            date = expression.date
            if date is None or date in mentioned:
                continue
            if self.window is not None and not (
                self.window[0] <= date <= self.window[1]
            ):
                continue
            mentioned.append(date)
        return TaggedSentence(
            text=sentence,
            publication_date=publication_date,
            mentioned_dates=tuple(mentioned),
            expressions=tuple(expressions),
        )

    def tag_sentences(
        self,
        sentences: Sequence[str],
        publication_date: datetime.date,
    ) -> List[TaggedSentence]:
        """Tag a batch of sentences sharing one publication date."""
        return [
            self.tag_sentence(sentence, publication_date)
            for sentence in sentences
        ]
