"""Temporal tagging substrate -- the offline HeidelTime substitute.

WILSON's preprocessing tags every sentence with the calendar dates it
mentions; each ``(date, sentence)`` pair then feeds the date reference graph.
The paper uses HeidelTime (a Java rule-based tagger); this package provides a
pure-Python rule-based tagger covering the expression classes that occur in
news copy:

* explicit dates -- ``2018-06-12``, ``June 12, 2018``, ``12 June 2018``,
  ``06/12/2018``;
* underspecified dates -- ``June 12`` (year resolved against the
  publication date);
* relative expressions -- ``today``, ``yesterday``, ``tomorrow``,
  ``last Monday``, ``on Friday``, ``three days ago``.
"""

from repro.temporal.expressions import TemporalExpression, find_expressions
from repro.temporal.tagger import TaggedSentence, TemporalTagger

__all__ = [
    "TaggedSentence",
    "TemporalExpression",
    "TemporalTagger",
    "find_expressions",
]
