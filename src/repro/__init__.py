"""WILSON: fast and effective news timeline summarization.

A full reproduction of *"WILSON: A Divide and Conquer Approach for Fast and
Effective News Timeline Summarization"* (EDBT 2021), including every
substrate the paper depends on: temporal tagging, BM25/TF-IDF/TextRank,
PageRank, Affinity Propagation, ROUGE and timeline-aware ROUGE evaluation,
the TILSE-style submodular baselines, and a real-time search-engine-backed
timeline system.

Quickstart::

    from repro import Wilson, WilsonConfig, make_timeline17_like

    dataset = make_timeline17_like(scale=0.05)
    instance = dataset.instances[0]
    wilson = Wilson(WilsonConfig(
        num_dates=instance.target_num_dates,
        sentences_per_date=instance.target_sentences_per_date,
    ))
    timeline = wilson.summarize_corpus(instance.corpus)
    for date, sentences in timeline:
        print(date, sentences[0])
"""

from repro.core.pipeline import Wilson, WilsonConfig
from repro.core.date_selection import DateSelector, EdgeWeight, uniformity
from repro.core.compression import DateCountPredictor
from repro.core.variants import (
    wilson_full,
    wilson_tran,
    wilson_uniform,
    wilson_without_post,
)
from repro.tlsdata.types import (
    Article,
    Corpus,
    DatedSentence,
    Dataset,
    Timeline,
    TimelineInstance,
)
from repro.tlsdata.synthetic import (
    SyntheticConfig,
    SyntheticCorpusGenerator,
    make_crisis_like,
    make_timeline17_like,
)
from repro.temporal.tagger import TemporalTagger
from repro.tlsdata.storylines import StorylineSeparator

__version__ = "1.0.0"

__all__ = [
    "Article",
    "Corpus",
    "DateCountPredictor",
    "DateSelector",
    "DatedSentence",
    "Dataset",
    "EdgeWeight",
    "SyntheticConfig",
    "StorylineSeparator",
    "SyntheticCorpusGenerator",
    "TemporalTagger",
    "Timeline",
    "TimelineInstance",
    "Wilson",
    "WilsonConfig",
    "__version__",
    "make_crisis_like",
    "make_timeline17_like",
    "uniformity",
    "wilson_full",
    "wilson_tran",
    "wilson_uniform",
    "wilson_without_post",
]
