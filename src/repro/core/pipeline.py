"""The WILSON pipeline (Algorithm 1).

:class:`Wilson` wires together the stages:

1. temporal tagging (or pre-tagged dated sentences),
2. explicit date selection (Section 2.2, with optional recency adjustment),
3. per-day BM25-TextRank summarisation (Section 2.3),
4. cross-date post-processing (Section 2.3.1),
5. optionally, automatic date compression to pick T (Section 3.2.3).

Usage::

    wilson = Wilson(WilsonConfig(num_dates=10, sentences_per_date=2))
    timeline = wilson.summarize_corpus(corpus)
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.compression import DateCountPredictor
from repro.core.daily import DailySummarizer, DayMatrixCache
from repro.core.date_selection import (
    DEFAULT_ALPHA_GRID,
    DEFAULT_MAX_GRAPH_DATES,
    DateSelector,
    EdgeWeight,
)
from repro.rank.textrank import DEFAULT_TEXTRANK_NEIGHBORS
from repro.core.postprocess import (
    DEFAULT_REDUNDANCY_THRESHOLD,
    assemble_timeline,
    take_top_sentences,
)
from repro.graph.pagerank import DEFAULT_DAMPING
from repro.obs.trace import Tracer, ensure_tracer
from repro.temporal.tagger import TemporalTagger
from repro.text.analysis import TokenCache
from repro.text.compress import compress_timeline
from repro.tlsdata.types import Corpus, DatedSentence, Timeline


@dataclass
class WilsonConfig:
    """Configuration of the WILSON pipeline.

    ``num_dates=None`` triggers automatic date compression (Section 3.2.3);
    otherwise the preset T is used, matching the evaluation protocol where
    T comes from the ground-truth timeline.
    """

    num_dates: Optional[int] = None
    sentences_per_date: int = 2
    edge_weight: "EdgeWeight | str" = EdgeWeight.W3
    recency_adjustment: bool = True
    postprocess: bool = True
    redundancy_threshold: float = DEFAULT_REDUNDANCY_THRESHOLD
    damping: float = DEFAULT_DAMPING
    alpha_grid: Sequence[float] = DEFAULT_ALPHA_GRID
    #: Uniform date selection instead of the reference graph (the
    #: WILSON-uniform ablation of Table 7).
    uniform_dates: bool = False
    #: Fixed date selection (oracle experiments, Table 8); overrides both
    #: graph-based and uniform selection when set.
    fixed_dates: Optional[Sequence[datetime.date]] = None
    #: Local/global blend of the daily summariser (0.0 = the paper's
    #: purely local TextRank; >0 biases the restart distribution toward
    #: query-relevant sentences -- the future-work extension).
    query_bias: float = 0.0
    #: Deletion-based compression of the final daily summaries (the safe
    #: variant of the abstractive-TLS direction; see
    #: :mod:`repro.text.compress`). Off by default, as in the paper.
    compress_summaries: bool = False
    #: Worker threads for the per-day summarisation sub-tasks (the
    #: paper's parallel-processing remark in Section 2.3.1). 1 =
    #: sequential.
    daily_workers: int = 1
    #: Share one :class:`~repro.text.analysis.TokenCache` across every
    #: stage so each distinct sentence text is tokenised exactly once per
    #: pipeline lifetime. Disable only to reproduce the pre-cache
    #: baseline in benchmarks.
    analysis_cache: bool = True
    #: Use the batched sparse-matrix redundancy check in post-processing
    #: (identical output to the legacy per-pair loop, just faster).
    vectorized_postprocess: bool = True
    #: Cap on date-reference-graph nodes before PageRank (top-K by
    #: mention mass; see
    #: :data:`repro.core.date_selection.DEFAULT_MAX_GRAPH_DATES`).
    #: ``None`` disables the cap. The default is exact on every tier-1
    #: fixture -- pruning only engages on corpora with more candidate
    #: dates than the cap.
    max_graph_dates: Optional[int] = DEFAULT_MAX_GRAPH_DATES
    #: Per-sentence neighbour cap for the daily BM25 TextRank graph
    #: (:func:`repro.rank.textrank.truncate_neighbors`). ``None`` keeps
    #: the dense graph; the default is a no-op on days at or below the
    #: cap.
    textrank_neighbors: Optional[int] = DEFAULT_TEXTRANK_NEIGHBORS
    #: Memoise per-day TextRank adjacency matrices across queries
    #: (:class:`repro.core.daily.DayMatrixCache`). Identical output --
    #: a cached matrix is bit-for-bit the one that would be rebuilt --
    #: so this only trades bounded memory for cache-miss latency.
    day_matrix_cache: bool = True

    def __post_init__(self) -> None:
        if self.num_dates is not None and self.num_dates < 1:
            raise ValueError(
                f"num_dates must be None or >= 1, got {self.num_dates}"
            )
        if self.sentences_per_date < 1:
            raise ValueError(
                "sentences_per_date must be >= 1, got "
                f"{self.sentences_per_date}"
            )
        if self.max_graph_dates is not None and self.max_graph_dates < 1:
            raise ValueError(
                "max_graph_dates must be None or >= 1, got "
                f"{self.max_graph_dates}"
            )
        if (
            self.textrank_neighbors is not None
            and self.textrank_neighbors < 1
        ):
            raise ValueError(
                "textrank_neighbors must be None or >= 1, got "
                f"{self.textrank_neighbors}"
            )
        self.edge_weight = EdgeWeight.parse(self.edge_weight)


class Wilson:
    """Fast, unsupervised news timeline summarisation."""

    def __init__(
        self,
        config: Optional[WilsonConfig] = None,
        cache: Optional[TokenCache] = None,
    ) -> None:
        self.config = config or WilsonConfig()
        #: The shared analysis cache, or ``None`` when disabled. Long-lived:
        #: repeated ``summarize`` calls (e.g. the real-time query loop)
        #: reuse tokenisation across runs. Callers may pass their own
        #: cache to share it beyond this pipeline instance.
        self.cache: Optional[TokenCache] = (
            (cache if cache is not None else TokenCache())
            if self.config.analysis_cache
            else None
        )
        self._selector = DateSelector(
            edge_weight=self.config.edge_weight,
            recency_adjustment=self.config.recency_adjustment,
            alpha_grid=self.config.alpha_grid,
            damping=self.config.damping,
            max_graph_dates=self.config.max_graph_dates,
        )
        #: Shared per-day adjacency memoisation, or ``None`` when
        #: disabled. The real-time system re-keys it to the search
        #: index's version before each query (see
        #: :meth:`repro.search.realtime.RealTimeTimelineSystem.generate_timeline`).
        self.day_matrix_cache: Optional[DayMatrixCache] = (
            DayMatrixCache() if self.config.day_matrix_cache else None
        )
        self._summarizer = DailySummarizer(
            damping=self.config.damping,
            query_bias=self.config.query_bias,
            workers=self.config.daily_workers,
            cache=self.cache,
            neighbor_top_k=self.config.textrank_neighbors,
            matrix_cache=self.day_matrix_cache,
        )
        self._predictor = DateCountPredictor(
            summarizer=self._summarizer, cache=self.cache
        )

    # -- date selection --------------------------------------------------------

    def select_dates(
        self,
        dated_sentences: Sequence[DatedSentence],
        num_dates: Optional[int] = None,
        query: Sequence[str] = (),
        tracer: Optional[Tracer] = None,
    ) -> List[datetime.date]:
        """Stage 1: choose the timeline's dates.

        With a tracer, the work lands in a ``date_selection`` span --
        preceded by a ``compression.predict`` span when T has to be
        predicted (``num_dates=None``, Section 3.2.3).
        """
        tracer = ensure_tracer(tracer)
        config = self.config
        if config.fixed_dates is not None:
            with tracer.span("date_selection"):
                selected = sorted(config.fixed_dates)
                tracer.count("date_selection.selected_dates", len(selected))
            return selected
        if num_dates is None:
            num_dates = config.num_dates
        if num_dates is None:
            num_dates = max(
                1, self._predictor.predict(dated_sentences, tracer=tracer)
            )
        with tracer.span("date_selection"):
            if config.uniform_dates:
                selected = self._uniform_dates(dated_sentences, num_dates)
            else:
                selected = self._selector.select(
                    dated_sentences,
                    num_dates,
                    query=query,
                    tracer=tracer,
                    cache=self.cache,
                )
            tracer.count("date_selection.selected_dates", len(selected))
        return selected

    @staticmethod
    def _uniform_dates(
        dated_sentences: Sequence[DatedSentence], num_dates: int
    ) -> List[datetime.date]:
        """Truly uniformly distributed dates over the observed window.

        Evenly spaced target days are snapped to the nearest candidate date
        carrying sentences, without reuse.
        """
        candidates = sorted({s.date for s in dated_sentences})
        if not candidates:
            return []
        if len(candidates) <= num_dates:
            return candidates
        start, end = candidates[0], candidates[-1]
        span = (end - start).days
        chosen: List[datetime.date] = []
        used = set()
        for i in range(num_dates):
            target = start + datetime.timedelta(
                days=round(i * span / max(1, num_dates - 1))
            )
            nearest = min(
                (c for c in candidates if c not in used),
                key=lambda c: (abs((c - target).days), c),
            )
            used.add(nearest)
            chosen.append(nearest)
        return sorted(chosen)

    # -- full pipeline ----------------------------------------------------------

    def summarize(
        self,
        dated_sentences: Sequence[DatedSentence],
        num_dates: Optional[int] = None,
        num_sentences: Optional[int] = None,
        query: Sequence[str] = (),
        tracer: Optional[Tracer] = None,
    ) -> Timeline:
        """Generate a timeline from pre-tagged dated sentences.

        Passing a :class:`~repro.obs.trace.Tracer` records the per-stage
        spans documented in ``docs/observability.md`` (``pipeline`` root
        with ``date_selection`` / ``daily`` / ``postprocess`` / ...
        children); without one the run is untraced at no cost.
        """
        tracer = ensure_tracer(tracer)
        if not dated_sentences:
            return Timeline()
        config = self.config
        if num_sentences is None:
            num_sentences = config.sentences_per_date
        cache_before = (
            self.cache.stats() if self.cache is not None else None
        )
        with tracer.root_span("pipeline"):
            tracer.count("pipeline.input_sentences", len(dated_sentences))
            selected = self.select_dates(
                dated_sentences,
                num_dates=num_dates,
                query=query,
                tracer=tracer,
            )
            if not selected:
                return Timeline()
            ranked_days = self._summarizer.rank_days(
                dated_sentences, selected, query=query, tracer=tracer
            )
            with tracer.span("postprocess"):
                if config.postprocess:
                    timeline = assemble_timeline(
                        ranked_days,
                        num_sentences,
                        redundancy_threshold=config.redundancy_threshold,
                        tracer=tracer,
                        cache=self.cache,
                        vectorized=config.vectorized_postprocess,
                    )
                else:
                    timeline = take_top_sentences(
                        ranked_days, num_sentences
                    )
                tracer.count(
                    "postprocess.timeline_sentences",
                    sum(len(sentences) for _, sentences in timeline),
                )
            if config.compress_summaries:
                with tracer.span("compression.summaries"):
                    timeline = compress_timeline(timeline)
                    tracer.count(
                        "compression.sentences_compressed",
                        sum(len(sentences) for _, sentences in timeline),
                    )
            if self.cache is not None:
                # One batched delta per run -- the cache outlives the
                # pipeline call, so only this run's hits/misses count.
                self.cache.report(tracer, cache_before)
        return timeline

    def summarize_corpus(
        self,
        corpus: Corpus,
        num_dates: Optional[int] = None,
        num_sentences: Optional[int] = None,
        tagger: Optional[TemporalTagger] = None,
        tracer: Optional[Tracer] = None,
    ) -> Timeline:
        """Tokenise + tag *corpus*, then generate its timeline."""
        tracer = ensure_tracer(tracer)
        with tracer.root_span("pipeline"):
            with tracer.span("tagging"):
                dated = corpus.dated_sentences(tagger=tagger)
                tracer.count("tagging.dated_sentences", len(dated))
            return self.summarize(
                dated,
                num_dates=num_dates,
                num_sentences=num_sentences,
                query=corpus.query,
                tracer=tracer,
            )
