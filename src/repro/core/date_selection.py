"""Explicit date selection (Section 2.2).

The date reference graph has one node per candidate date (any date carrying
at least one dated sentence) and a directed edge ``date_i -> date_j``
whenever a sentence *published* on ``date_i`` *mentions* ``date_j``. Four
edge-weight schemes are supported (Table 2):

* **W1** -- the number of reference sentences ``|s_ij|``;
* **W2** -- the temporal distance ``|date_j - date_i|`` in days;
* **W3** -- ``W1 * W2`` (frequency x distance; the paper's default);
* **W4** -- ``max BM25(s_ij, q)``, the strongest topical relevance of the
  reference sentences to the query.

Salient dates are the top-T nodes by (personalized) PageRank. The **recency
adjustment** (Section 2.2.1) replaces the uniform restart distribution with
``W_i = alpha^{-|date_i - date_start|}`` and grid-searches ``alpha`` for the
selection whose consecutive-gap standard deviation -- the *uniformity* of
Definition 3 -- is smallest.
"""

from __future__ import annotations

import datetime
import enum
import math
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.graph.graphs import WeightedDigraph
from repro.graph.pagerank import DEFAULT_DAMPING, pagerank, pagerank_matrix
from repro.obs.trace import Tracer, ensure_tracer
from repro.text.analysis import TokenCache, tokenize_with
from repro.text.bm25 import BM25
from repro.tlsdata.types import DatedSentence


class EdgeWeight(enum.Enum):
    """Edge-weight schemes for the date reference graph (Section 2.2)."""

    W1 = "W1"
    W2 = "W2"
    W3 = "W3"
    W4 = "W4"

    @classmethod
    def parse(cls, value: "EdgeWeight | str") -> "EdgeWeight":
        """Accept either an enum member or its string name."""
        if isinstance(value, cls):
            return value
        return cls(value.upper())


#: Default alpha grid for the recency adjustment. Values close to 1 shift
#: only mildly toward recent dates; small values shift strongly. The limit
#: ``alpha = 1.0`` is the uniform restart distribution (plain PageRank), so
#: including it guarantees the grid search never yields a selection less
#: uniform than no adjustment at all.
DEFAULT_ALPHA_GRID: Tuple[float, ...] = (
    0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.93, 0.95, 0.97,
    0.98, 0.99, 0.995, 0.999, 1.0,
)

#: Default cap on date-reference-graph nodes. Every tier-1 fixture (and
#: any realistically windowed query) has far fewer candidate dates, so
#: the default changes nothing on them -- it only bounds the PageRank
#: grid search when an unwindowed query over a years-long corpus would
#: otherwise build a graph with thousands of nodes.
DEFAULT_MAX_GRAPH_DATES = 512


def uniformity(dates: Sequence[datetime.date]) -> float:
    """Uniformity of a date selection (Definition 3).

    The standard deviation of the gaps between consecutive selected dates;
    lower is more uniform. Selections with fewer than two dates are
    perfectly uniform (0.0).
    """
    if len(dates) < 2:
        return 0.0
    ordered = sorted(dates)
    gaps = np.array(
        [
            (ordered[i + 1] - ordered[i]).days
            for i in range(len(ordered) - 1)
        ],
        dtype=np.float64,
    )
    return float(gaps.std())


def uniformity_score(dates: Sequence[datetime.date]) -> float:
    """Normalised Definition-3 uniformity in ``[0, 1]``; higher is better.

    :func:`uniformity` is an *unbounded* dispersion (the raw standard
    deviation of consecutive gaps), which makes selections over different
    time spans incomparable. This score divides by the mean gap -- the
    coefficient of variation -- and maps it through ``1 / (1 + cv)``:
    perfectly even spacing scores 1.0, and the score decays toward 0 as
    the spacing grows more lopsided, independent of the span's length.
    Selections with fewer than two dates (or all dates equal, where no
    spacing exists to judge) score a perfect 1.0.
    """
    if len(dates) < 2:
        return 1.0
    ordered = sorted(dates)
    gaps = np.array(
        [
            (ordered[i + 1] - ordered[i]).days
            for i in range(len(ordered) - 1)
        ],
        dtype=np.float64,
    )
    mean_gap = float(gaps.mean())
    if mean_gap == 0.0:
        return 1.0
    coefficient_of_variation = float(gaps.std()) / mean_gap
    return 1.0 / (1.0 + coefficient_of_variation)


@dataclass
class _ReferenceAggregate:
    """Aggregated statistics of all references from one date to another."""

    count: int = 0
    gap_days: int = 0
    max_bm25: float = 0.0


class DateReferenceGraph:
    """The date reference graph plus per-edge reference statistics.

    Build once from the dated sentences, then materialise a
    :class:`WeightedDigraph` for any of the four weight schemes without
    re-scanning the corpus.
    """

    def __init__(
        self,
        dated_sentences: Sequence[DatedSentence],
        query: Sequence[str] = (),
        cache: Optional[TokenCache] = None,
    ) -> None:
        self._aggregates: Dict[
            Tuple[datetime.date, datetime.date], _ReferenceAggregate
        ] = {}
        self._dates: Dict[datetime.date, None] = {}

        references = [s for s in dated_sentences if s.is_reference]
        for sentence in dated_sentences:
            self._dates.setdefault(sentence.date, None)
            self._dates.setdefault(sentence.publication_date, None)

        bm25_scores = self._reference_bm25(references, query, cache=cache)
        for sentence, bm25_score in zip(references, bm25_scores):
            key = (sentence.publication_date, sentence.date)
            aggregate = self._aggregates.get(key)
            if aggregate is None:
                aggregate = _ReferenceAggregate(
                    gap_days=sentence.reference_gap_days
                )
                self._aggregates[key] = aggregate
            aggregate.count += 1
            if bm25_score > aggregate.max_bm25:
                aggregate.max_bm25 = bm25_score

    @staticmethod
    def _reference_bm25(
        references: Sequence[DatedSentence],
        query: Sequence[str],
        cache: Optional[TokenCache] = None,
    ) -> List[float]:
        """BM25 relevance of each reference sentence to the topic query.

        Each sentence is treated as a document (W4 in Section 2.2). Without
        a query every reference scores zero, which degrades W4 to uniform
        edge weights.
        """
        if not references or not query:
            return [0.0] * len(references)
        tokenised = tokenize_with(
            cache, [sentence.text for sentence in references]
        )
        query_tokens = tokenize_with(cache, [" ".join(query)])[0]
        bm25 = BM25(tokenised)
        return [float(v) for v in bm25.scores(query_tokens)]

    # -- accessors -----------------------------------------------------------

    @property
    def candidate_dates(self) -> List[datetime.date]:
        """All dates observed in the corpus, sorted."""
        return sorted(self._dates)

    def num_candidate_dates(self) -> int:
        """Number of distinct candidate dates (graph nodes before pruning)."""
        return len(self._dates)

    def num_references(self) -> int:
        """Total number of aggregated (publication, mention) date pairs."""
        return len(self._aggregates)

    def mention_mass(self) -> Dict[datetime.date, int]:
        """Reference sentences incident to each candidate date.

        A date's mass is the number of reference sentences published on
        it plus the number mentioning it -- how strongly the corpus
        "talks about" the date. Dates that only appear as bare
        publication days (no references either way) have mass 0.
        """
        mass: Dict[datetime.date, int] = dict.fromkeys(self._dates, 0)
        for (source, target), aggregate in self._aggregates.items():
            mass[source] += aggregate.count
            mass[target] += aggregate.count
        return mass

    def top_dates_by_mass(
        self, max_dates: int
    ) -> FrozenSet[datetime.date]:
        """The ``max_dates`` candidate dates with the most reference mass.

        Ties break chronologically (earlier date first), so the result
        is deterministic for a fixed corpus.
        """
        mass = self.mention_mass()
        ranked = sorted(mass.items(), key=lambda kv: (-kv[1], kv[0]))
        return frozenset(date for date, _ in ranked[:max_dates])

    def to_graph(
        self,
        weight: "EdgeWeight | str",
        restrict: Optional[FrozenSet[datetime.date]] = None,
    ) -> WeightedDigraph:
        """Materialise the digraph under the chosen weight scheme.

        With *restrict*, only dates in the set become nodes and only
        edges with both endpoints kept survive -- the top-K pruning of
        the cold query path.
        """
        weight = EdgeWeight.parse(weight)
        graph = WeightedDigraph()
        for date in self._dates:
            if restrict is not None and date not in restrict:
                continue
            graph.add_node(date)
        for (source, target), aggregate in self._aggregates.items():
            if source == target:
                continue
            if restrict is not None and (
                source not in restrict or target not in restrict
            ):
                continue
            if weight is EdgeWeight.W1:
                value = float(aggregate.count)
            elif weight is EdgeWeight.W2:
                value = float(aggregate.gap_days)
            elif weight is EdgeWeight.W3:
                value = float(aggregate.count * aggregate.gap_days)
            else:
                value = aggregate.max_bm25
            if value > 0:
                graph.set_edge(source, target, value)
        return graph


@dataclass
class DateSelector:
    """Select the T most salient dates from a corpus of dated sentences.

    Parameters
    ----------
    edge_weight:
        One of W1-W4 (default W3, the paper's choice).
    recency_adjustment:
        Enable the personalized-PageRank recency adjustment with the
        uniformity-driven grid search over alpha.
    alpha_grid:
        Candidate alphas for the grid search.
    damping:
        PageRank damping factor (NetworkX default 0.85).
    max_graph_dates:
        Cap on date-reference-graph nodes: when more candidate dates
        exist, only the top ``max_graph_dates`` by
        :meth:`DateReferenceGraph.mention_mass` enter the graph before
        PageRank. ``None`` disables the cap; the default is a no-op on
        every tier-1 fixture (see :data:`DEFAULT_MAX_GRAPH_DATES`).
    """

    edge_weight: "EdgeWeight | str" = EdgeWeight.W3
    recency_adjustment: bool = True
    alpha_grid: Sequence[float] = field(default=DEFAULT_ALPHA_GRID)
    damping: float = DEFAULT_DAMPING
    max_graph_dates: Optional[int] = DEFAULT_MAX_GRAPH_DATES

    def __post_init__(self) -> None:
        self.edge_weight = EdgeWeight.parse(self.edge_weight)
        for alpha in self.alpha_grid:
            if not 0.0 < alpha <= 1.0:
                raise ValueError(
                    f"alpha grid values must lie in (0, 1], got {alpha}"
                )
        if self.max_graph_dates is not None and self.max_graph_dates < 1:
            raise ValueError(
                "max_graph_dates must be None or >= 1, got "
                f"{self.max_graph_dates}"
            )

    # -- public API ----------------------------------------------------------

    def select(
        self,
        dated_sentences: Sequence[DatedSentence],
        num_dates: int,
        query: Sequence[str] = (),
        tracer: Optional[Tracer] = None,
        cache: Optional[TokenCache] = None,
    ) -> List[datetime.date]:
        """Return the selected dates in chronological order."""
        if num_dates < 1:
            raise ValueError(f"num_dates must be >= 1, got {num_dates}")
        tracer = ensure_tracer(tracer)
        graph = self._build_graph(dated_sentences, query, tracer, cache)
        if graph.number_of_nodes() == 0:
            return []
        with tracer.span("date_selection.pagerank"):
            if self.recency_adjustment:
                dates, _alpha = self._select_with_recency(
                    graph, num_dates, tracer=tracer
                )
                return dates
            return self._top_dates(
                pagerank(
                    graph,
                    damping=self.damping,
                    tracer=tracer,
                    counter_prefix="date_selection.pagerank",
                ),
                num_dates,
            )

    def select_with_scores(
        self,
        dated_sentences: Sequence[DatedSentence],
        query: Sequence[str] = (),
        tracer: Optional[Tracer] = None,
        cache: Optional[TokenCache] = None,
    ) -> Dict[datetime.date, float]:
        """Full PageRank score map over candidate dates (no truncation)."""
        tracer = ensure_tracer(tracer)
        graph = self._build_graph(dated_sentences, query, tracer, cache)
        if graph.number_of_nodes() == 0:
            return {}
        with tracer.span("date_selection.pagerank"):
            return pagerank(
                graph,
                damping=self.damping,
                tracer=tracer,
                counter_prefix="date_selection.pagerank",
            )

    # -- internals -----------------------------------------------------------

    def _build_graph(
        self,
        dated_sentences: Sequence[DatedSentence],
        query: Sequence[str],
        tracer: Tracer,
        cache: Optional[TokenCache] = None,
    ) -> WeightedDigraph:
        """Aggregate date references and materialise the weighted digraph.

        Applies the ``max_graph_dates`` cap: with more candidate dates
        than the cap, only the top-K by mention mass enter the graph
        (``prune.graph_dates_considered`` / ``prune.graph_dates_pruned``
        count the decision either way).
        """
        with tracer.span("date_selection.build_graph"):
            reference_graph = DateReferenceGraph(
                dated_sentences, query=query, cache=cache
            )
            num_candidates = reference_graph.num_candidate_dates()
            restrict: Optional[FrozenSet[datetime.date]] = None
            if (
                self.max_graph_dates is not None
                and num_candidates > self.max_graph_dates
            ):
                restrict = reference_graph.top_dates_by_mass(
                    self.max_graph_dates
                )
            tracer.count("prune.graph_dates_considered", num_candidates)
            tracer.count(
                "prune.graph_dates_pruned",
                0 if restrict is None else num_candidates - len(restrict),
            )
            graph = reference_graph.to_graph(
                self.edge_weight, restrict=restrict
            )
            tracer.count(
                "date_selection.graph_nodes", graph.number_of_nodes()
            )
            tracer.count(
                "date_selection.graph_edges", graph.number_of_edges()
            )
            tracer.count(
                "date_selection.reference_pairs",
                reference_graph.num_references(),
            )
        return graph

    @staticmethod
    def _top_dates(
        scores: Dict[datetime.date, float], num_dates: int
    ) -> List[datetime.date]:
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return sorted(date for date, _ in ranked[:num_dates])

    @staticmethod
    def recency_personalization(
        dates: Iterable[datetime.date], alpha: float
    ) -> Dict[datetime.date, float]:
        """Restart distribution ``W_i = alpha^{-|date_i - date_start|}``.

        Computed in normalised form ``alpha^{d_max - d_i}`` to avoid
        overflow for long windows: since ``alpha < 1`` the most recent date
        receives weight 1 and older dates decay geometrically.
        """
        dates = list(dates)
        if not dates:
            return {}
        start = min(dates)
        offsets = {date: (date - start).days for date in dates}
        max_offset = max(offsets.values())
        log_alpha = math.log(alpha)
        return {
            date: math.exp((max_offset - offset) * log_alpha)
            for date, offset in offsets.items()
        }

    def _select_with_recency(
        self,
        graph: WeightedDigraph,
        num_dates: int,
        tracer: Optional[Tracer] = None,
    ) -> Tuple[List[datetime.date], Optional[float]]:
        """Grid-search alpha for the most uniform date selection.

        Faithful to Algorithm 1 (lines 4-9): only the alpha candidates
        compete; the plain uniform-restart selection is not a fallback.
        Ties prefer the larger alpha (the mildest adjustment).
        """
        tracer = ensure_tracer(tracer)
        candidates: List[Tuple[float, Optional[float], List[datetime.date]]]
        candidates = []
        tracer.count(
            "date_selection.alpha_candidates", len(self.alpha_grid)
        )
        # The adjacency matrix is alpha-independent: materialise it once
        # and run the matrix-level PageRank per grid point instead of
        # rebuilding it inside pagerank() for every alpha.
        adjacency, order = graph.to_adjacency()
        for alpha in self.alpha_grid:
            personalization = self.recency_personalization(order, alpha)
            vector = np.array(
                [personalization.get(node, 0.0) for node in order],
                dtype=np.float64,
            )
            score_vector = pagerank_matrix(
                adjacency,
                damping=self.damping,
                personalization=vector,
                tracer=tracer,
                counter_prefix="date_selection.pagerank",
            )
            scores = {
                node: float(score)
                for node, score in zip(order, score_vector)
            }
            selection = self._top_dates(scores, num_dates)
            candidates.append((uniformity(selection), alpha, selection))
        best = min(
            candidates,
            key=lambda item: (item[0], -(item[1] or 0.0)),
        )
        return best[2], best[1]
