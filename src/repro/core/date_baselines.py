"""Alternative date-selection strategies for ablation.

The paper compares its PageRank date selection against uniform dates and
the ground truth; the wider literature also uses simpler salience
signals. This module collects them behind one interface so the date
stage can be ablated independently of the rest of the pipeline:

* :class:`PublicationVolumeSelector` -- the classic frequency heuristic:
  the days with the most *published* sentences ([4, 19]'s "date
  frequency" signal).
* :class:`MentionCountSelector` -- raw citation counting: the days most
  often *mentioned* by other days' sentences (the reference graph's
  in-degree, without the random walk).
* :class:`BurstDateSelector` -- days whose publication volume bursts
  above the local baseline (cf. TimeMine [21]).

All return chronologically sorted date lists, like
:class:`repro.core.date_selection.DateSelector`.
"""

from __future__ import annotations

import datetime
import statistics
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.tlsdata.types import DatedSentence


def _top_dates(
    scores: Dict[datetime.date, float], num_dates: int
) -> List[datetime.date]:
    ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
    return sorted(date for date, _ in ranked[:num_dates])


@dataclass
class PublicationVolumeSelector:
    """Select the days with the most published sentences."""

    def select(
        self,
        dated_sentences: Sequence[DatedSentence],
        num_dates: int,
    ) -> List[datetime.date]:
        if num_dates < 1:
            raise ValueError(f"num_dates must be >= 1, got {num_dates}")
        volumes: Dict[datetime.date, float] = {}
        for sentence in dated_sentences:
            if not sentence.is_reference:
                volumes[sentence.date] = volumes.get(sentence.date, 0) + 1
        return _top_dates(volumes, num_dates)


@dataclass
class MentionCountSelector:
    """Select the days most often mentioned by other days' sentences.

    This is the date reference graph's weighted in-degree -- the signal
    PageRank propagates -- used directly. Comparing it against the full
    PageRank selection isolates what the random walk itself adds.
    """

    #: Weigh each mention by its day gap (the W3 idea) instead of 1.
    gap_weighted: bool = False

    def select(
        self,
        dated_sentences: Sequence[DatedSentence],
        num_dates: int,
    ) -> List[datetime.date]:
        if num_dates < 1:
            raise ValueError(f"num_dates must be >= 1, got {num_dates}")
        mentions: Dict[datetime.date, float] = {}
        for sentence in dated_sentences:
            if not sentence.is_reference:
                mentions.setdefault(sentence.date, 0.0)
                continue
            weight = (
                float(sentence.reference_gap_days)
                if self.gap_weighted
                else 1.0
            )
            mentions[sentence.date] = (
                mentions.get(sentence.date, 0.0) + weight
            )
        return _top_dates(mentions, num_dates)


@dataclass
class BurstDateSelector:
    """Select days whose publication volume bursts above the baseline.

    Days are scored by their volume's z-score against the corpus-wide
    per-day distribution; the top-T burst days are returned. Where fewer
    than T days burst at all, the remaining slots fall back to raw
    volume order.
    """

    def select(
        self,
        dated_sentences: Sequence[DatedSentence],
        num_dates: int,
    ) -> List[datetime.date]:
        if num_dates < 1:
            raise ValueError(f"num_dates must be >= 1, got {num_dates}")
        volumes: Dict[datetime.date, float] = {}
        for sentence in dated_sentences:
            if not sentence.is_reference:
                volumes[sentence.date] = volumes.get(sentence.date, 0) + 1
        if not volumes:
            return []
        counts = list(volumes.values())
        mean = statistics.fmean(counts)
        std = statistics.pstdev(counts)
        if std == 0:
            return _top_dates(volumes, num_dates)
        z_scores = {
            date: (count - mean) / std
            for date, count in volumes.items()
        }
        return _top_dates(z_scores, num_dates)
