"""Automatic date compression (Section 3.2.3).

Choosing the number of timeline dates T normally requires corpus-level
intuition. The paper's extension predicts T from major-event coverage:
generate a daily summary for every candidate date, embed the summaries
(BERT in the paper, LSA here -- see DESIGN.md), cluster the embeddings with
Affinity Propagation, and use the number of clusters as T.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.daily import DailySummarizer, group_by_date
from repro.graph.affinity_propagation import AffinityPropagation
from repro.obs.trace import Tracer, ensure_tracer
from repro.text.analysis import TokenCache
from repro.text.embeddings import LsaEmbedder
from repro.tlsdata.types import DatedSentence


@dataclass
class DateCountPredictor:
    """Predict the number of timeline dates via event clustering.

    Parameters
    ----------
    summary_sentences:
        How many top sentences represent each candidate date.
    embedding_dimensions:
        Dimensionality of the LSA embedding space.
    min_day_sentences:
        Candidate dates with fewer sentences than this are ignored --
        they cannot describe a major event.
    damping / preference:
        Affinity Propagation knobs; the default median preference lets the
        cluster count adapt to the data, which is the entire point.
    """

    summary_sentences: int = 2
    embedding_dimensions: int = 48
    min_day_sentences: int = 2
    damping: float = 0.7
    preference: Optional[float] = None
    seed: int = 0
    summarizer: DailySummarizer = field(default_factory=DailySummarizer)
    #: Optional shared :class:`~repro.text.analysis.TokenCache` handed to
    #: the LSA embedder (the summariser carries its own ``cache`` field).
    cache: Optional[TokenCache] = None

    def daily_digests(
        self, dated_sentences: Sequence[DatedSentence]
    ) -> Dict[datetime.date, str]:
        """One digest string per candidate date (its top TextRank sentences)."""
        grouped = group_by_date(dated_sentences)
        digests: Dict[datetime.date, str] = {}
        for date in sorted(grouped):
            pool = grouped[date]
            if len(pool) < self.min_day_sentences:
                continue
            ranked = self.summarizer.rank_day(date, pool)
            digests[date] = " ".join(
                ranked.sentences[: self.summary_sentences]
            )
        return digests

    def predict(
        self,
        dated_sentences: Sequence[DatedSentence],
        tracer: Optional[Tracer] = None,
    ) -> int:
        """Predicted number of timeline dates (>= 1 for non-empty input)."""
        count, _ = self.predict_with_clusters(dated_sentences, tracer=tracer)
        return count

    def predict_with_clusters(
        self,
        dated_sentences: Sequence[DatedSentence],
        tracer: Optional[Tracer] = None,
    ) -> Tuple[int, Dict[datetime.date, int]]:
        """Predicted date count plus the date -> cluster assignment."""
        tracer = ensure_tracer(tracer)
        with tracer.span("compression.predict"):
            digests = self.daily_digests(dated_sentences)
            dates: List[datetime.date] = list(digests)
            tracer.count("compression.candidate_dates", len(dates))
            if not dates:
                return 0, {}
            if len(dates) == 1:
                tracer.count("compression.predicted_dates", 1)
                return 1, {dates[0]: 0}
            embedder = LsaEmbedder(
                dimensions=self.embedding_dimensions, cache=self.cache
            )
            similarities = embedder.fit(
                [digests[d] for d in dates]
            ).similarity_matrix([digests[d] for d in dates])
            clustering = AffinityPropagation(
                damping=self.damping,
                preference=self.preference,
                seed=self.seed,
            ).fit(similarities)
            assignment = {
                date: int(label)
                for date, label in zip(dates, clustering.labels)
            }
            tracer.count(
                "compression.predicted_dates", clustering.n_clusters
            )
            return clustering.n_clusters, assignment
