"""Daily summarisation (Section 2.3).

For each selected date, WILSON ranks that day's sentences with TextRank over
a directed BM25 sentence graph (Barrios et al., 2016) -- "when calculating
the edge weight of one sentence to other sentences, we treat the source
sentence as query and other sentences as documents" (Appendix A). Sentences
dated the same day by multiple expressions are deduplicated by text.
"""

from __future__ import annotations

import datetime
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graph.pagerank import DEFAULT_DAMPING
from repro.obs.trace import Tracer, ensure_tracer
from repro.rank.textrank import textrank_bm25
from repro.text.analysis import TokenCache
from repro.text.bm25 import BM25Parameters
from repro.tlsdata.types import DatedSentence

#: Default byte budget for :class:`DayMatrixCache`. Entries are ranked
#: orders (8 bytes per sentence), so 4 MiB holds on the order of ten
#: thousand heavy days -- effectively every day a serving index spans.
DEFAULT_DAY_MATRIX_BYTES = 4 * 1024 * 1024


class DayMatrixCache:
    """Thread-safe LRU memoising each day's BM25-TextRank outcome.

    Under concurrent serving the same day's sentence pool recurs
    constantly -- overlapping query windows share days, and reference
    sentences pin popular dates -- yet every cache-miss query used to
    rebuild the same O(N^2) BM25 adjacency matrix and re-run PageRank
    on it. The matrix and its ranking are fully determined by the cache
    key, so memoising just the ranked *order* (not the megabytes-large
    matrix, which a replay never touches) lets a hit skip both the
    matrix build and the PageRank run while returning bit-identical
    results. Keys cover the day, the exact sentence pool and every
    ranking parameter, plus the owning index's version so ingestion
    invalidates stale entries (:meth:`sync_version`).

    Entries are evicted least-recently-used by *byte* budget: orders
    are ~8 bytes per pooled sentence, so the default budget outlasts
    any realistic day span and eviction only guards pathological use.
    """

    def __init__(self, max_bytes: int = DEFAULT_DAY_MATRIX_BYTES) -> None:
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        #: key -> ranked order (tuple of pool indices, best first).
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._bytes = 0
        self._version: Optional[int] = None

    @property
    def version(self) -> int:
        """The index revision the cached entries are keyed against.

        ``-1`` until the first :meth:`sync_version` -- callers use this
        to ask the live index which days changed since (see
        ``LiveIndex.touched_dates_since``).
        """
        with self._lock:
            return -1 if self._version is None else self._version

    def sync_version(
        self,
        version: int,
        touched_dates: Optional[Iterable[datetime.date]] = None,
    ) -> int:
        """Re-key the cache to a new index revision; returns evictions.

        Without *touched_dates* every entry is invalidated (the only
        safe default: the caller cannot say which days changed). With a
        touched-dates set -- what a sealed ingest segment reports --
        eviction is day-scoped: only entries for touched days drop,
        and every survivor is re-keyed to the new revision. A day's
        ranking is fully determined by its key (exact sentence pool +
        parameters), so an untouched day's entry stays bit-correct
        across revisions; re-keying just keeps :meth:`make_key` lookups
        landing on it.
        """
        with self._lock:
            if version == self._version:
                return 0
            if touched_dates is None or self._version is None:
                evicted = len(self._entries)
                self._entries.clear()
                self._bytes = 0
                self._version = version
                return evicted
            touched = set(touched_dates)
            survivors: "OrderedDict[tuple, tuple]" = OrderedDict()
            kept_bytes = 0
            evicted = 0
            for key, entry in self._entries.items():
                if key[1] in touched:
                    evicted += 1
                    continue
                survivors[(version,) + key[1:]] = entry
                kept_bytes += self._entry_bytes(entry)
            self._entries = survivors
            self._bytes = kept_bytes
            self._version = version
            return evicted

    def make_key(
        self,
        date: datetime.date,
        pool: Sequence[str],
        params: BM25Parameters,
        neighbor_top_k: Optional[int],
        damping: float,
    ) -> tuple:
        """Cache key: day + exact pool + ranking parameters + version."""
        with self._lock:
            version = self._version
        return (
            version,
            date,
            params.k1,
            params.b,
            neighbor_top_k,
            damping,
            tuple(pool),
        )

    @staticmethod
    def _entry_bytes(entry: tuple) -> int:
        return 8 * len(entry)

    def get(self, key: tuple) -> Optional[tuple]:
        """The cached ranked order for *key*, or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, key: tuple, order: Sequence[int]) -> None:
        """Memoise a day's TextRank *order* (pool indices, best first)."""
        entry = tuple(order)
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= self._entry_bytes(previous)
            self._entries[key] = entry
            self._bytes += self._entry_bytes(entry)
            while self._bytes > self.max_bytes and len(self._entries) > 1:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= self._entry_bytes(evicted)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._bytes

    def __repr__(self) -> str:
        return (
            f"DayMatrixCache(entries={len(self)}, "
            f"bytes={self.nbytes}, max_bytes={self.max_bytes})"
        )


@dataclass(eq=False)
class RankedDay:
    """One day's sentences ranked by TextRank importance.

    ``sentences`` is ordered best-first -- the "max heap" ``H_i`` of
    Algorithm 1; ``pop()`` consumes the current best.
    """

    date: datetime.date
    sentences: List[str]
    _cursor: int = field(default=0, repr=False)

    def peek(self) -> str:
        """The best not-yet-consumed sentence (raises when exhausted)."""
        if self.exhausted:
            raise IndexError(f"no sentences left for {self.date}")
        return self.sentences[self._cursor]

    def pop(self) -> str:
        """Consume and return the best remaining sentence."""
        sentence = self.peek()
        self._cursor += 1
        return sentence

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self.sentences)

    def remaining(self) -> int:
        return len(self.sentences) - self._cursor


def group_by_date(
    dated_sentences: Sequence[DatedSentence],
) -> Dict[datetime.date, List[str]]:
    """Group sentence texts by their date, deduplicating within a day.

    A sentence carrying several date expressions legitimately appears under
    several dates (Appendix A), but within a single day each distinct text
    is kept once.
    """
    buckets: Dict[datetime.date, Tuple[List[str], set]] = {}
    for sentence in dated_sentences:
        entry = buckets.get(sentence.date)
        if entry is None:
            entry = buckets[sentence.date] = ([], set())
        texts, seen_texts = entry
        if sentence.text not in seen_texts:
            seen_texts.add(sentence.text)
            texts.append(sentence.text)
    return {date: texts for date, (texts, _) in buckets.items()}


@dataclass
class DailySummarizer:
    """Rank each selected day's sentence pool with BM25-TextRank."""

    damping: float = DEFAULT_DAMPING
    bm25_params: BM25Parameters = field(default_factory=BM25Parameters)
    #: Cap on sentences ranked per day; very heavy days are truncated to the
    #: first ``max_sentences_per_day`` sentences to bound the O(N^2) graph.
    max_sentences_per_day: int = 600
    #: Optional local/global blend (the paper's future-work direction):
    #: with ``query_bias > 0`` the TextRank restart distribution leans
    #: toward sentences relevant to the topic query, mixing a global
    #: relevance signal into the otherwise purely local day ranking.
    query_bias: float = 0.0
    #: Worker threads for ranking days concurrently. Daily summarisation
    #: tasks are independent -- "these sub-tasks can naturally be further
    #: accelerated through parallel processing" (Section 2.3.1) -- and
    #: the numpy-heavy inner loops release the GIL. 1 = sequential.
    workers: int = 1
    #: Optional shared :class:`~repro.text.analysis.TokenCache`. Reference
    #: sentences appear under several dates, so days share tokenisation
    #: work -- and later stages (post-processing, the date-count
    #: predictor) reuse the streams for free. Thread-safe, so the
    #: parallel path shares it too.
    cache: Optional[TokenCache] = None
    #: Per-sentence neighbour cap for the BM25 TextRank graph (see
    #: :func:`repro.rank.textrank.truncate_neighbors`). ``None`` keeps
    #: the dense graph.
    neighbor_top_k: Optional[int] = None
    #: Optional shared :class:`DayMatrixCache` memoising day rankings
    #: across queries. Bypassed when ``query_bias > 0`` (the
    #: personalised restart depends on the query, which the cache key
    #: does not cover).
    matrix_cache: Optional[DayMatrixCache] = None

    def rank_day(
        self,
        date: datetime.date,
        sentences: Sequence[str],
        query: Sequence[str] = (),
        tracer: Optional[Tracer] = None,
    ) -> RankedDay:
        """TextRank one day's sentences; returns them best-first."""
        tracer = ensure_tracer(tracer)
        pool = list(sentences)[: self.max_sentences_per_day]
        with tracer.span("daily.rank_day"):
            tracer.count("daily.sentences_ranked", len(pool))
            if len(sentences) > len(pool):
                tracer.count(
                    "daily.sentences_truncated",
                    len(sentences) - len(pool),
                )
            memoise = (
                self.matrix_cache is not None
                and self.query_bias == 0.0
                and len(pool) > 1
            )
            order = None
            if memoise:
                key = self.matrix_cache.make_key(
                    date, pool, self.bm25_params,
                    self.neighbor_top_k, self.damping,
                )
                cached = self.matrix_cache.get(key)
                if cached is not None:
                    # The adjacency and its PageRank order are fully
                    # determined by the key; replaying the cached order
                    # is bit-identical to re-ranking.
                    tracer.count("prune.day_matrix_hits", 1)
                    order = cached
                else:
                    tracer.count("prune.day_matrix_misses", 1)
            if order is None:
                order = textrank_bm25(
                    pool,
                    damping=self.damping,
                    params=self.bm25_params,
                    query=query,
                    query_bias=self.query_bias,
                    tracer=tracer,
                    cache=self.cache,
                    neighbor_top_k=self.neighbor_top_k,
                )
                if memoise:
                    self.matrix_cache.put(key, order)
        return RankedDay(date=date, sentences=[pool[i] for i in order])

    def rank_days(
        self,
        dated_sentences: Sequence[DatedSentence],
        selected_dates: Sequence[datetime.date],
        query: Sequence[str] = (),
        tracer: Optional[Tracer] = None,
    ) -> List[RankedDay]:
        """Rank every selected date's pool (dates without sentences skipped).

        Days are independent sub-tasks; with ``workers > 1`` they are
        ranked concurrently. Output order and content are identical to
        the sequential path. Tracing: a ``daily`` span wraps the stage
        with one ``daily.rank_day`` child per day in the sequential path;
        in the threaded path only the (lock-guarded) counters are
        recorded, since spans cannot nest across worker threads.
        """
        tracer = ensure_tracer(tracer)
        grouped = group_by_date(dated_sentences)
        days = [
            (date, grouped[date])
            for date in sorted(selected_dates)
            if grouped.get(date)
        ]
        with tracer.span("daily"):
            tracer.count("daily.days_ranked", len(days))
            tracer.count(
                "daily.days_skipped_empty",
                len(set(selected_dates)) - len(days),
            )
            if self.workers <= 1 or len(days) <= 1:
                return [
                    self.rank_day(date, pool, query=query, tracer=tracer)
                    for date, pool in days
                ]
            from concurrent.futures import ThreadPoolExecutor

            for _, pool in days:
                tracer.count(
                    "daily.sentences_ranked",
                    min(len(pool), self.max_sentences_per_day),
                )
            with ThreadPoolExecutor(max_workers=self.workers) as executor:
                return list(
                    executor.map(
                        lambda item: self.rank_day(
                            item[0], item[1], query=query
                        ),
                        days,
                    )
                )
