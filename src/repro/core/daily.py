"""Daily summarisation (Section 2.3).

For each selected date, WILSON ranks that day's sentences with TextRank over
a directed BM25 sentence graph (Barrios et al., 2016) -- "when calculating
the edge weight of one sentence to other sentences, we treat the source
sentence as query and other sentences as documents" (Appendix A). Sentences
dated the same day by multiple expressions are deduplicated by text.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.pagerank import DEFAULT_DAMPING
from repro.obs.trace import Tracer, ensure_tracer
from repro.rank.textrank import textrank_bm25
from repro.text.analysis import TokenCache
from repro.text.bm25 import BM25Parameters
from repro.tlsdata.types import DatedSentence


@dataclass(eq=False)
class RankedDay:
    """One day's sentences ranked by TextRank importance.

    ``sentences`` is ordered best-first -- the "max heap" ``H_i`` of
    Algorithm 1; ``pop()`` consumes the current best.
    """

    date: datetime.date
    sentences: List[str]
    _cursor: int = field(default=0, repr=False)

    def peek(self) -> str:
        """The best not-yet-consumed sentence (raises when exhausted)."""
        if self.exhausted:
            raise IndexError(f"no sentences left for {self.date}")
        return self.sentences[self._cursor]

    def pop(self) -> str:
        """Consume and return the best remaining sentence."""
        sentence = self.peek()
        self._cursor += 1
        return sentence

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self.sentences)

    def remaining(self) -> int:
        return len(self.sentences) - self._cursor


def group_by_date(
    dated_sentences: Sequence[DatedSentence],
) -> Dict[datetime.date, List[str]]:
    """Group sentence texts by their date, deduplicating within a day.

    A sentence carrying several date expressions legitimately appears under
    several dates (Appendix A), but within a single day each distinct text
    is kept once.
    """
    buckets: Dict[datetime.date, Tuple[List[str], set]] = {}
    for sentence in dated_sentences:
        entry = buckets.get(sentence.date)
        if entry is None:
            entry = buckets[sentence.date] = ([], set())
        texts, seen_texts = entry
        if sentence.text not in seen_texts:
            seen_texts.add(sentence.text)
            texts.append(sentence.text)
    return {date: texts for date, (texts, _) in buckets.items()}


@dataclass
class DailySummarizer:
    """Rank each selected day's sentence pool with BM25-TextRank."""

    damping: float = DEFAULT_DAMPING
    bm25_params: BM25Parameters = field(default_factory=BM25Parameters)
    #: Cap on sentences ranked per day; very heavy days are truncated to the
    #: first ``max_sentences_per_day`` sentences to bound the O(N^2) graph.
    max_sentences_per_day: int = 600
    #: Optional local/global blend (the paper's future-work direction):
    #: with ``query_bias > 0`` the TextRank restart distribution leans
    #: toward sentences relevant to the topic query, mixing a global
    #: relevance signal into the otherwise purely local day ranking.
    query_bias: float = 0.0
    #: Worker threads for ranking days concurrently. Daily summarisation
    #: tasks are independent -- "these sub-tasks can naturally be further
    #: accelerated through parallel processing" (Section 2.3.1) -- and
    #: the numpy-heavy inner loops release the GIL. 1 = sequential.
    workers: int = 1
    #: Optional shared :class:`~repro.text.analysis.TokenCache`. Reference
    #: sentences appear under several dates, so days share tokenisation
    #: work -- and later stages (post-processing, the date-count
    #: predictor) reuse the streams for free. Thread-safe, so the
    #: parallel path shares it too.
    cache: Optional[TokenCache] = None

    def rank_day(
        self,
        date: datetime.date,
        sentences: Sequence[str],
        query: Sequence[str] = (),
        tracer: Optional[Tracer] = None,
    ) -> RankedDay:
        """TextRank one day's sentences; returns them best-first."""
        tracer = ensure_tracer(tracer)
        pool = list(sentences)[: self.max_sentences_per_day]
        with tracer.span("daily.rank_day"):
            tracer.count("daily.sentences_ranked", len(pool))
            if len(sentences) > len(pool):
                tracer.count(
                    "daily.sentences_truncated",
                    len(sentences) - len(pool),
                )
            order = textrank_bm25(
                pool,
                damping=self.damping,
                params=self.bm25_params,
                query=query,
                query_bias=self.query_bias,
                tracer=tracer,
                cache=self.cache,
            )
        return RankedDay(date=date, sentences=[pool[i] for i in order])

    def rank_days(
        self,
        dated_sentences: Sequence[DatedSentence],
        selected_dates: Sequence[datetime.date],
        query: Sequence[str] = (),
        tracer: Optional[Tracer] = None,
    ) -> List[RankedDay]:
        """Rank every selected date's pool (dates without sentences skipped).

        Days are independent sub-tasks; with ``workers > 1`` they are
        ranked concurrently. Output order and content are identical to
        the sequential path. Tracing: a ``daily`` span wraps the stage
        with one ``daily.rank_day`` child per day in the sequential path;
        in the threaded path only the (lock-guarded) counters are
        recorded, since spans cannot nest across worker threads.
        """
        tracer = ensure_tracer(tracer)
        grouped = group_by_date(dated_sentences)
        days = [
            (date, grouped[date])
            for date in sorted(selected_dates)
            if grouped.get(date)
        ]
        with tracer.span("daily"):
            tracer.count("daily.days_ranked", len(days))
            tracer.count(
                "daily.days_skipped_empty",
                len(set(selected_dates)) - len(days),
            )
            if self.workers <= 1 or len(days) <= 1:
                return [
                    self.rank_day(date, pool, query=query, tracer=tracer)
                    for date, pool in days
                ]
            from concurrent.futures import ThreadPoolExecutor

            for _, pool in days:
                tracer.count(
                    "daily.sentences_ranked",
                    min(len(pool), self.max_sentences_per_day),
                )
            with ThreadPoolExecutor(max_workers=self.workers) as executor:
                return list(
                    executor.map(
                        lambda item: self.rank_day(
                            item[0], item[1], query=query
                        ),
                        days,
                    )
                )
