"""WILSON core: explicit date selection + divide-and-conquer summarisation.

Public entry points:

* :class:`repro.core.pipeline.Wilson` / :class:`WilsonConfig` -- the full
  pipeline of Algorithm 1.
* :mod:`repro.core.date_selection` -- date reference graph, edge weights
  W1-W4, recency-adjusted personalized PageRank (Section 2.2).
* :mod:`repro.core.daily` -- BM25-TextRank daily summarisation (Section 2.3).
* :mod:`repro.core.postprocess` -- cross-date redundancy removal
  (Section 2.3.1, lines 15-21 of Algorithm 1).
* :mod:`repro.core.compression` -- automatic date compression
  (Section 3.2.3).
* :mod:`repro.core.variants` -- the ablation variants of Table 7.
"""

from repro.core.compression import DateCountPredictor
from repro.core.daily import DailySummarizer, RankedDay
from repro.core.date_baselines import (
    BurstDateSelector,
    MentionCountSelector,
    PublicationVolumeSelector,
)
from repro.core.date_selection import (
    DateReferenceGraph,
    DateSelector,
    EdgeWeight,
    uniformity,
    uniformity_score,
)
from repro.core.pipeline import Wilson, WilsonConfig
from repro.core.postprocess import assemble_timeline, take_top_sentences
from repro.core.variants import (
    wilson_full,
    wilson_tran,
    wilson_uniform,
    wilson_without_post,
)

__all__ = [
    "BurstDateSelector",
    "DailySummarizer",
    "DateCountPredictor",
    "DateReferenceGraph",
    "DateSelector",
    "MentionCountSelector",
    "PublicationVolumeSelector",
    "EdgeWeight",
    "RankedDay",
    "Wilson",
    "WilsonConfig",
    "assemble_timeline",
    "take_top_sentences",
    "uniformity",
    "uniformity_score",
    "wilson_full",
    "wilson_tran",
    "wilson_uniform",
    "wilson_without_post",
]
