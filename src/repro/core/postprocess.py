"""Cross-date redundancy removal (Section 2.3.1; Algorithm 1 lines 15-21).

Summarising each day independently re-introduces redundancy across dates
(follow-up coverage repeats earlier reporting). The post-processing pass
assembles the final timeline round-robin: in each round every day offers its
best remaining sentence, and an offer is accepted only when its maximum
cosine similarity to every already-accepted sentence stays below a
threshold (0.5 in the paper). The loop ends when every day has N sentences
or every day's heap is exhausted.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.daily import RankedDay
from repro.obs.trace import Tracer, ensure_tracer
from repro.text.similarity import max_similarity_to_set, sparse_cosine
from repro.text.tfidf import TfidfModel
from repro.text.tokenize import tokenize_for_matching
from repro.tlsdata.types import Timeline

#: The paper's redundancy threshold (Section 2.3.1).
DEFAULT_REDUNDANCY_THRESHOLD = 0.5


def take_top_sentences(
    ranked_days: Sequence[RankedDay], num_sentences: int
) -> Timeline:
    """The no-post-processing variant: top-N sentences per day verbatim."""
    if num_sentences < 1:
        raise ValueError(
            f"num_sentences must be >= 1, got {num_sentences}"
        )
    timeline = Timeline()
    for day in ranked_days:
        for sentence in day.sentences[:num_sentences]:
            timeline.add(day.date, sentence)
    return timeline


def assemble_timeline(
    ranked_days: Sequence[RankedDay],
    num_sentences: int,
    redundancy_threshold: float = DEFAULT_REDUNDANCY_THRESHOLD,
    tracer: Optional[Tracer] = None,
) -> Timeline:
    """Algorithm 1's batch assembly with cross-date redundancy removal.

    Parameters
    ----------
    ranked_days:
        One :class:`RankedDay` per selected date, best sentence first.
        Each day's cursor is consumed by this call.
    num_sentences:
        N -- the target number of sentences per day.
    redundancy_threshold:
        Offers whose maximum cosine similarity against the already accepted
        pool reaches this value are discarded.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; counts
        ``postprocess.rounds`` / ``postprocess.offers`` /
        ``postprocess.accepted`` / ``postprocess.rejected_redundant``.
    """
    if num_sentences < 1:
        raise ValueError(f"num_sentences must be >= 1, got {num_sentences}")
    if not 0.0 < redundancy_threshold <= 1.0:
        raise ValueError(
            "redundancy_threshold must lie in (0, 1], got "
            f"{redundancy_threshold}"
        )
    tracer = ensure_tracer(tracer)

    # TF-IDF space over every candidate sentence of the selected days.
    all_sentences: List[str] = []
    for day in ranked_days:
        all_sentences.extend(day.sentences)
    model = TfidfModel()
    model.fit([tokenize_for_matching(s) for s in all_sentences])
    vector_cache: Dict[str, dict] = {}

    def vector_of(sentence: str) -> dict:
        cached = vector_cache.get(sentence)
        if cached is None:
            cached = model.transform(tokenize_for_matching(sentence))
            vector_cache[sentence] = cached
        return cached

    selected: Dict[RankedDay, List[str]] = {day: [] for day in ranked_days}
    selected_vectors: List[dict] = []

    def day_needs_more(day: RankedDay) -> bool:
        return len(selected[day]) < num_sentences and not day.exhausted

    while any(day_needs_more(day) for day in ranked_days):
        # One batch: every unfinished day offers its current best sentence.
        offers = [
            (day, day.pop()) for day in ranked_days if day_needs_more(day)
        ]
        tracer.count("postprocess.rounds")
        tracer.count("postprocess.offers", len(offers))
        accepted_this_round: List[dict] = []
        for day, sentence in offers:
            vector = vector_of(sentence)
            redundant = (
                max_similarity_to_set(vector, selected_vectors)
                >= redundancy_threshold
                or any(
                    sparse_cosine(vector, other) >= redundancy_threshold
                    for other in accepted_this_round
                )
            )
            if redundant:
                tracer.count("postprocess.rejected_redundant")
                continue
            selected[day].append(sentence)
            accepted_this_round.append(vector)
        selected_vectors.extend(accepted_this_round)
        tracer.count("postprocess.accepted", len(accepted_this_round))

    timeline = Timeline()
    for day in ranked_days:
        for sentence in selected[day]:
            timeline.add(day.date, sentence)
    return timeline
