"""Cross-date redundancy removal (Section 2.3.1; Algorithm 1 lines 15-21).

Summarising each day independently re-introduces redundancy across dates
(follow-up coverage repeats earlier reporting). The post-processing pass
assembles the final timeline round-robin: in each round every day offers its
best remaining sentence, and an offer is accepted only when its maximum
cosine similarity to every already-accepted sentence stays below a
threshold (0.5 in the paper). The loop ends when every day has N sentences
or every day's heap is exhausted.

The redundancy check is vectorised by default: each round turns its
offered sentences into rows of a CSR TF-IDF matrix (rows L2-normalised,
so dot products are cosines — built lazily, since the offered sentences
are typically a tiny fraction of the candidate pool), scores them against
the accepted pool with a single sparse candidates-matrix x
accepted-matrix product, and only the tiny intra-round sequential
dependency (an offer must also clear the offers accepted *earlier in the
same round*) stays order-dependent. The
``vectorized=False`` path keeps the original per-pair dict-cosine loop;
both produce identical timelines (asserted by
``tests/test_analysis_equivalence.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.daily import RankedDay
from repro.obs.trace import Tracer, ensure_tracer
from repro.text.analysis import AnalyzedCorpus, TokenCache
from repro.text.similarity import max_similarity_to_set, sparse_cosine
from repro.text.tfidf import TfidfModel
from repro.tlsdata.types import Timeline

#: The paper's redundancy threshold (Section 2.3.1).
DEFAULT_REDUNDANCY_THRESHOLD = 0.5


def take_top_sentences(
    ranked_days: Sequence[RankedDay], num_sentences: int
) -> Timeline:
    """The no-post-processing variant: top-N sentences per day verbatim."""
    if num_sentences < 1:
        raise ValueError(
            f"num_sentences must be >= 1, got {num_sentences}"
        )
    timeline = Timeline()
    for day in ranked_days:
        for sentence in day.sentences[:num_sentences]:
            timeline.add(day.date, sentence)
    return timeline


def assemble_timeline(
    ranked_days: Sequence[RankedDay],
    num_sentences: int,
    redundancy_threshold: float = DEFAULT_REDUNDANCY_THRESHOLD,
    tracer: Optional[Tracer] = None,
    cache: Optional[TokenCache] = None,
    vectorized: bool = True,
) -> Timeline:
    """Algorithm 1's batch assembly with cross-date redundancy removal.

    Parameters
    ----------
    ranked_days:
        One :class:`RankedDay` per selected date, best sentence first.
        Each day's cursor is consumed by this call.
    num_sentences:
        N -- the target number of sentences per day.
    redundancy_threshold:
        Offers whose maximum cosine similarity against the already accepted
        pool reaches this value are discarded.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; counts
        ``postprocess.rounds`` / ``postprocess.offers`` /
        ``postprocess.accepted`` / ``postprocess.rejected_redundant``.
    cache:
        Optional shared :class:`~repro.text.analysis.TokenCache`; with
        one, sentences already tokenised by earlier stages are not
        re-tokenised here.
    vectorized:
        Use the batched CSR similarity path (default). ``False`` runs
        the original per-pair sparse-dict cosine loop; outputs are
        identical.
    """
    if num_sentences < 1:
        raise ValueError(f"num_sentences must be >= 1, got {num_sentences}")
    if not 0.0 < redundancy_threshold <= 1.0:
        raise ValueError(
            "redundancy_threshold must lie in (0, 1], got "
            f"{redundancy_threshold}"
        )
    tracer = ensure_tracer(tracer)

    # TF-IDF space over every candidate sentence of the selected days.
    all_sentences: List[str] = []
    for day in ranked_days:
        all_sentences.extend(day.sentences)
    analyzed = AnalyzedCorpus(all_sentences, cache=cache)
    model = TfidfModel()
    model.fit(analyzed.token_lists)

    if vectorized:
        selected = _select_vectorized(
            ranked_days, num_sentences, redundancy_threshold,
            model, analyzed, tracer,
        )
    else:
        selected = _select_legacy(
            ranked_days, num_sentences, redundancy_threshold,
            model, analyzed, tracer,
        )

    timeline = Timeline()
    for day in ranked_days:
        for sentence in selected[day]:
            timeline.add(day.date, sentence)
    return timeline


def _offer_round(
    ranked_days: Sequence[RankedDay],
    selected: Dict[RankedDay, List[str]],
    num_sentences: int,
) -> List[Tuple[RankedDay, str]]:
    """One round-robin batch: every unfinished day offers its best."""
    return [
        (day, day.pop())
        for day in ranked_days
        if len(selected[day]) < num_sentences and not day.exhausted
    ]


def _select_vectorized(
    ranked_days: Sequence[RankedDay],
    num_sentences: int,
    redundancy_threshold: float,
    model: TfidfModel,
    analyzed: AnalyzedCorpus,
    tracer: Tracer,
) -> Dict[RankedDay, List[str]]:
    """Round-robin selection with batched CSR cosine checks.

    Each round vectorises only its *offered* sentences (typically a tiny
    fraction of the candidate pool) into L2-normalised TF-IDF rows and
    hands the CSR arrays to :func:`repro.kernels.redundancy_accept`: a
    sparse product against the accepted rows yields every
    offer-vs-accepted cosine of the round at once. Row values are
    batch-independent (per-row normalisation), so the lazy transform is
    exactly the full candidate matrix restricted to offered rows.
    """
    from scipy import sparse

    from repro import kernels

    selected: Dict[RankedDay, List[str]] = {day: [] for day in ranked_days}
    accepted_blocks: List[sparse.csr_matrix] = []

    while True:
        offers = _offer_round(ranked_days, selected, num_sentences)
        if not offers:
            break
        tracer.count("postprocess.rounds")
        tracer.count("postprocess.offers", len(offers))
        candidates = model.transform_matrix(
            [analyzed.tokens_of(sentence) for _, sentence in offers]
        )
        if accepted_blocks:
            accepted = sparse.vstack(accepted_blocks, format="csr")
            acc_args = (
                accepted.data,
                accepted.indices,
                accepted.indptr,
                accepted.shape[0],
            )
        else:
            acc_args = (None, None, None, 0)
        accepted_in_round = kernels.redundancy_accept(
            candidates.data,
            candidates.indices,
            candidates.indptr,
            len(offers),
            candidates.shape[1],
            *acc_args,
            redundancy_threshold,
        )
        for position in accepted_in_round:
            day, sentence = offers[position]
            selected[day].append(sentence)
            accepted_blocks.append(candidates[position])
        rejected = len(offers) - len(accepted_in_round)
        if rejected:
            tracer.count("postprocess.rejected_redundant", rejected)
        tracer.count("postprocess.accepted", len(accepted_in_round))
    return selected


def _select_legacy(
    ranked_days: Sequence[RankedDay],
    num_sentences: int,
    redundancy_threshold: float,
    model: TfidfModel,
    analyzed: AnalyzedCorpus,
    tracer: Tracer,
) -> Dict[RankedDay, List[str]]:
    """The original per-pair sparse-dict cosine loop."""
    vector_cache: Dict[str, dict] = {}

    def vector_of(sentence: str) -> dict:
        cached = vector_cache.get(sentence)
        if cached is None:
            cached = model.transform(analyzed.tokens_of(sentence))
            vector_cache[sentence] = cached
        return cached

    selected: Dict[RankedDay, List[str]] = {day: [] for day in ranked_days}
    selected_vectors: List[dict] = []

    while True:
        offers = _offer_round(ranked_days, selected, num_sentences)
        if not offers:
            break
        tracer.count("postprocess.rounds")
        tracer.count("postprocess.offers", len(offers))
        accepted_this_round: List[dict] = []
        for day, sentence in offers:
            vector = vector_of(sentence)
            redundant = (
                max_similarity_to_set(vector, selected_vectors)
                >= redundancy_threshold
                or any(
                    sparse_cosine(vector, other) >= redundancy_threshold
                    for other in accepted_this_round
                )
            )
            if redundant:
                tracer.count("postprocess.rejected_redundant")
                continue
            selected[day].append(sentence)
            accepted_this_round.append(vector)
        selected_vectors.extend(accepted_this_round)
        tracer.count("postprocess.accepted", len(accepted_this_round))
    return selected
