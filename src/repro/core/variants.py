"""The WILSON ablation variants evaluated in Table 7.

* **WILSON** -- full pipeline: W3 edges, recency adjustment, post-processing.
* **WILSON w/o Post** -- recency-adjusted date selection, no cross-date
  redundancy removal.
* **WILSON-Tran** -- W3 PageRank date selection without the recency
  adjustment (the Tran et al. 2015 date selector feeding our daily
  summariser).
* **WILSON-uniform** -- truly uniformly distributed dates.
"""

from __future__ import annotations

from typing import Optional

from repro.core.pipeline import Wilson, WilsonConfig


def _config(
    num_dates: Optional[int],
    sentences_per_date: int,
    **overrides,
) -> WilsonConfig:
    return WilsonConfig(
        num_dates=num_dates,
        sentences_per_date=sentences_per_date,
        **overrides,
    )


def wilson_full(
    num_dates: Optional[int] = None, sentences_per_date: int = 2
) -> Wilson:
    """The complete WILSON pipeline."""
    return Wilson(_config(num_dates, sentences_per_date))


def wilson_without_post(
    num_dates: Optional[int] = None, sentences_per_date: int = 2
) -> Wilson:
    """WILSON without the cross-date post-processing stage."""
    return Wilson(
        _config(num_dates, sentences_per_date, postprocess=False)
    )


def wilson_tran(
    num_dates: Optional[int] = None, sentences_per_date: int = 2
) -> Wilson:
    """WILSON with plain (Tran et al.) PageRank date selection."""
    return Wilson(
        _config(num_dates, sentences_per_date, recency_adjustment=False)
    )


def wilson_uniform(
    num_dates: Optional[int] = None, sentences_per_date: int = 2
) -> Wilson:
    """WILSON with truly uniformly distributed date selection."""
    return Wilson(
        _config(
            num_dates,
            sentences_per_date,
            uniform_dates=True,
            recency_adjustment=False,
        )
    )
