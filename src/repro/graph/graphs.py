"""A lightweight weighted directed graph with hashable node labels.

Both WILSON graphs -- the date reference graph (nodes are dates) and the
per-day TextRank sentence graph (nodes are sentence indices) -- are small and
dense, so adjacency is stored as nested dicts and converted to a dense numpy
matrix on demand for PageRank.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Tuple

import numpy as np

Node = Hashable


class WeightedDigraph:
    """A directed graph with float edge weights.

    Adding an edge twice *accumulates* the weight, which matches how the
    date reference graph counts repeated references between the same pair of
    dates.
    """

    def __init__(self) -> None:
        self._succ: Dict[Node, Dict[Node, float]] = {}

    # -- construction --------------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Ensure *node* exists (no-op when already present)."""
        self._succ.setdefault(node, {})

    def add_edge(self, source: Node, target: Node, weight: float = 1.0) -> None:
        """Add (or accumulate onto) the edge ``source -> target``."""
        if weight < 0:
            raise ValueError(f"edge weight must be non-negative, got {weight}")
        self.add_node(source)
        self.add_node(target)
        edges = self._succ[source]
        edges[target] = edges.get(target, 0.0) + weight

    def set_edge(self, source: Node, target: Node, weight: float) -> None:
        """Set the edge weight, replacing any accumulated value."""
        if weight < 0:
            raise ValueError(f"edge weight must be non-negative, got {weight}")
        self.add_node(source)
        self.add_node(target)
        self._succ[source][target] = weight

    # -- queries -------------------------------------------------------------

    def nodes(self) -> List[Node]:
        """All nodes in insertion order."""
        return list(self._succ)

    def edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Iterate ``(source, target, weight)`` triples."""
        for source, targets in self._succ.items():
            for target, weight in targets.items():
                yield source, target, weight

    def weight(self, source: Node, target: Node) -> float:
        """Weight of ``source -> target`` (0.0 when absent)."""
        return self._succ.get(source, {}).get(target, 0.0)

    def out_degree(self, node: Node) -> float:
        """Sum of outgoing edge weights of *node*."""
        return sum(self._succ.get(node, {}).values())

    def successors(self, node: Node) -> Dict[Node, float]:
        """Mapping of successors of *node* to edge weights (a copy)."""
        return dict(self._succ.get(node, {}))

    def number_of_nodes(self) -> int:
        return len(self._succ)

    def number_of_edges(self) -> int:
        return sum(len(targets) for targets in self._succ.values())

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __repr__(self) -> str:
        return (
            f"WeightedDigraph(nodes={self.number_of_nodes()}, "
            f"edges={self.number_of_edges()})"
        )

    # -- conversion ----------------------------------------------------------

    def to_adjacency(
        self, order: Iterable[Node] = None
    ) -> Tuple[np.ndarray, List[Node]]:
        """Dense adjacency matrix ``A[i, j] = weight(node_i -> node_j)``.

        Returns the matrix and the node order used for its rows/columns.
        """
        node_order = list(order) if order is not None else self.nodes()
        index = {node: i for i, node in enumerate(node_order)}
        matrix = np.zeros((len(node_order), len(node_order)), dtype=np.float64)
        for source, targets in self._succ.items():
            i = index.get(source)
            if i is None:
                continue
            for target, weight in targets.items():
                j = index.get(target)
                if j is not None:
                    matrix[i, j] = weight
        return matrix, node_order
