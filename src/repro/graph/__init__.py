"""Graph-algorithm substrate: digraphs, PageRank, Affinity Propagation."""

from repro.graph.affinity_propagation import AffinityPropagation
from repro.graph.graphs import WeightedDigraph
from repro.graph.kmeans import KMeans
from repro.graph.pagerank import pagerank, pagerank_matrix, personalized_pagerank

__all__ = [
    "AffinityPropagation",
    "KMeans",
    "WeightedDigraph",
    "pagerank",
    "pagerank_matrix",
    "personalized_pagerank",
]
