"""PageRank and personalized PageRank by power iteration.

The paper runs PageRank twice per timeline: once on the date reference graph
(date selection, Section 2.2 -- with a personalised restart distribution for
the recency adjustment, Section 2.2.1) and once per selected day on the BM25
sentence graph (TextRank daily summarisation, Section 2.3). The paper uses
NetworkX with the default damping factor 0.85; this implementation matches
NetworkX's weighted-PageRank semantics (dangling nodes redistribute their
mass according to the restart distribution) and is validated against
NetworkX in the test suite.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional

import numpy as np

from repro import kernels
from repro.graph.graphs import WeightedDigraph
from repro.obs.profile import profiled
from repro.obs.trace import Tracer, ensure_tracer

Node = Hashable

#: NetworkX-compatible default damping factor.
DEFAULT_DAMPING = 0.85


@profiled(name="pagerank_matrix")
def pagerank_matrix(
    adjacency: np.ndarray,
    damping: float = DEFAULT_DAMPING,
    personalization: Optional[np.ndarray] = None,
    max_iterations: int = 200,
    tolerance: float = 1e-10,
    tracer: Optional[Tracer] = None,
    counter_prefix: str = "pagerank",
) -> np.ndarray:
    """PageRank over a dense weighted adjacency matrix.

    Parameters
    ----------
    adjacency:
        ``A[i, j]`` is the weight of edge ``i -> j``. Weights must be
        non-negative.
    damping:
        Probability of following an edge rather than teleporting.
    personalization:
        Restart distribution (need not be normalised). ``None`` means
        uniform. Zero-sum personalisation vectors are rejected.
    max_iterations, tolerance:
        Power-iteration loop controls; convergence is declared when the L1
        change drops below ``tolerance * n``.
    tracer, counter_prefix:
        Optional :class:`~repro.obs.trace.Tracer`; each call counts
        ``<counter_prefix>_runs`` (1) and ``<counter_prefix>_iterations``
        (power iterations executed). Callers namespace the prefix, e.g.
        ``date_selection.pagerank`` -- see docs/observability.md.

    Returns
    -------
    A probability vector over the nodes (sums to 1).
    """
    tracer = ensure_tracer(tracer)
    matrix = np.asarray(adjacency, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"adjacency must be square, got shape {matrix.shape}")
    if (matrix < 0).any():
        raise ValueError("adjacency weights must be non-negative")
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must lie in (0, 1), got {damping}")
    n = matrix.shape[0]
    if n == 0:
        tracer.count(f"{counter_prefix}_runs")
        return np.zeros(0, dtype=np.float64)

    if personalization is None:
        restart = np.full(n, 1.0 / n, dtype=np.float64)
    else:
        restart = np.asarray(personalization, dtype=np.float64)
        if restart.shape != (n,):
            raise ValueError(
                f"personalization must have shape ({n},), got {restart.shape}"
            )
        if (restart < 0).any():
            raise ValueError("personalization weights must be non-negative")
        total = restart.sum()
        if total <= 0:
            raise ValueError("personalization must have positive mass")
        restart = restart / total

    out_weights = matrix.sum(axis=1)
    dangling = out_weights == 0
    safe = np.where(dangling, 1.0, out_weights)
    transition = matrix / safe[:, None]  # row-stochastic except dangling rows

    rank, iterations = kernels.pagerank_iterate(
        transition,
        restart,
        dangling,
        damping,
        max_iterations,
        tolerance,
    )
    tracer.count(f"{counter_prefix}_runs")
    tracer.count(f"{counter_prefix}_iterations", iterations)
    return rank


def pagerank(
    graph: WeightedDigraph,
    damping: float = DEFAULT_DAMPING,
    personalization: Optional[Mapping[Node, float]] = None,
    max_iterations: int = 200,
    tolerance: float = 1e-10,
    tracer: Optional[Tracer] = None,
    counter_prefix: str = "pagerank",
) -> Dict[Node, float]:
    """PageRank over a :class:`WeightedDigraph`; returns ``node -> score``."""
    adjacency, order = graph.to_adjacency()
    vector: Optional[np.ndarray] = None
    if personalization is not None:
        vector = np.array(
            [float(personalization.get(node, 0.0)) for node in order],
            dtype=np.float64,
        )
    scores = pagerank_matrix(
        adjacency,
        damping=damping,
        personalization=vector,
        max_iterations=max_iterations,
        tolerance=tolerance,
        tracer=tracer,
        counter_prefix=counter_prefix,
    )
    return {node: float(score) for node, score in zip(order, scores)}


def personalized_pagerank(
    graph: WeightedDigraph,
    personalization: Mapping[Node, float],
    damping: float = DEFAULT_DAMPING,
    max_iterations: int = 200,
    tolerance: float = 1e-10,
) -> Dict[Node, float]:
    """Personalized PageRank (non-uniform restart distribution)."""
    return pagerank(
        graph,
        damping=damping,
        personalization=personalization,
        max_iterations=max_iterations,
        tolerance=tolerance,
    )
