"""Affinity Propagation clustering (Frey & Dueck, 2007).

The automatic date compression extension (Section 3.2.3) clusters embedded
daily summaries and uses the number of clusters as the number of timeline
dates. Affinity Propagation is attractive there precisely because it infers
the cluster count from the data; this is a from-scratch numpy implementation
of the responsibility/availability message-passing scheme with damping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class AffinityPropagationResult:
    """Outcome of a clustering run."""

    labels: np.ndarray
    exemplars: np.ndarray
    n_clusters: int
    converged: bool
    iterations: int = 0


@dataclass
class AffinityPropagation:
    """Affinity Propagation over a precomputed similarity matrix.

    Parameters
    ----------
    damping:
        Message damping factor in ``[0.5, 1)``.
    max_iterations:
        Hard cap on message-passing rounds.
    convergence_iterations:
        Stop when exemplar choices are stable for this many rounds.
    preference:
        Self-similarity ``s(k, k)``; lower values yield fewer clusters.
        ``None`` uses the median of the off-diagonal similarities (the
        standard default).
    seed:
        Seed for the tiny symmetry-breaking noise added to the similarities.
    """

    damping: float = 0.7
    max_iterations: int = 300
    convergence_iterations: int = 20
    preference: Optional[float] = None
    seed: int = 0
    noise_scale: float = field(default=1e-10, repr=False)

    def __post_init__(self) -> None:
        if not 0.5 <= self.damping < 1.0:
            raise ValueError(
                f"damping must lie in [0.5, 1), got {self.damping}"
            )
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be positive")

    def fit(self, similarities: np.ndarray) -> AffinityPropagationResult:
        """Cluster items given their pairwise similarity matrix."""
        s = np.array(similarities, dtype=np.float64, copy=True)
        if s.ndim != 2 or s.shape[0] != s.shape[1]:
            raise ValueError(
                f"similarity matrix must be square, got shape {s.shape}"
            )
        n = s.shape[0]
        if n == 0:
            return AffinityPropagationResult(
                labels=np.zeros(0, dtype=np.int64),
                exemplars=np.zeros(0, dtype=np.int64),
                n_clusters=0,
                converged=True,
            )
        if n == 1:
            return AffinityPropagationResult(
                labels=np.zeros(1, dtype=np.int64),
                exemplars=np.array([0], dtype=np.int64),
                n_clusters=1,
                converged=True,
            )

        if self.preference is None:
            off_diagonal = s[~np.eye(n, dtype=bool)]
            preference = float(np.median(off_diagonal))
        else:
            preference = float(self.preference)
        np.fill_diagonal(s, preference)

        # Tiny noise removes degeneracies that cause oscillation.
        rng = np.random.default_rng(self.seed)
        s += self.noise_scale * (
            np.abs(s).max() + 1.0
        ) * rng.standard_normal((n, n))

        responsibility = np.zeros((n, n), dtype=np.float64)
        availability = np.zeros((n, n), dtype=np.float64)
        stable_rounds = 0
        previous_exemplars: Optional[np.ndarray] = None
        converged = False
        iterations = 0

        for iteration in range(self.max_iterations):
            iterations = iteration + 1
            # Responsibilities: r(i,k) = s(i,k) - max_{k'!=k}(a(i,k')+s(i,k'))
            combined = availability + s
            best_idx = np.argmax(combined, axis=1)
            row_range = np.arange(n)
            best_val = combined[row_range, best_idx]
            combined[row_range, best_idx] = -np.inf
            second_val = combined.max(axis=1)
            new_responsibility = s - best_val[:, None]
            new_responsibility[row_range, best_idx] = (
                s[row_range, best_idx] - second_val
            )
            responsibility = (
                self.damping * responsibility
                + (1.0 - self.damping) * new_responsibility
            )

            # Availabilities:
            # a(i,k) = min(0, r(k,k) + sum_{i'!=i,k} max(0, r(i',k)))
            positive = np.maximum(responsibility, 0.0)
            np.fill_diagonal(positive, responsibility.diagonal())
            column_sums = positive.sum(axis=0)
            new_availability = column_sums[None, :] - positive
            diagonal = new_availability.diagonal().copy()
            new_availability = np.minimum(new_availability, 0.0)
            np.fill_diagonal(new_availability, diagonal)
            availability = (
                self.damping * availability
                + (1.0 - self.damping) * new_availability
            )

            exemplars = np.flatnonzero(
                (availability + responsibility).diagonal() > 0
            )
            if previous_exemplars is not None and np.array_equal(
                exemplars, previous_exemplars
            ):
                stable_rounds += 1
                if (
                    stable_rounds >= self.convergence_iterations
                    and len(exemplars) > 0
                ):
                    converged = True
                    break
            else:
                stable_rounds = 0
            previous_exemplars = exemplars

        exemplars = np.flatnonzero(
            (availability + responsibility).diagonal() > 0
        )
        if len(exemplars) == 0:
            # Fall back to the single best global exemplar.
            exemplars = np.array(
                [int(np.argmax(s.diagonal() + responsibility.diagonal()))],
                dtype=np.int64,
            )
        labels = np.argmax(s[:, exemplars], axis=1)
        labels[exemplars] = np.arange(len(exemplars))
        return AffinityPropagationResult(
            labels=labels.astype(np.int64),
            exemplars=exemplars.astype(np.int64),
            n_clusters=int(len(exemplars)),
            converged=converged,
            iterations=iterations,
        )
