"""Deterministic k-means with k-means++ seeding.

Used by the storyline separator when the number of storylines is given
explicitly; Affinity Propagation handles the unknown-count case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class KMeansResult:
    """Outcome of a k-means run."""

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    iterations: int


@dataclass
class KMeans:
    """Seeded k-means over dense row vectors.

    Parameters
    ----------
    num_clusters:
        k. Capped at the number of points.
    max_iterations:
        Lloyd-iteration cap.
    seed:
        Seed for the k-means++ initialisation.
    """

    num_clusters: int
    max_iterations: int = 100
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_clusters < 1:
            raise ValueError(
                f"num_clusters must be >= 1, got {self.num_clusters}"
            )

    # -- initialisation ------------------------------------------------------

    def _plus_plus_init(
        self, points: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        n = points.shape[0]
        centers = np.empty((k, points.shape[1]), dtype=np.float64)
        first = int(rng.integers(n))
        centers[0] = points[first]
        distances = ((points - centers[0]) ** 2).sum(axis=1)
        for index in range(1, k):
            total = distances.sum()
            if total <= 0:
                centers[index] = points[int(rng.integers(n))]
                continue
            probabilities = distances / total
            choice = int(rng.choice(n, p=probabilities))
            centers[index] = points[choice]
            distances = np.minimum(
                distances,
                ((points - centers[index]) ** 2).sum(axis=1),
            )
        return centers

    # -- fitting -------------------------------------------------------------

    def fit(self, points: np.ndarray) -> KMeansResult:
        """Cluster *points* (rows); returns labels, centers, inertia."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(
                f"points must be a 2-D array, got shape {points.shape}"
            )
        n = points.shape[0]
        if n == 0:
            return KMeansResult(
                labels=np.zeros(0, dtype=np.int64),
                centers=np.zeros((0, points.shape[1])),
                inertia=0.0,
                iterations=0,
            )
        k = min(self.num_clusters, n)
        rng = np.random.default_rng(self.seed)
        centers = self._plus_plus_init(points, k, rng)
        labels = np.zeros(n, dtype=np.int64)
        iterations = 0
        for iteration in range(self.max_iterations):
            iterations = iteration + 1
            distances = (
                ((points[:, None, :] - centers[None, :, :]) ** 2)
                .sum(axis=2)
            )
            new_labels = distances.argmin(axis=1)
            if iteration > 0 and np.array_equal(new_labels, labels):
                break
            labels = new_labels
            for index in range(k):
                members = points[labels == index]
                if len(members):
                    centers[index] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster on the farthest point.
                    farthest = int(
                        distances.min(axis=1).argmax()
                    )
                    centers[index] = points[farthest]
        inertia = float(
            ((points - centers[labels]) ** 2).sum()
        )
        return KMeansResult(
            labels=labels,
            centers=centers,
            inertia=inertia,
            iterations=iterations,
        )
