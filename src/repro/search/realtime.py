"""The real-time timeline generation system (Section 5, Figure 7).

Pipeline: news articles -> sentence tokenisation -> temporal tagging ->
search-engine indexing; then, per user query (event keywords + duration),
fetch the relevant dated sentences and run WILSON to produce the timeline
"in seconds".
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.pipeline import Wilson, WilsonConfig
from repro.obs.metrics import Metrics
from repro.obs.trace import Span, Tracer
from repro.runtime import ShardPolicy, ShardReport, run_sharded
from repro.search.engine import SearchEngine
from repro.text.analysis import TokenCache
from repro.tlsdata.types import Article, Timeline


@dataclass(frozen=True)
class TimelineQuery:
    """One user query of a concurrent batch: keywords plus a duration."""

    keywords: Tuple[str, ...]
    start: datetime.date
    end: datetime.date
    num_dates: int = 10
    num_sentences: int = 1

    @property
    def key(self) -> str:
        """A human-readable shard key for reports and telemetry."""
        return " ".join(self.keywords) or "<empty>"


@dataclass
class TimelineResponse:
    """A generated timeline plus serving telemetry.

    ``retrieval_seconds`` / ``generation_seconds`` are derived from the
    ``realtime.retrieval`` / ``realtime.generation`` spans of the request
    trace (monotonic ``time.perf_counter`` clocks); ``trace`` carries the
    full span tree for per-stage inspection (``None`` when the caller
    explicitly passed a no-op tracer).
    """

    timeline: Timeline
    num_candidates: int
    retrieval_seconds: float
    generation_seconds: float
    trace: Optional[Span] = field(default=None, compare=False)

    @property
    def total_seconds(self) -> float:
        return self.retrieval_seconds + self.generation_seconds

    def to_dict(self) -> dict:
        """The JSON wire representation shared by the HTTP service and CLI.

        The ``timeline`` section is fully deterministic for a given index
        state (the serve-layer byte-equivalence guarantee rests on it);
        ``telemetry`` carries the per-run timings and is excluded from
        any equality or caching decision. Schema changes here are wire
        format changes -- update ``docs/serving.md`` and the stability
        test in ``tests/test_serve_app.py`` together with this method.
        """
        return {
            "timeline": self.timeline.to_dict(),
            "num_candidates": self.num_candidates,
            "telemetry": {
                "retrieval_seconds": self.retrieval_seconds,
                "generation_seconds": self.generation_seconds,
                "total_seconds": self.total_seconds,
            },
        }


class RealTimeTimelineSystem:
    """Query-to-timeline service: a search engine fronting WILSON."""

    def __init__(
        self,
        engine: Optional[SearchEngine] = None,
        wilson: Optional[Wilson] = None,
        retrieval_limit: int = 5000,
        cache: Optional[TokenCache] = None,
    ) -> None:
        self.wilson = wilson or Wilson(WilsonConfig())
        #: One :class:`~repro.text.analysis.TokenCache` shared between the
        #: search engine and the pipeline, persisting across queries:
        #: repeat or overlapping queries skip tokenisation entirely
        #: (warm-cache serving). ``None`` only when the pipeline was
        #: configured with ``analysis_cache=False`` and no explicit
        #: cache was passed.
        self.cache: Optional[TokenCache] = (
            cache if cache is not None else self.wilson.cache
        )
        self.engine = engine or SearchEngine(cache=self.cache)
        self.retrieval_limit = retrieval_limit
        #: The attached streaming write path, set by
        #: :class:`~repro.ingest.plane.IngestPlane` itself. ``None``
        #: means the engine's index accepts direct writes; once a plane
        #: wraps the index in a read-only
        #: :class:`~repro.ingest.live.LiveIndex` overlay, every write
        #: must flow through the plane's seal path.
        self.ingest_plane = None

    # -- ingestion -------------------------------------------------------------

    def ingest(self, articles: Iterable[Article]) -> int:
        """Index a batch of (possibly newly published) articles.

        With an :class:`~repro.ingest.plane.IngestPlane` attached the
        batch is sealed synchronously into a delta segment (queryable on
        return); otherwise it is added directly to the engine's index.
        Either way the count of ingested articles' indexed documents
        feeds the same ``index_version`` bump.
        """
        if self.ingest_plane is not None:
            return self.ingest_plane.ingest(list(articles))
        return self.engine.add_articles(articles)

    @property
    def index_version(self) -> int:
        """The engine's content revision; bumps on every indexed sentence."""
        return self.engine.index_version

    # -- discovery -------------------------------------------------------------

    def suggest_window(self, padding_days: int = 3):
        """Suggest a query time window from detected activity bursts.

        Returns ``(start, end)`` or ``None`` when indexed activity shows
        no bursts; a UI would use this to pre-fill the duration picker.
        """
        from repro.search.trends import suggest_query_window

        return suggest_query_window(
            self.engine.index, padding_days=padding_days
        )

    # -- serving ------------------------------------------------------------------

    def generate_timeline(
        self,
        keywords: Sequence[str],
        start: datetime.date,
        end: datetime.date,
        num_dates: int = 10,
        num_sentences: int = 1,
        tracer: Optional[Tracer] = None,
    ) -> TimelineResponse:
        """Serve one timeline query (Section 5's example workflow).

        Every request is traced: with ``tracer=None`` a private
        :class:`~repro.obs.trace.Tracer` backs the response telemetry;
        passing one instead threads the ``realtime`` spans into the
        caller's trace (see docs/observability.md).
        """
        tracer = tracer if tracer is not None else Tracer()
        matrix_cache = getattr(self.wilson, "day_matrix_cache", None)
        if matrix_cache is not None:
            # Re-key the shared day-matrix cache to the current index
            # revision so ingestion between queries invalidates stale
            # adjacency matrices (cheap no-op when nothing changed). A
            # live overlay reports exactly which content dates changed
            # since the cache's revision, so only those days are
            # evicted; anything else (or an unanswerable span) falls
            # back to the full flush. The version is captured BEFORE
            # the touched-dates query: a segment sealed between the two
            # reads then merely over-approximates the eviction set
            # (safe), whereas the reverse order would re-key entries to
            # a version whose writes were never evicted.
            version = self.engine.index_version
            touched = None
            since = getattr(
                self.engine.index, "touched_dates_since", None
            )
            if since is not None:
                touched = since(matrix_cache.version)
            matrix_cache.sync_version(version, touched_dates=touched)
        with tracer.root_span("realtime") as root:
            with tracer.span("realtime.retrieval") as retrieval:
                dated = self.engine.fetch_dated_sentences(
                    keywords,
                    start=start,
                    end=end,
                    limit=self.retrieval_limit,
                )
                tracer.count("realtime.candidates", len(dated))
            with tracer.span("realtime.generation") as generation:
                timeline = self.wilson.summarize(
                    dated,
                    num_dates=num_dates,
                    num_sentences=num_sentences,
                    query=keywords,
                    tracer=tracer,
                )
        return TimelineResponse(
            timeline=timeline,
            num_candidates=len(dated),
            retrieval_seconds=retrieval.duration_seconds,
            generation_seconds=generation.duration_seconds,
            trace=root if tracer.enabled else None,
        )

    def _serve_query(self, query: TimelineQuery) -> TimelineResponse:
        """Serve one :class:`TimelineQuery` (the per-shard task)."""
        return self.generate_timeline(
            query.keywords,
            start=query.start,
            end=query.end,
            num_dates=query.num_dates,
            num_sentences=query.num_sentences,
        )

    def generate_timelines(
        self,
        queries: Sequence[TimelineQuery],
        policy: Optional[ShardPolicy] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
    ) -> ShardReport:
        """Serve a batch of queries concurrently against the shared index.

        Queries run through :func:`repro.runtime.run_sharded` on the
        **thread** (or inline) backend: worker threads share this
        system's read-only index and thread-safe
        :class:`~repro.text.analysis.TokenCache`, so concurrent queries
        reuse each other's tokenisation work -- the serving-side payoff
        of the shared cache. The process backend is rejected: forked
        workers would each copy the index and warm private caches,
        silently discarding exactly that benefit.

        Returns the full :class:`~repro.runtime.ShardReport`; responses
        are in query order via ``report.values()``, with ``None`` for
        queries that exhausted their retries (timeouts on the thread
        backend abandon the attempt -- the stray worker thread cannot be
        killed, its result is discarded).
        """
        policy = policy or ShardPolicy(backend="thread")
        if policy.backend == "process":
            raise ValueError(
                "generate_timelines shares one in-process index; use the "
                "'thread' (or 'inline') backend, not 'process'"
            )
        return run_sharded(
            self._serve_query,
            list(queries),
            policy,
            keys=[query.key for query in queries],
            tracer=tracer,
            metrics=metrics,
        )

    def generate_timelines_list(
        self,
        queries: Sequence[TimelineQuery],
        policy: Optional[ShardPolicy] = None,
        tracer: Optional[Tracer] = None,
    ) -> List[Optional[TimelineResponse]]:
        """Convenience wrapper: responses only, in query order."""
        return self.generate_timelines(
            queries, policy=policy, tracer=tracer
        ).values()
