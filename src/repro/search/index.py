"""An incremental positional inverted index over temporally tagged sentences.

Documents are sentences carrying two date fields -- the *content date* each
sentence is about and the article's *publication date* -- mirroring how the
paper indexes "both date and content information" (Section 5). New
documents can be inserted at any time ("we can easily include newly
published news articles ... by inserting them into the existing search
engine"); BM25 statistics (document frequencies, average length) update
incrementally.

Postings are *positional* (``token -> {doc_id: [positions]}``), which the
query layer uses for exact phrase matching, and the whole index can be
persisted to / restored from JSONL.
"""

from __future__ import annotations

import datetime
import json
import pathlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Union

from repro.text.analysis import TokenCache
from repro.text.tokenize import tokenize_for_matching

PathLike = Union[str, pathlib.Path]


@dataclass(frozen=True)
class IndexedSentence:
    """One indexed document: a sentence with its date fields."""

    doc_id: int
    text: str
    date: datetime.date
    publication_date: datetime.date
    article_id: str = ""
    is_reference: bool = False


class InvertedIndex:
    """Token -> positional postings with incremental BM25 statistics.

    Postings map ``doc_id`` to the sorted list of token positions within
    the document; sorted-by-date secondary structures support efficient
    date-range filtering.
    """

    def __init__(self, cache: Optional[TokenCache] = None) -> None:
        #: Optional shared :class:`~repro.text.analysis.TokenCache`. The
        #: same sentence is indexed once per date it mentions, and later
        #: re-tokenised by the summarisation pipeline -- with a shared
        #: cache all of that is one tokenisation per distinct text.
        self.cache = cache
        self._postings: Dict[str, Dict[int, List[int]]] = {}
        self._documents: List[IndexedSentence] = []
        self._doc_lengths: List[int] = []
        self._total_length = 0
        self._by_date: Dict[datetime.date, List[int]] = {}
        self._version = 0

    @property
    def index_version(self) -> int:
        """Monotonic content revision, bumped on every :meth:`add`.

        Result caches key on it: any write makes previously cached
        query results stale, and a version mismatch is exactly how they
        find out (see :mod:`repro.serve.cache`). Persisted through
        :meth:`save` / :meth:`load`, so a restored index never reuses a
        version an earlier incarnation already handed out.
        """
        return self._version

    def advance_version(self, version: int) -> None:
        """Raise :attr:`index_version` to *version* (never backwards).

        Compaction (:mod:`repro.ingest.compactor`) replays documents
        into a fresh index and then restores the live revision so cache
        keys minted against the overlay stay comparable -- the same
        never-go-backwards rule :meth:`load` applies to saved versions.
        """
        self._version = max(self._version, int(version))

    # -- writes -------------------------------------------------------------

    def add(
        self,
        text: str,
        date: datetime.date,
        publication_date: datetime.date,
        article_id: str = "",
        is_reference: bool = False,
    ) -> int:
        """Index one sentence; returns its document id."""
        doc_id = len(self._documents)
        tokens = (
            self.cache.tokens(text)
            if self.cache is not None
            else tokenize_for_matching(text)
        )
        document = IndexedSentence(
            doc_id=doc_id,
            text=text,
            date=date,
            publication_date=publication_date,
            article_id=article_id,
            is_reference=is_reference,
        )
        self._documents.append(document)
        self._doc_lengths.append(len(tokens))
        self._total_length += len(tokens)
        self._version += 1
        self._by_date.setdefault(date, []).append(doc_id)
        for position, token in enumerate(tokens):
            self._postings.setdefault(token, {}).setdefault(
                doc_id, []
            ).append(position)
        return doc_id

    # -- reads --------------------------------------------------------------

    @property
    def num_documents(self) -> int:
        return len(self._documents)

    @property
    def average_length(self) -> float:
        if not self._documents:
            return 0.0
        return self._total_length / len(self._documents)

    @property
    def total_length(self) -> int:
        """Total token count across all documents.

        Together with :attr:`num_documents` this is the additive form of
        :attr:`average_length`: summing both across disjoint index
        slices reproduces the whole-corpus ``avgdl`` *exactly* (integer
        sums, one float division), which is what lets the scatter-gather
        router re-score candidates with bit-identical BM25 statistics
        (see :func:`repro.search.query.gather_candidates`).
        """
        return self._total_length

    def document(self, doc_id: int) -> IndexedSentence:
        """The indexed sentence with id *doc_id* (raises ``IndexError``)."""
        return self._documents[doc_id]

    def document_length(self, doc_id: int) -> int:
        return self._doc_lengths[doc_id]

    def document_frequency(self, token: str) -> int:
        """Number of documents containing *token*."""
        return len(self._postings.get(token, ()))

    def postings(self, token: str) -> Dict[int, int]:
        """Posting list of *token* as ``{doc_id: tf}`` (a copy)."""
        return {
            doc_id: len(positions)
            for doc_id, positions in self._postings.get(token, {}).items()
        }

    def positions(self, token: str, doc_id: int) -> List[int]:
        """Positions of *token* within document *doc_id* (a copy)."""
        return list(self._postings.get(token, {}).get(doc_id, ()))

    def phrase_match(self, tokens: List[str], doc_id: int) -> bool:
        """Whether *tokens* occur consecutively in document *doc_id*."""
        if not tokens:
            return False
        first_positions = self._postings.get(tokens[0], {}).get(doc_id)
        if first_positions is None:
            return False
        rest = []
        for token in tokens[1:]:
            positions = self._postings.get(token, {}).get(doc_id)
            if positions is None:
                return False
            rest.append(set(positions))
        for start in first_positions:
            if all(
                (start + offset + 1) in positions
                for offset, positions in enumerate(rest)
            ):
                return True
        return False

    def vocabulary_size(self) -> int:
        return len(self._postings)

    def tokens_with_postings(self) -> Iterator[str]:
        """Iterate tokens that have at least one posting entry.

        The cheap vocabulary accessor shared by every index variant:
        the live overlay (:class:`repro.ingest.live.LiveIndex`) unions
        these streams to count the merged vocabulary without
        materialising full postings maps.
        """
        return iter(self._postings)

    def postings_map(self) -> Dict[str, Dict[int, List[int]]]:
        """The full positional postings mapping, token by token.

        The snapshot writer's bulk accessor. The base index returns its
        live internal mapping (callers must not mutate it); array-backed
        views (:class:`repro.search.mapped.MappedSnapshotIndex`)
        materialise an equivalent mapping on demand.
        """
        return self._postings

    def dates(self) -> List[datetime.date]:
        """All content dates present in the index, sorted."""
        return sorted(self._by_date)

    def doc_ids_in_range(
        self,
        start: Optional[datetime.date] = None,
        end: Optional[datetime.date] = None,
    ) -> Iterator[int]:
        """Iterate doc ids whose content date falls within [start, end]."""
        for date in sorted(self._by_date):
            if start is not None and date < start:
                continue
            if end is not None and date > end:
                break
            yield from self._by_date[date]

    def documents_on(self, date: datetime.date) -> List[IndexedSentence]:
        """All sentences whose content date equals *date*."""
        return [
            self._documents[doc_id]
            for doc_id in self._by_date.get(date, ())
        ]

    def date_histogram(
        self,
        interval_days: int = 1,
        start: Optional[datetime.date] = None,
        end: Optional[datetime.date] = None,
    ) -> Dict[datetime.date, int]:
        """Document counts bucketed by content date.

        Buckets are ``interval_days`` wide, keyed by their first day --
        the aggregation a timeline UI uses to render activity bars and
        that burst-detection heuristics consume.
        """
        if interval_days < 1:
            raise ValueError(
                f"interval_days must be >= 1, got {interval_days}"
            )
        counts: Dict[datetime.date, int] = {}
        dates = self.dates()
        if not dates:
            return counts
        origin = start if start is not None else dates[0]
        for date in dates:
            if start is not None and date < start:
                continue
            if end is not None and date > end:
                continue
            offset = (date - origin).days // interval_days
            bucket = origin + datetime.timedelta(
                days=offset * interval_days
            )
            counts[bucket] = counts.get(bucket, 0) + len(
                self._by_date[date]
            )
        return counts

    def __len__(self) -> int:
        return len(self._documents)

    def __repr__(self) -> str:
        return (
            f"InvertedIndex(documents={len(self)}, "
            f"vocabulary={self.vocabulary_size()})"
        )

    # -- persistence ----------------------------------------------------------

    def save(self, path: PathLike) -> None:
        """Persist the index as JSONL (one document per line).

        Postings are rebuilt on load, so the on-disk format stays simple
        and forward-compatible: only the documents are stored, preceded
        by one meta line carrying the content revision
        (:attr:`index_version`) so restored indexes keep a correct cache
        invalidation key.
        """
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(
                    {
                        "meta": "wilson.index/v1",
                        "index_version": self._version,
                    }
                )
                + "\n"
            )
            for doc_id in range(len(self)):
                document = self.document(doc_id)
                handle.write(
                    json.dumps(
                        {
                            "text": document.text,
                            "date": document.date.isoformat(),
                            "publication_date": (
                                document.publication_date.isoformat()
                            ),
                            "article_id": document.article_id,
                            "is_reference": document.is_reference,
                        },
                        ensure_ascii=False,
                    )
                    + "\n"
                )

    @classmethod
    def load(
        cls, path: PathLike, cache: Optional[TokenCache] = None
    ) -> "InvertedIndex":
        """Restore an index written by :meth:`save`.

        Accepts both the current format (leading meta line) and the
        pre-version plain-JSONL format; without a meta line the restored
        :attr:`index_version` is simply the number of re-inserted
        documents.
        """
        index = cls(cache=cache)
        saved_version: Optional[int] = None
        with pathlib.Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                data = json.loads(line)
                if "meta" in data and "text" not in data:
                    saved_version = int(data.get("index_version", 0))
                    continue
                index.add(
                    data["text"],
                    date=datetime.date.fromisoformat(data["date"]),
                    publication_date=datetime.date.fromisoformat(
                        data["publication_date"]
                    ),
                    article_id=data.get("article_id", ""),
                    is_reference=data.get("is_reference", False),
                )
        if saved_version is not None:
            # Re-inserting bumped the version once per document; restore
            # the saved revision (never going backwards) so cache keys
            # minted against the original index stay comparable. This
            # also covers an empty index saved with a non-zero version:
            # zero documents follow the meta line, and the saved
            # revision still wins over the re-insert count of 0.
            index._version = max(index._version, saved_version)
        return index

    def save_snapshot(
        self, path: PathLike, snapshot_format: str = "v1"
    ) -> None:
        """Persist the index as a binary snapshot (see
        :mod:`repro.search.snapshot`).

        Unlike :meth:`save`, the snapshot carries the derived state --
        postings, token-id arrays, vocabulary -- so
        :meth:`load_snapshot` restores in O(read) with zero
        re-tokenisation. *snapshot_format* selects ``"v1"`` (the npz
        payload) or ``"v2"`` (page-aligned raw sections that
        :meth:`load_snapshot` can map zero-copy with ``mode="mmap"``).
        """
        from repro.search.snapshot import save_snapshot

        save_snapshot(self, path, snapshot_format=snapshot_format)

    @classmethod
    def load_snapshot(
        cls,
        path: PathLike,
        cache: Optional[TokenCache] = None,
        mode: str = "copy",
        verify: bool = False,
    ) -> "InvertedIndex":
        """Restore an index written by :meth:`save_snapshot`.

        The snapshot format is auto-detected. ``mode="mmap"`` maps a v2
        snapshot's sections as shared read-only pages instead of copying
        (v1 snapshots fall back to the copy path); ``verify=True``
        checks every section checksum eagerly instead of lazily on first
        access. Raises :class:`repro.search.snapshot.SnapshotError` on a
        missing, corrupt, or incompatible file -- callers decide whether
        to fall back to :meth:`load`.
        """
        from repro.search.snapshot import load_snapshot

        return load_snapshot(path, cache=cache, mode=mode, verify=verify)
