"""BM25-ranked keyword queries with date filters, boolean modes, phrases."""

from __future__ import annotations

import datetime
import heapq
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.search.index import IndexedSentence, InvertedIndex
from repro.text.analysis import TokenCache, tokenize_with
from repro.text.bm25 import BM25Parameters


@dataclass(frozen=True)
class SearchQuery:
    """A keyword + time-window query (Section 5's user input).

    ``keywords`` may be raw phrases; they are tokenised/stemmed at scoring
    time. ``limit`` caps the number of hits returned (highest BM25 first).

    ``mode`` selects the boolean semantics: ``"any"`` (default, OR) ranks
    every document matching at least one term; ``"all"`` (AND) restricts
    to documents containing every term. ``phrase=True`` additionally
    requires the keywords to occur *consecutively* (positional match).
    """

    keywords: Tuple[str, ...]
    start: Optional[datetime.date] = None
    end: Optional[datetime.date] = None
    limit: int = 1000
    mode: str = "any"
    phrase: bool = False

    def __post_init__(self) -> None:
        if self.limit < 1:
            raise ValueError(f"limit must be >= 1, got {self.limit}")
        if (
            self.start is not None
            and self.end is not None
            and self.start > self.end
        ):
            raise ValueError(
                f"start {self.start} must not exceed end {self.end}"
            )
        if self.mode not in ("any", "all"):
            raise ValueError(
                f"mode must be 'any' or 'all', got {self.mode!r}"
            )


@dataclass(frozen=True)
class SearchHit:
    """One search result with its relevance score."""

    document: IndexedSentence
    score: float


def _candidate_filter(
    index: InvertedIndex,
    query: SearchQuery,
    query_tokens: List[str],
) -> Optional[Set[int]]:
    """The doc-id set satisfying the structural constraints, or ``None``
    when no structural constraint applies (pure OR query, no window)."""
    allowed: Optional[Set[int]] = None
    if query.start is not None or query.end is not None:
        allowed = set(index.doc_ids_in_range(query.start, query.end))
        if not allowed:
            return set()
    if query.mode == "all" or query.phrase:
        containing: Optional[Set[int]] = None
        for token in query_tokens:
            docs = set(index.postings(token))
            containing = docs if containing is None else containing & docs
            if not containing:
                return set()
        if containing is None:
            return set()
        if query.phrase:
            containing = {
                doc_id
                for doc_id in containing
                if index.phrase_match(query_tokens, doc_id)
            }
        allowed = (
            containing if allowed is None else allowed & containing
        )
    return allowed


def execute(
    index: InvertedIndex,
    query: SearchQuery,
    params: BM25Parameters = BM25Parameters(),
    cache: Optional[TokenCache] = None,
) -> List[SearchHit]:
    """Run *query* against *index*; returns hits, best first.

    Scoring is Okapi BM25 with IDF computed from the index's live
    statistics; candidates are restricted by the date window and (in
    ``all``/phrase mode) the boolean constraints first. *cache* falls
    back to the index's own analysis cache when not given.
    """
    if cache is None:
        cache = index.cache
    query_tokens = list(
        tokenize_with(cache, [" ".join(query.keywords)])[0]
    )
    if not query_tokens:
        return []
    n = index.num_documents
    if n == 0:
        return []
    allowed = _candidate_filter(index, query, query_tokens)
    if allowed is not None and not allowed:
        return []

    avgdl = index.average_length or 1.0
    k1, b = params.k1, params.b

    scores: dict = {}
    for token in query_tokens:
        df = index.document_frequency(token)
        if df == 0:
            continue
        idf = math.log(1.0 + (n - df + 0.5) / (df + 0.5))
        for doc_id, tf in index.postings(token).items():
            if allowed is not None and doc_id not in allowed:
                continue
            norm = k1 * (
                1.0 - b + b * index.document_length(doc_id) / avgdl
            )
            scores[doc_id] = scores.get(doc_id, 0.0) + (
                idf * tf * (k1 + 1.0) / (tf + norm)
            )

    top = heapq.nlargest(
        query.limit, scores.items(), key=lambda kv: (kv[1], -kv[0])
    )
    return [
        SearchHit(document=index.document(doc_id), score=score)
        for doc_id, score in top
    ]


@dataclass(frozen=True)
class ShardCandidate:
    """One matching document with its raw per-term match statistics."""

    doc_id: int
    length: int
    term_frequencies: Tuple[int, ...]


@dataclass(frozen=True)
class ShardCandidates:
    """Everything a merger needs to re-score this index's matches globally.

    The BM25 inputs of :func:`execute` decompose additively across
    disjoint index slices: global ``N`` is the sum of ``documents``,
    global ``df`` the sum of ``document_frequencies`` and global
    ``avgdl`` the ratio of summed ``total_tokens`` to summed
    ``documents`` -- all integer sums, so a merger reproduces the
    whole-corpus statistics *exactly*, not approximately. Combined with
    each hit's raw term frequencies and document length, that makes the
    merged scores bit-identical to running :func:`execute` on the
    unsliced index (the scatter-gather router's byte-identity
    guarantee; see :mod:`repro.serve.router`).

    ``terms`` is the analyzed query-token sequence *in query order*
    (duplicates kept): score contributions must be accumulated in that
    order for float-exact equality. ``truncated`` flags that the slice
    had more matches than ``query.limit`` and returned only its locally
    best ones -- the only case where the merged ranking can diverge.
    """

    terms: Tuple[str, ...]
    documents: int
    total_tokens: int
    document_frequencies: Tuple[int, ...]
    hits: Tuple[ShardCandidate, ...]
    truncated: bool = False


def gather_candidates(
    index: InvertedIndex,
    query: SearchQuery,
    params: BM25Parameters = BM25Parameters(),
    cache: Optional[TokenCache] = None,
) -> ShardCandidates:
    """Collect *query*'s raw match statistics from one index slice.

    Applies the same candidate restriction as :func:`execute` (date
    window, ``all``/phrase constraints) but returns unscored per-term
    frequencies instead of BM25 scores, plus the slice-level corpus
    statistics. Index-level statistics (``documents``,
    ``document_frequencies``, ``total_tokens``) are always populated,
    even when the window excludes every document -- a merger still needs
    this slice's contribution to the global IDF.

    When more than ``query.limit`` documents match, only the documents
    :func:`execute` would rank into the local top ``limit`` are
    returned and ``truncated`` is set.
    """
    if cache is None:
        cache = index.cache
    query_tokens = list(
        tokenize_with(cache, [" ".join(query.keywords)])[0]
    )
    terms = tuple(query_tokens)
    frequencies = tuple(
        index.document_frequency(token) for token in terms
    )
    stats_only = ShardCandidates(
        terms=terms,
        documents=index.num_documents,
        total_tokens=index.total_length,
        document_frequencies=frequencies,
        hits=(),
    )
    if not terms or index.num_documents == 0:
        return stats_only
    allowed = _candidate_filter(index, query, query_tokens)
    if allowed is not None and not allowed:
        return stats_only

    rows: dict = {}
    for position, token in enumerate(terms):
        for doc_id, tf in index.postings(token).items():
            if allowed is not None and doc_id not in allowed:
                continue
            row = rows.get(doc_id)
            if row is None:
                row = [0] * len(terms)
                rows[doc_id] = row
            row[position] = tf

    truncated = len(rows) > query.limit
    if truncated:
        # Keep exactly the documents execute() would rank into the local
        # top ``limit`` (by slice-local BM25); global exactness is lost
        # only in this case, and the flag lets mergers report it.
        kept = {
            hit.document.doc_id
            for hit in execute(index, query, params=params, cache=cache)
        }
        doc_ids = sorted(doc_id for doc_id in rows if doc_id in kept)
    else:
        doc_ids = sorted(rows)
    return ShardCandidates(
        terms=terms,
        documents=index.num_documents,
        total_tokens=index.total_length,
        document_frequencies=frequencies,
        hits=tuple(
            ShardCandidate(
                doc_id=doc_id,
                length=index.document_length(doc_id),
                term_frequencies=tuple(rows[doc_id]),
            )
            for doc_id in doc_ids
        ),
        truncated=truncated,
    )


def candidates_payload(
    index: InvertedIndex,
    candidates: ShardCandidates,
    index_version: int,
    schema: str,
) -> Dict[str, Any]:
    """The ``/v1/shard/search`` response payload for *candidates*.

    The one serialisation of :func:`gather_candidates` output both wire
    encodings share: the JSON path runs it through ``canonical_json``,
    the binary path through
    :func:`repro.serve.frames.encode_shard_search` -- keeping the two
    bit-exact by construction (same dict in, see
    tests/test_serve_frames.py). *schema* is the envelope identifier
    (the serving tier's ``WIRE_SCHEMA``), passed in to keep this module
    free of serve-layer imports.
    """
    hits = []
    for hit in candidates.hits:
        document = index.document(hit.doc_id)
        hits.append(
            {
                "doc_id": hit.doc_id,
                "length": hit.length,
                "tf": list(hit.term_frequencies),
                "text": document.text,
                "date": document.date.isoformat(),
                "publication_date": (
                    document.publication_date.isoformat()
                ),
                "article_id": document.article_id,
                "is_reference": document.is_reference,
            }
        )
    return {
        "schema": schema,
        "index_version": index_version,
        "terms": list(candidates.terms),
        "stats": {
            "documents": candidates.documents,
            "total_tokens": candidates.total_tokens,
            "df": list(candidates.document_frequencies),
        },
        "count": len(hits),
        "truncated": candidates.truncated,
        "hits": hits,
    }
