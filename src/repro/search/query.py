"""BM25-ranked keyword queries with date filters, boolean modes, phrases."""

from __future__ import annotations

import datetime
import heapq
import math
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.search.index import IndexedSentence, InvertedIndex
from repro.text.analysis import TokenCache, tokenize_with
from repro.text.bm25 import BM25Parameters


@dataclass(frozen=True)
class SearchQuery:
    """A keyword + time-window query (Section 5's user input).

    ``keywords`` may be raw phrases; they are tokenised/stemmed at scoring
    time. ``limit`` caps the number of hits returned (highest BM25 first).

    ``mode`` selects the boolean semantics: ``"any"`` (default, OR) ranks
    every document matching at least one term; ``"all"`` (AND) restricts
    to documents containing every term. ``phrase=True`` additionally
    requires the keywords to occur *consecutively* (positional match).
    """

    keywords: Tuple[str, ...]
    start: Optional[datetime.date] = None
    end: Optional[datetime.date] = None
    limit: int = 1000
    mode: str = "any"
    phrase: bool = False

    def __post_init__(self) -> None:
        if self.limit < 1:
            raise ValueError(f"limit must be >= 1, got {self.limit}")
        if (
            self.start is not None
            and self.end is not None
            and self.start > self.end
        ):
            raise ValueError(
                f"start {self.start} must not exceed end {self.end}"
            )
        if self.mode not in ("any", "all"):
            raise ValueError(
                f"mode must be 'any' or 'all', got {self.mode!r}"
            )


@dataclass(frozen=True)
class SearchHit:
    """One search result with its relevance score."""

    document: IndexedSentence
    score: float


def _candidate_filter(
    index: InvertedIndex,
    query: SearchQuery,
    query_tokens: List[str],
) -> Optional[Set[int]]:
    """The doc-id set satisfying the structural constraints, or ``None``
    when no structural constraint applies (pure OR query, no window)."""
    allowed: Optional[Set[int]] = None
    if query.start is not None or query.end is not None:
        allowed = set(index.doc_ids_in_range(query.start, query.end))
        if not allowed:
            return set()
    if query.mode == "all" or query.phrase:
        containing: Optional[Set[int]] = None
        for token in query_tokens:
            docs = set(index.postings(token))
            containing = docs if containing is None else containing & docs
            if not containing:
                return set()
        if containing is None:
            return set()
        if query.phrase:
            containing = {
                doc_id
                for doc_id in containing
                if index.phrase_match(query_tokens, doc_id)
            }
        allowed = (
            containing if allowed is None else allowed & containing
        )
    return allowed


def execute(
    index: InvertedIndex,
    query: SearchQuery,
    params: BM25Parameters = BM25Parameters(),
    cache: Optional[TokenCache] = None,
) -> List[SearchHit]:
    """Run *query* against *index*; returns hits, best first.

    Scoring is Okapi BM25 with IDF computed from the index's live
    statistics; candidates are restricted by the date window and (in
    ``all``/phrase mode) the boolean constraints first. *cache* falls
    back to the index's own analysis cache when not given.
    """
    if cache is None:
        cache = index.cache
    query_tokens = list(
        tokenize_with(cache, [" ".join(query.keywords)])[0]
    )
    if not query_tokens:
        return []
    n = index.num_documents
    if n == 0:
        return []
    allowed = _candidate_filter(index, query, query_tokens)
    if allowed is not None and not allowed:
        return []

    avgdl = index.average_length or 1.0
    k1, b = params.k1, params.b

    scores: dict = {}
    for token in query_tokens:
        df = index.document_frequency(token)
        if df == 0:
            continue
        idf = math.log(1.0 + (n - df + 0.5) / (df + 0.5))
        for doc_id, tf in index.postings(token).items():
            if allowed is not None and doc_id not in allowed:
                continue
            norm = k1 * (
                1.0 - b + b * index.document_length(doc_id) / avgdl
            )
            scores[doc_id] = scores.get(doc_id, 0.0) + (
                idf * tf * (k1 + 1.0) / (tf + norm)
            )

    top = heapq.nlargest(
        query.limit, scores.items(), key=lambda kv: (kv[1], -kv[0])
    )
    return [
        SearchHit(document=index.document(doc_id), score=score)
        for doc_id, score in top
    ]
