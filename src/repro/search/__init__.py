"""Search-engine substrate: the offline ElasticSearch substitute.

Section 5's real-time system indexes temporally tagged sentences in
ElasticSearch and serves keyword + time-window queries. This package
provides the same contract in-process:

* :mod:`repro.search.index` -- an incremental inverted index with date
  fields;
* :mod:`repro.search.query` -- BM25-ranked keyword queries with date-range
  filtering;
* :mod:`repro.search.engine` -- the high-level :class:`SearchEngine`;
* :mod:`repro.search.realtime` -- :class:`RealTimeTimelineSystem`, the
  query-to-timeline pipeline of Figure 7;
* :mod:`repro.search.snapshot` -- binary index snapshots for O(read)
  cold starts (checksummed ``.npz`` payload, JSONL stays the fallback).
"""

from repro.search.engine import SearchEngine
from repro.search.index import IndexedSentence, InvertedIndex
from repro.search.query import SearchHit, SearchQuery
from repro.search.realtime import RealTimeTimelineSystem
from repro.search.snapshot import (
    SnapshotError,
    load_snapshot,
    save_snapshot,
    snapshot_info,
)
from repro.search.trends import Burst, detect_bursts, suggest_query_window

__all__ = [
    "Burst",
    "IndexedSentence",
    "InvertedIndex",
    "RealTimeTimelineSystem",
    "SearchEngine",
    "SearchHit",
    "SearchQuery",
    "SnapshotError",
    "detect_bursts",
    "load_snapshot",
    "save_snapshot",
    "snapshot_info",
    "suggest_query_window",
]
