"""Burst detection over indexed publication activity.

The real-time system's UI story (Section 5, Figure 7) needs to surface
*when* something happened for a query before the user picks a duration.
This module detects bursts -- days whose activity rises far above the
local baseline -- from the index's date histogram, yielding suggested
time windows to seed timeline queries.
"""

from __future__ import annotations

import datetime
import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.search.index import InvertedIndex


@dataclass(frozen=True)
class Burst:
    """One detected activity burst."""

    start: datetime.date
    end: datetime.date
    peak: datetime.date
    peak_count: int
    total_count: int

    @property
    def duration_days(self) -> int:
        return (self.end - self.start).days + 1


def detect_bursts(
    histogram: Dict[datetime.date, int],
    threshold_sigmas: float = 2.0,
    min_count: int = 2,
) -> List[Burst]:
    """Detect bursts in a date histogram.

    A day bursts when its count exceeds ``mean + threshold_sigmas * std``
    of the whole histogram (and at least *min_count*); consecutive
    bursting days merge into one burst. Returns bursts in chronological
    order.
    """
    if threshold_sigmas < 0:
        raise ValueError(
            f"threshold_sigmas must be >= 0, got {threshold_sigmas}"
        )
    if not histogram:
        return []
    counts = list(histogram.values())
    mean = statistics.fmean(counts)
    std = statistics.pstdev(counts)
    cutoff = max(mean + threshold_sigmas * std, float(min_count))

    # A burst must also clear the mean strictly, so a perfectly flat
    # histogram (std = 0 -> cutoff = mean) produces no bursts.
    bursting = sorted(
        date
        for date, count in histogram.items()
        if count >= cutoff and count > mean
    )
    if not bursting:
        return []

    bursts: List[Burst] = []
    run_start = bursting[0]
    previous = bursting[0]
    for date in bursting[1:] + [None]:  # sentinel flushes the last run
        if date is not None and (date - previous).days <= 1:
            previous = date
            continue
        run_days = [
            run_start + datetime.timedelta(days=offset)
            for offset in range((previous - run_start).days + 1)
        ]
        peak = max(run_days, key=lambda day: histogram.get(day, 0))
        bursts.append(
            Burst(
                start=run_start,
                end=previous,
                peak=peak,
                peak_count=histogram.get(peak, 0),
                total_count=sum(
                    histogram.get(day, 0) for day in run_days
                ),
            )
        )
        if date is not None:
            run_start = date
            previous = date
    return bursts


def suggest_query_window(
    index: InvertedIndex,
    padding_days: int = 3,
    threshold_sigmas: float = 2.0,
) -> Optional[tuple]:
    """Suggest a ``(start, end)`` window spanning the detected bursts.

    Returns ``None`` when the index shows no bursts; otherwise the span
    from the first burst's start to the last burst's end, padded by
    *padding_days* on each side (clamped to the observed date range).
    """
    histogram = index.date_histogram(interval_days=1)
    bursts = detect_bursts(
        histogram, threshold_sigmas=threshold_sigmas
    )
    if not bursts:
        return None
    dates = index.dates()
    padding = datetime.timedelta(days=padding_days)
    start = max(dates[0], bursts[0].start - padding)
    end = min(dates[-1], bursts[-1].end + padding)
    return (start, end)
